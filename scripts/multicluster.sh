#!/usr/bin/env bash
# Run the fleet-of-fleets sweep and write MULTICLUSTER_results.json at the
# repository root.  Extra arguments are forwarded to
# `python -m repro.multicluster` (e.g. `scripts/multicluster.sh --scale full`,
# `scripts/multicluster.sh --list-routers`,
# `scripts/multicluster.sh --cluster-counts 2 4 --routers locality_affinity spillover`).
set -euo pipefail
cd "$(dirname "$0")/.."
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" exec python -m repro.multicluster "$@"
