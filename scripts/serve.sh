#!/usr/bin/env bash
# Run the online-serving sweep (open- vs. closed-loop clients x retry x
# backpressure) and write SERVE_results.json at the repository root.
# Extra arguments are forwarded to `python -m repro.serve` (e.g.
# `scripts/serve.sh --scale full`, `scripts/serve.sh --list-retries`,
# `scripts/serve.sh --clients open 16 64 --retries none backoff`,
# `scripts/serve.sh --metrics-out serve_metrics.prom`).
set -euo pipefail
cd "$(dirname "$0")/.."
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" exec python -m repro.serve "$@"
