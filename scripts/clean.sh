#!/usr/bin/env bash
# Purge generated caches: the sweep-engine result cache (.repro_cache/)
# plus Python bytecode and pytest state.  Result documents
# (BENCH/SCENARIO/FLEET_results.json) are tracked artifacts and are kept.
set -euo pipefail
cd "$(dirname "$0")/.."

if [ -d .repro_cache ]; then
  count=$(find .repro_cache -name '*.json' | wc -l)
  rm -rf .repro_cache
  echo "removed .repro_cache/ (${count} cached result(s))"
else
  echo ".repro_cache/ not present"
fi

find . -type d -name __pycache__ -prune -exec rm -rf {} +
rm -rf .pytest_cache .hypothesis
echo "removed bytecode and pytest caches"
