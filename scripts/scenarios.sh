#!/usr/bin/env bash
# Run the scenario sweep and write SCENARIO_results.json at the repository
# root.  Extra arguments are forwarded to `python -m repro.scenarios`
# (e.g. `scripts/scenarios.sh --scale full`, `scripts/scenarios.sh --list`,
# `scripts/scenarios.sh --scenarios mmpp-bursty --policies vllm kunserve`).
set -euo pipefail
cd "$(dirname "$0")/.."
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" exec python -m repro.scenarios "$@"
