#!/usr/bin/env bash
# Run the simulator benchmark harness and write BENCH_results.json at the
# repository root.  Extra arguments are forwarded to `python -m repro.bench`
# (e.g. `scripts/bench.sh --tiny`, `scripts/bench.sh --experiments figure12`).
set -euo pipefail
cd "$(dirname "$0")/.."
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" exec python -m repro.bench "$@"
