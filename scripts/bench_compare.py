#!/usr/bin/env python3
"""Compare two ``BENCH_results.json`` files and flag regressions.

Makes the benchmark trajectory actionable: run ``scripts/bench.sh`` before
and after a change, then

    python scripts/bench_compare.py BASELINE.json CURRENT.json

prints a per-entry wall-clock diff and exits non-zero when any matched
entry regressed by more than ``--threshold`` percent (default 25%), or
when any matched entry's simulated-event throughput (``events_per_s``)
dropped by more than ``--events-threshold`` percent (default 30%) — the
latter guards the event core itself (the ``event_core`` microbench row
most of all) against dispatch-path slowdowns that wall-clock thresholds
on small rows would miss.  Entries are matched by their
``(experiment, policy)`` identity; entries present on only one side are
reported but never fail the comparison (new benchmarks appear, old ones
retire).  Entries carrying a ``profile`` block (the task-level resource
profile recorded by the sweep executor, see ``repro.obs.profile``)
additionally get a peak-RSS delta column — reported, *never* gated:
memory high-watermarks are process-cumulative and host-dependent, so
they inform a reviewer rather than fail a build.  Stdlib-only on
purpose, so it runs anywhere a checkout exists (CI included) without
``PYTHONPATH`` setup.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Tuple

#: A regression smaller than this many wall-clock seconds is ignored even if
#: it exceeds the percentage threshold: tiny entries (a few ms) jitter far
#: more than they inform.  The same floor gates throughput checks — an
#: entry whose baseline ran shorter than this can't be measured reliably.
MIN_ABS_REGRESSION_S = 0.05


def load_entries(path: Path) -> Dict[Tuple[str, str], dict]:
    """Index a BENCH_results.json document's entries by identity."""
    document = json.loads(path.read_text())
    entries = {}
    for entry in document.get("entries", []):
        key = (str(entry.get("experiment")), str(entry.get("policy") or "-"))
        entries[key] = entry
    return entries


def compare(
    baseline: Dict[Tuple[str, str], dict],
    current: Dict[Tuple[str, str], dict],
    threshold_pct: float,
    min_abs_s: float = MIN_ABS_REGRESSION_S,
    events_threshold_pct: float = 30.0,
) -> Tuple[List[str], List[str]]:
    """Return (report lines, regression lines) for the two entry sets."""
    lines: List[str] = []
    regressions: List[str] = []
    header = (
        f"{'experiment':<20} {'policy':<12} {'base_s':>8} {'curr_s':>8} "
        f"{'delta':>8} {'ev/s':>9} {'rss':>10}"
    )
    lines.append(header)
    for key in sorted(set(baseline) | set(current)):
        experiment, policy = key
        base = baseline.get(key)
        curr = current.get(key)
        if base is None:
            lines.append(f"{experiment:<20} {policy:<12} {'-':>8} {curr['wall_s']:>8.2f}    (new)")
            continue
        if curr is None:
            lines.append(f"{experiment:<20} {policy:<12} {base['wall_s']:>8.2f} {'-':>8}    (gone)")
            continue
        base_s = float(base["wall_s"])
        curr_s = float(curr["wall_s"])
        delta_pct = 100.0 * (curr_s - base_s) / base_s if base_s > 0 else 0.0
        marker = ""
        if delta_pct > threshold_pct and (curr_s - base_s) > min_abs_s:
            marker = "  REGRESSION"
            regressions.append(
                f"{experiment} ({policy}): {base_s:.2f}s -> {curr_s:.2f}s "
                f"(+{delta_pct:.0f}% > {threshold_pct:.0f}%)"
            )
        # Throughput gate: only meaningful where both sides actually
        # executed events and the baseline ran long enough to measure.
        base_eps = float(base.get("events_per_s", 0.0))
        curr_eps = float(curr.get("events_per_s", 0.0))
        eps_drop_pct = 0.0
        if (
            int(base.get("events", 0)) > 0
            and int(curr.get("events", 0)) > 0
            and base_eps > 0
            and base_s >= min_abs_s
        ):
            eps_drop_pct = 100.0 * (base_eps - curr_eps) / base_eps
            if eps_drop_pct > events_threshold_pct:
                marker = "  REGRESSION"
                regressions.append(
                    f"{experiment} ({policy}): {base_eps:.0f} -> {curr_eps:.0f} "
                    f"events/s (-{eps_drop_pct:.0f}% > {events_threshold_pct:.0f}%)"
                )
        lines.append(
            f"{experiment:<20} {policy:<12} {base_s:>8.2f} {curr_s:>8.2f} "
            f"{delta_pct:>+7.1f}% {-eps_drop_pct:>+8.1f}% {_rss_delta(base, curr):>10}"
            f"{marker}"
        )
    return lines, regressions


def _rss_delta(base: dict, curr: dict) -> str:
    """Peak-RSS delta of the two entries' profile blocks, for the report.

    Informational only — a memory shift is worth a look but never fails
    the comparison: ``ru_maxrss`` is the *process* high-watermark, so
    later rows inherit earlier rows' peaks and absolute values depend on
    the host allocator.  Returns ``"-"`` when either side predates the
    profiler.
    """
    base_kb = (base.get("profile") or {}).get("peak_rss_kb")
    curr_kb = (curr.get("profile") or {}).get("peak_rss_kb")
    if not base_kb or curr_kb is None:
        return "-"
    delta_pct = 100.0 * (float(curr_kb) - float(base_kb)) / float(base_kb)
    return f"{delta_pct:+.1f}%"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Diff two BENCH_results.json files; exit 1 on wall-clock "
        "or events/s regressions beyond the thresholds."
    )
    parser.add_argument("baseline", type=Path, help="baseline BENCH_results.json")
    parser.add_argument("current", type=Path, help="current BENCH_results.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=25.0,
        metavar="PCT",
        help="max tolerated per-entry wall-clock regression in percent "
        "(default: 25)",
    )
    parser.add_argument(
        "--events-threshold",
        type=float,
        default=30.0,
        metavar="PCT",
        help="max tolerated per-entry events/s throughput drop in percent "
        "(default: 30)",
    )
    args = parser.parse_args(argv)
    if args.threshold <= 0:
        parser.error("--threshold must be positive")
    if args.events_threshold <= 0:
        parser.error("--events-threshold must be positive")

    try:
        baseline = load_entries(args.baseline)
        current = load_entries(args.current)
    except (OSError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    lines, regressions = compare(
        baseline, current, args.threshold,
        events_threshold_pct=args.events_threshold,
    )
    print("\n".join(lines))
    if regressions:
        print(
            f"\n{len(regressions)} regression(s) beyond the thresholds "
            f"(wall >{args.threshold:.0f}%, events/s >{args.events_threshold:.0f}%):",
            *regressions,
            sep="\n  ",
            file=sys.stderr,
        )
        return 1
    print(
        f"\nno regressions beyond {args.threshold:.0f}% wall / "
        f"{args.events_threshold:.0f}% events/s"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
