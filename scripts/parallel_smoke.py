#!/usr/bin/env python3
"""CI smoke for conservative parallel shard execution.

Runs one eligible multicluster tier cell (4 shards, locality routing,
fixed autoscaler) twice — serially and under the parallel executor with
two pool workers — scrubs wall-clock, and fails (exit 1) unless the two
runs are bit-identical.  Prints the measured walls, the speedup and the
host CPU count; on 1-CPU CI runners the speedup is expectedly below 1x
(process setup with no parallelism to pay for it) — the *determinism* is
the contract this smoke guards, the speedup line is context.

Usage: PYTHONPATH=src python scripts/parallel_smoke.py [--shards N]
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import time

from repro.experiments.runner import ExperimentScale
from repro.multicluster.config import make_multicluster_config
from repro.multicluster.sweep import SWEEP_ADMISSION, tier_workload_scale
from repro.parallel import parallel_ineligibility, run_parallel
from repro.policies import make_policy
from repro.multicluster.system import MultiClusterSystem
from repro.scenarios.registry import get_scenario
from repro.scenarios.sweep import build_cell_config

SCALE = ExperimentScale(
    name="parallel-smoke",
    num_instances=2,
    trace_duration_s=8.0,
    drain_timeout_s=10.0,
)


def build_config(shards: int, execution: str, seed: int):
    spec = get_scenario("steady-poisson")
    config = build_cell_config(spec, SCALE, seed=seed)
    config.multicluster = make_multicluster_config(
        num_clusters=shards,
        global_router="locality_affinity",
        placement="spare_capacity_first",
        cluster_autoscaler="fixed",
        admission=SWEEP_ADMISSION,
        execution=execution,
    )
    return spec, config


def digest(records, summary, stats, duration_s, finished) -> str:
    payload = {
        "records": [(r.ttft, r.mean_tpot, r.finished) for r in records],
        "summary": summary,
        "stats": stats,
        "duration_s": duration_s,
        "finished": finished,
    }
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args(argv)

    spec, config = build_config(args.shards, "parallel", args.seed)
    reason = parallel_ineligibility(config)
    if reason is not None:
        print(f"error: smoke config unexpectedly ineligible: {reason}", file=sys.stderr)
        return 2
    workload = spec.build_workload(tier_workload_scale(SCALE, args.shards), args.seed)

    start = time.perf_counter()
    _, serial_config = build_config(args.shards, "serial", args.seed)
    system = MultiClusterSystem(serial_config, lambda: make_policy("vllm"))
    serial_result = system.run(workload)
    serial_wall = time.perf_counter() - start
    serial_digest = digest(
        serial_result.records, serial_result.summary, system.stats(),
        serial_result.duration_s, serial_result.finished_requests,
    )

    start = time.perf_counter()
    outcome = run_parallel(config, "vllm", workload, max_workers=args.workers)
    parallel_wall = time.perf_counter() - start
    parallel_digest = digest(
        outcome.result.records, outcome.result.summary, outcome.view.stats(),
        outcome.result.duration_s, outcome.result.finished_requests,
    )

    report = outcome.report
    print(
        f"shards={args.shards} workers={report.workers} "
        f"cpus={os.cpu_count()} windows={report.window_count} "
        f"window_s={report.window_s}"
    )
    print(
        f"serial {serial_wall:.2f}s vs parallel {parallel_wall:.2f}s "
        f"({serial_wall / parallel_wall:.2f}x)"
    )
    if serial_digest != parallel_digest:
        print(
            f"DIGEST MISMATCH: serial {serial_digest[:16]} != "
            f"parallel {parallel_digest[:16]}",
            file=sys.stderr,
        )
        return 1
    print(f"digests identical: {serial_digest[:16]}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
