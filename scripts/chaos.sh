#!/usr/bin/env bash
# Run the chaos sweep (fault schedules x session migration) and write
# CHAOS_results.json at the repository root.  Extra arguments are forwarded
# to `python -m repro.chaos` (e.g. `scripts/chaos.sh --scale full`,
# `scripts/chaos.sh --list-faults`,
# `scripts/chaos.sh --faults cluster-outage churn --migrations migrate`,
# `scripts/chaos.sh --metrics-out chaos_metrics.prom`).
set -euo pipefail
cd "$(dirname "$0")/.."
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" exec python -m repro.chaos "$@"
