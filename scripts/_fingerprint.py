"""Dev-only: fingerprint simulation outputs to gate bit-identical refactors.

Usage: PYTHONPATH=src python scripts/_fingerprint.py OUT.json
"""
import hashlib
import json
import sys


def _scrub(obj):
    if isinstance(obj, dict):
        return {
            k: _scrub(v)
            for k, v in obj.items()
            if not (k.startswith("wall_s") or k in ("cache_hits", "cache_misses"))
        }
    if isinstance(obj, list):
        return [_scrub(v) for v in obj]
    return obj


def digest(obj) -> str:
    return hashlib.sha256(
        json.dumps(_scrub(obj), sort_keys=True).encode()
    ).hexdigest()


def main() -> None:
    out = {}

    from repro.bench.harness import CANONICAL_SCALE, run_policy_benchmark
    from repro.experiments.runner import (
        WORKLOAD_PRESETS,
        build_preset_workload,
        build_system_config,
        make_policies,
    )
    from repro.serving.system import ClusterServingSystem

    preset = WORKLOAD_PRESETS["burstgpt-14b"]
    workload = build_preset_workload(preset, CANONICAL_SCALE, seed=42)
    for policy in make_policies():
        config = build_system_config(preset, CANONICAL_SCALE, seed=42)
        system = ClusterServingSystem(config, policy)
        result = system.run(workload)
        rows = [
            (
                r.request_id,
                r.ttft,
                r.mean_tpot,
                r.finish_time,
                r.finished,
                r.output_tokens,
                r.preemption_count,
            )
            for r in result.records
        ]
        out[f"policy:{policy.name}"] = digest(
            {"rows": rows, "summary": result.summary, "dur": result.duration_s}
        )

    from repro.scenarios.sweep import run_sweep

    out["scenarios"] = digest(
        run_sweep(
            scenarios=("steady-poisson", "spike-train"),
            policies=("vllm", "kunserve"),
            seed=42,
            max_workers=1,
        )
    )

    from repro.fleet.sweep import run_fleet_sweep

    out["fleet"] = digest(
        run_fleet_sweep(
            scenarios=("steady-poisson",),
            policies=("vllm",),
            routers=("least_loaded", "power_of_two_choices"),
            autoscalers=("fixed", "elastic"),
            seed=42,
            max_workers=1,
        )
    )

    from repro.multicluster.sweep import run_multicluster_sweep

    out["multicluster"] = digest(
        run_multicluster_sweep(
            scenarios=("steady-poisson",),
            policies=("vllm",),
            cluster_counts=(2,),
            seed=42,
            max_workers=1,
        )
    )

    from repro.chaos.sweep import run_chaos_sweep

    out["chaos"] = digest(
        run_chaos_sweep(
            scenarios=("steady-poisson",),
            policies=("vllm",),
            faults=("cluster-outage",),
            migrations=("sticky", "migrate"),
            seed=42,
            max_workers=1,
        )
    )

    from repro.serve.sweep import run_serve_sweep

    out["serve"] = digest(
        run_serve_sweep(
            scenarios=("spike-train",),
            policies=("vllm",),
            clients=("open", "16"),
            retries=("backoff",),
            backpressures=("on",),
            seed=42,
            max_workers=1,
        )
    )

    json.dump(out, open(sys.argv[1], "w"), indent=1)
    print(json.dumps(out, indent=1))


if __name__ == "__main__":
    main()
