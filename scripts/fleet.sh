#!/usr/bin/env bash
# Run the elastic-fleet sweep and write FLEET_results.json at the repository
# root.  Extra arguments are forwarded to `python -m repro.fleet`
# (e.g. `scripts/fleet.sh --scale full`, `scripts/fleet.sh --list-routers`,
# `scripts/fleet.sh --scenarios mmpp-bursty --routers least_loaded session_affinity`).
set -euo pipefail
cd "$(dirname "$0")/.."
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" exec python -m repro.fleet "$@"
