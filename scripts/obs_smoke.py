#!/usr/bin/env python3
"""CI gate for the observability layer (the ``obs-smoke`` step).

Takes a chaos result document produced with ``--alerts`` over the
cluster-outage × {sticky, migrate} grid and asserts the behaviour the
alert engine exists to surface:

* every entry carries a well-formed ``alerts`` block;
* at least one alert both **fires and resolves** within the run — the
  engine tracks state transitions, not just breaches (the WAN burst
  during outage recovery is the expected instance);
* ``recovery_transient`` fires under the ``sticky`` session policy and
  *never* under ``migrate`` — the displaced-work backlog only lingers
  when sessions pin to their dead cluster, so a firing under ``migrate``
  means either the simulator or the rule regressed.

Stdlib-only on purpose, like ``bench_compare.py``: it runs anywhere a
checkout exists without ``PYTHONPATH`` setup.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: alerts-block keys every --alerts entry must carry (mirrors
#: repro.obs.schema.ALERTS_BLOCK_KEYS, restated here so this script
#: stays import-free).
BLOCK_KEYS = (
    "alerts_schema_version",
    "rules",
    "events",
    "firing",
    "resolved",
    "active_at_end",
)


def check(document: dict) -> list:
    """Return a list of failure strings for the alerts document."""
    failures = []
    entries = document.get("entries", [])
    if not entries:
        return ["document has no entries"]

    resolved_pairs = 0
    transient_by_migration = {}
    for entry in entries:
        cell = "{scenario}/{policy}/{faults}/{migration}".format(**entry)
        block = entry.get("alerts")
        if not isinstance(block, dict):
            failures.append(f"{cell}: missing alerts block")
            continue
        missing = [key for key in BLOCK_KEYS if key not in block]
        if missing:
            failures.append(f"{cell}: alerts block missing keys {missing}")
            continue
        # Count (rule, series) pairs that completed a fire->resolve cycle.
        fired = set()
        for event in block["events"]:
            pair = (event["rule"], event["series"])
            if event["state"] == "firing":
                fired.add(pair)
            elif event["state"] == "resolved" and pair in fired:
                resolved_pairs += 1
        transient_by_migration.setdefault(entry["migration"], 0)
        transient_by_migration[entry["migration"]] += sum(
            1
            for event in block["events"]
            if event["rule"] == "recovery_transient" and event["state"] == "firing"
        )

    if resolved_pairs < 1:
        failures.append(
            "no alert completed a fire->resolve cycle anywhere in the grid "
            "(expected at least the outage-window wan_saturation burst)"
        )
    if transient_by_migration.get("sticky", 0) < 1:
        failures.append(
            "recovery_transient never fired under the sticky session policy"
        )
    if transient_by_migration.get("migrate", 0) > 0:
        failures.append(
            "recovery_transient fired under migrate — displaced work should "
            "drain when sessions migrate off the dead cluster"
        )
    return failures


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print("usage: obs_smoke.py CHAOS_alerts_results.json", file=sys.stderr)
        return 2
    try:
        document = json.loads(Path(argv[0]).read_text())
    except (OSError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    failures = check(document)
    if failures:
        print("obs smoke FAILED:", *failures, sep="\n  ", file=sys.stderr)
        return 1
    cells = len(document.get("entries", []))
    print(f"obs smoke passed: {cells} alert-annotated cells checked")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
