"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so editable installs work on environments
with older setuptools/pip that lack PEP 660 support (e.g. offline boxes
without the ``wheel`` package).
"""

from setuptools import setup

setup()
