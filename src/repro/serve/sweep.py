"""Serve sweep (scenario × policy × clients × retry × backpressure grid),
executed by the unified sweep engine.

Every cell replays a registered scenario through a fleet-enabled serving
system **online** — arrivals enter the loop incrementally, never
pre-scheduled — under one of two frontends:

* ``clients="open"`` — an :class:`~repro.serve.gateway.OnlineGateway`
  replays the scenario trace on its original schedule, no matter how
  the system is doing (the open-loop baseline).  Retry and backpressure
  do not apply, so open cells are pinned to ``retry="none"``,
  ``backpressure="off"``;
* ``clients="<N>"`` — a :class:`~repro.serve.clients.ClosedLoopPopulation`
  of N clients works through the *same* trace as session-aware intent
  scripts, pacing itself with seeded think times, retrying sheds with
  bounded backoff and optionally throttling under backpressure.

The admission settings are deliberately tight (shallow queues, short
TTFT shed budget) so the default overload scenario actually sheds —
open- vs. closed-loop and retry vs. give-up become *measured*
differences, which is what ``tests/test_serve.py`` pins.

Execution mirrors :mod:`repro.fleet.sweep` exactly: every cell is a
:class:`~repro.sweeps.task.SweepTask` (content hash over the scenario
fingerprint, frontend configuration, fleet config, scale, seed and
``repro`` version), cache hits skip recomputation, misses fan out over
the engine's shared warm worker pool, and the assembled
``SERVE_results.json`` document is bit-identical across runs, worker
counts, and cold vs. warm caches, modulo the ``wall_s*`` and
cache-accounting fields.
"""

from __future__ import annotations

import dataclasses
import json
import math
import time
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.experiments.runner import ExperimentScale
from repro.fleet.config import AdmissionConfig, make_fleet_config
from repro.policies import make_policy
from repro.scenarios.registry import ScenarioSpec, get_scenario, list_scenarios
from repro.scenarios.sweep import build_cell_config, spec_fingerprint
from repro.serve.clients import ClosedLoopPopulation
from repro.serve.config import (
    BACKPRESSURE_MODES,
    RETRY_POLICIES,
    ClientPopulationConfig,
    list_backpressure_modes,
    list_retry_policies,
)
from repro.serve.gateway import OnlineGateway
from repro.serve.schema import SCHEMA_VERSION
from repro.serve.sources import workload_arrivals
from repro.serving.system import ClusterServingSystem
from repro.sweeps import ResultCache, SweepTask, run_tasks
from repro.version import __version__
from repro.workloads.slo import LatencyRecord, baseline_p50, slo_violation_ratio

#: The open-loop token of the ``clients`` axis; every other token is a
#: positive integer client count (as a string, e.g. ``"16"``).
OPEN_LOOP = "open"

#: Default sweep scale; what the ``python -m repro.serve`` acceptance run uses.
QUICK_SERVE_SCALE = ExperimentScale(
    name="serve-quick",
    num_instances=2,
    trace_duration_s=30.0,
    drain_timeout_s=30.0,
)

FULL_SERVE_SCALE = ExperimentScale(
    name="serve-full",
    num_instances=4,
    trace_duration_s=90.0,
    drain_timeout_s=60.0,
)

SERVE_SCALES: Dict[str, ExperimentScale] = {
    "quick": QUICK_SERVE_SCALE,
    "full": FULL_SERVE_SCALE,
}

#: Default grid axes: the open-loop baseline against one closed-loop
#: population, crossing both retry policies with both backpressure modes
#: on an overload scenario.
DEFAULT_SCENARIOS: Tuple[str, ...] = ("spike-train",)
DEFAULT_POLICIES: Tuple[str, ...] = ("vllm",)
DEFAULT_CLIENTS: Tuple[str, ...] = (OPEN_LOOP, "64")
DEFAULT_RETRIES: Tuple[str, ...] = ("none", "backoff")
DEFAULT_BACKPRESSURE: Tuple[str, ...] = ("off", "on")

#: Fixed fleet configuration of every cell.  Admission is deliberately
#: *tight* (contrast :data:`repro.fleet.sweep.SWEEP_ADMISSION`): shallow
#: per-tenant queues and a short TTFT shed budget, so the overload
#: scenarios shed visibly and client retry behaviour has something to
#: react to.
SERVE_ROUTER = "least_loaded"
SERVE_AUTOSCALER = "fixed"
SERVE_ADMISSION = AdmissionConfig(
    max_queue_depth=4,
    max_group_waiting=4,
    ttft_shed_s=3.0,
)

#: Closed-loop pacing (see :class:`~repro.serve.config.ClientPopulationConfig`).
THINK_TIME_MEAN_S = 0.5
STARTUP_WINDOW_S = 1.0

#: Closed-loop cells run to ``trace_duration_s * factor + drain_timeout_s``:
#: a population pacing itself through the trace takes a multiple of the
#: open-loop duration (intents serialise per client), and the horizon must
#: be generous enough that retry-with-backoff can drain its give-up savings.
CLOSED_HORIZON_FACTOR = 12.0

#: Default output location: the repository root, next to BENCH_results.json.
DEFAULT_OUTPUT = Path(__file__).resolve().parents[3] / "SERVE_results.json"


def client_population_config(clients: str, retry: str, backpressure: str) -> ClientPopulationConfig:
    """The population config of one closed-loop cell (also hashed into
    the cell's cache key, so pacing-constant changes invalidate cells)."""
    return ClientPopulationConfig(
        num_clients=int(clients),
        think_time_mean_s=THINK_TIME_MEAN_S,
        startup_window_s=STARTUP_WINDOW_S,
        retry=RETRY_POLICIES[retry],
        backpressure=BACKPRESSURE_MODES[backpressure],
    )


def cell_horizon_s(clients: str, scale: ExperimentScale) -> float:
    """The ``run_online`` horizon of one cell."""
    if clients == OPEN_LOOP:
        return scale.trace_duration_s + scale.drain_timeout_s
    return scale.trace_duration_s * CLOSED_HORIZON_FACTOR + scale.drain_timeout_s


def _percentile(values: Sequence[float], q: float) -> Optional[float]:
    """Nearest-rank percentile; ``None`` on an empty sample."""
    if not values:
        return None
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


@dataclasses.dataclass(frozen=True)
class ServeCellResult:
    """Raw outcome of one grid cell, before SLO aggregation.

    ``latencies`` holds one ``(client_ttft, mean_tpot)`` pair per *intent*
    (``(None, None)`` for abandoned / incomplete ones) so the aggregator
    can derive cross-cell SLO baselines from client-perceived latency.
    """

    scenario: str
    policy: str
    policy_name: str
    mode: str
    clients: str
    retry: str
    backpressure: str
    router: str
    autoscaler: str
    workload: str
    horizon_s: float
    offered: int
    issued: int
    submitted: int
    finished: int
    shed: int
    retries: int
    retry_pending: int
    gave_up: int
    incomplete: int
    client_incomplete: int
    completion_ratio: float
    goodput_per_submitted: float
    client_ttft_p50: Optional[float]
    client_ttft_p90: Optional[float]
    client_ttft_p99: Optional[float]
    client_e2e_p50: Optional[float]
    summary: Dict[str, float]
    fleet_stats: Dict[str, float]
    latencies: Tuple[Tuple[Optional[float], Optional[float]], ...]
    wall_s: float
    #: per-stage latency attribution (``--trace`` cells only; ``None``
    #: when the cell ran untraced or with a disabled tracer).
    stage_breakdown: Optional[Dict[str, Any]] = None
    #: alert timeline block (``--alerts`` cells only; see
    #: :mod:`repro.obs.schema`).
    alerts: Optional[Dict[str, Any]] = None


def normalize_clients(token: Union[str, int]) -> str:
    """Canonicalise a ``clients`` axis value ("open" or a positive count)."""
    if isinstance(token, int):
        token = str(token)
    if token == OPEN_LOOP:
        return token
    try:
        count = int(token)
    except ValueError:
        raise ValueError(
            f"clients must be {OPEN_LOOP!r} or a positive integer, got {token!r}"
        ) from None
    if count < 1:
        raise ValueError(f"client count must be >= 1, got {count}")
    return str(count)


def run_serve_cell(
    scenario: Union[str, ScenarioSpec],
    policy_key: str,
    clients: Union[str, int],
    retry: str,
    backpressure: str,
    scale: ExperimentScale,
    seed: int = 42,
    trace: Union[bool, str] = False,
    on_tracer=None,
    alerts: bool = False,
) -> ServeCellResult:
    """Run one scenario online under one frontend configuration; the
    in-process cell primitive.

    ``trace=True`` attaches a :class:`repro.trace.Tracer` and fills the
    result's ``stage_breakdown``; ``trace="disabled"`` attaches the
    tracer with recording off — the wired-but-idle configuration the
    ``trace_overhead`` benchmark measures.  ``on_tracer`` (if given) is
    called with the tracer right after it attaches, so callers can keep a
    handle for span export.

    ``alerts=True`` attaches an in-memory metrics monitor (fleet source,
    plus the client source on closed-loop cells), replays the
    :func:`repro.obs.default_rule_pack` over the recorded scrape stream,
    and fills the result's ``alerts`` block.
    """
    spec = scenario if isinstance(scenario, ScenarioSpec) else get_scenario(scenario)
    clients = normalize_clients(clients)
    if clients == OPEN_LOOP and (retry != "none" or backpressure != "off"):
        raise ValueError(
            "open-loop cells have no clients to retry or throttle; "
            "use retry='none', backpressure='off'"
        )
    workload = spec.build_workload(scale, seed)
    policy = make_policy(policy_key)
    config = build_cell_config(spec, scale, seed=seed)
    config.fleet = make_fleet_config(
        router=SERVE_ROUTER, autoscaler=SERVE_AUTOSCALER, admission=SERVE_ADMISSION
    )
    horizon = cell_horizon_s(clients, scale)
    start = time.perf_counter()
    system = ClusterServingSystem(config, policy)
    tracer = None
    if trace:
        tracer = system.attach_tracer(enabled=(trace != "disabled"))
        if on_tracer is not None:
            on_tracer(tracer)
    chunks: List[Tuple[str, float]] = []
    monitor = None
    if alerts:
        monitor = system.attach_metrics(
            callback=lambda text, now: chunks.append((text, now))
        )
    if clients == OPEN_LOOP:
        gateway = OnlineGateway(system, workload_arrivals(workload))
        result = system.run_online([gateway], until=horizon, workload_name=workload.name)
        fleet_stats = system.fleet.stats()
        submitted = result.submitted_requests
        finished = result.finished_requests
        shed = int(fleet_stats["shed"])
        # Open-loop accounting: one attempt per intent; every shed is
        # abandoned on the spot (nobody is there to retry it).
        counts = {
            "offered": submitted,
            "issued": submitted,
            "retries": 0,
            "retry_pending": 0,
            "gave_up": shed,
            "client_incomplete": submitted - finished - shed,
        }
        latencies = tuple((r.ttft, r.mean_tpot) for r in result.records)
        client_ttfts = [r.ttft for r in result.records if r.ttft is not None]
        client_e2es = [
            r.e2e_latency for r in result.records if r.e2e_latency is not None
        ]
    else:
        population = ClosedLoopPopulation(
            system,
            workload,
            client_population_config(clients, retry, backpressure),
            seed=seed,
        )
        if monitor is not None:
            from repro.metrics import client_metrics_source

            monitor.add_source(client_metrics_source(population))
        result = system.run_online(
            [population], until=horizon, workload_name=workload.name
        )
        fleet_stats = system.fleet.stats()
        submitted = result.submitted_requests
        finished = result.finished_requests
        shed = int(fleet_stats["shed"])
        stats = population.stats()
        counts = {
            "offered": stats["offered"],
            "issued": stats["issued"],
            "retries": stats["retries"],
            "retry_pending": stats["retry_pending"],
            "gave_up": stats["gave_up"],
            "client_incomplete": stats["client_incomplete"],
        }
        latencies = population.client_latency_pairs()
        client_ttfts = [t for t, _ in latencies if t is not None]
        client_e2es = list(population.client_e2e_latencies())
    wall_s = time.perf_counter() - start
    stage_breakdown = None
    if tracer is not None and tracer.enabled:
        from repro.trace import LatencyAttribution

        stage_breakdown = LatencyAttribution.from_tracer(tracer).stage_breakdown()
    alerts_block = None
    if alerts:
        from repro.obs import evaluate_monitor_chunks

        alerts_block = evaluate_monitor_chunks(chunks)
    return ServeCellResult(
        scenario=spec.name,
        policy=policy_key,
        policy_name=policy.name,
        mode=OPEN_LOOP if clients == OPEN_LOOP else "closed",
        clients=clients,
        retry=retry,
        backpressure=backpressure,
        router=SERVE_ROUTER,
        autoscaler=SERVE_AUTOSCALER,
        workload=workload.name,
        horizon_s=horizon,
        offered=counts["offered"],
        issued=counts["issued"],
        submitted=submitted,
        finished=finished,
        shed=shed,
        retries=counts["retries"],
        retry_pending=counts["retry_pending"],
        gave_up=counts["gave_up"],
        incomplete=submitted - finished - shed,
        client_incomplete=counts["client_incomplete"],
        completion_ratio=result.completion_ratio,
        goodput_per_submitted=finished / submitted if submitted else 1.0,
        client_ttft_p50=_percentile(client_ttfts, 50),
        client_ttft_p90=_percentile(client_ttfts, 90),
        client_ttft_p99=_percentile(client_ttfts, 99),
        client_e2e_p50=_percentile(client_e2es, 50),
        summary=result.summary,
        fleet_stats=fleet_stats,
        latencies=latencies,
        wall_s=wall_s,
        stage_breakdown=stage_breakdown,
        alerts=alerts_block,
    )


def stream_cell_metrics(
    scenario: Union[str, ScenarioSpec],
    policy_key: str,
    clients: Union[str, int],
    retry: str,
    backpressure: str,
    scale: ExperimentScale,
    seed: int,
    path: Path,
    trace: bool = False,
) -> int:
    """Replay one cell inline with a live Prometheus metrics stream.

    Same construction as :func:`run_serve_cell`, but with a
    :class:`repro.metrics.MetricsMonitor` attached — including the
    client-side source (active clients, retries, give-ups) for
    closed-loop cells — streaming text scrapes to ``path``; returns the
    number of scrapes written.  This is what ``python -m repro.serve
    --metrics-out`` runs (uncached — the stream is the point).  With
    ``trace=True`` a span tracer attaches and the stream additionally
    carries the ``repro_stage_duration_seconds`` histogram.
    """
    spec = scenario if isinstance(scenario, ScenarioSpec) else get_scenario(scenario)
    clients = normalize_clients(clients)
    workload = spec.build_workload(scale, seed)
    config = build_cell_config(spec, scale, seed=seed)
    config.fleet = make_fleet_config(
        router=SERVE_ROUTER, autoscaler=SERVE_AUTOSCALER, admission=SERVE_ADMISSION
    )
    system = ClusterServingSystem(config, make_policy(policy_key))
    monitor = system.attach_metrics(path=path)
    if trace:
        from repro.metrics import trace_metrics_source

        monitor.add_source(trace_metrics_source(system.attach_tracer()))
    if clients == OPEN_LOOP:
        frontend = OnlineGateway(system, workload_arrivals(workload))
    else:
        from repro.metrics import client_metrics_source

        frontend = ClosedLoopPopulation(
            system,
            workload,
            client_population_config(clients, retry, backpressure),
            seed=seed,
        )
        monitor.add_source(client_metrics_source(frontend))
    system.run_online(
        [frontend], until=cell_horizon_s(clients, scale), workload_name=workload.name
    )
    return monitor.scrapes


# ----------------------------------------------------------------------
# Sweep-engine adapter
# ----------------------------------------------------------------------
def run_serve_cell_payload(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """Sweep-engine runner: one serve cell as a JSON-able payload."""
    cell = run_serve_cell(
        params["scenario"],
        params["policy"],
        params["clients"],
        params["retry"],
        params["backpressure"],
        params["scale"],
        seed,
        trace=params.get("trace", False),
        alerts=params.get("alerts", False),
    )
    return dataclasses.asdict(cell)


def serve_cell_task(
    spec: ScenarioSpec,
    policy: str,
    clients: str,
    retry: str,
    backpressure: str,
    scale: ExperimentScale,
    seed: int,
    trace: bool = False,
    alerts: bool = False,
) -> SweepTask:
    """Describe one serve grid cell as a cacheable sweep task."""
    fleet = make_fleet_config(
        router=SERVE_ROUTER, autoscaler=SERVE_AUTOSCALER, admission=SERVE_ADMISSION
    )
    frontend: Dict[str, Any] = {"clients": clients}
    if clients != OPEN_LOOP:
        frontend["population"] = dataclasses.asdict(
            client_population_config(clients, retry, backpressure)
        )
    params: Dict[str, Any] = {
        "scenario": spec,
        "policy": policy,
        "clients": clients,
        "retry": retry,
        "backpressure": backpressure,
        "scale": scale,
    }
    key: Dict[str, Any] = {
        "kind": "serve-cell",
        "schema_version": SCHEMA_VERSION,
        "scenario": spec_fingerprint(spec),
        "policy": policy,
        "frontend": frontend,
        "horizon_s": cell_horizon_s(clients, scale),
        "fleet": {
            **{k: v for k, v in dataclasses.asdict(fleet).items() if k != "admission"},
            "admission": dataclasses.asdict(fleet.admission),
        },
        "scale": dataclasses.asdict(scale),
    }
    if trace:
        # Only traced cells key on the axis: untraced cache entries stay
        # valid (and bit-identical) whether or not tracing exists.
        params["trace"] = True
        key["trace"] = True
    if alerts:
        # Same opt-in pattern: only alert cells key on the axis.
        params["alerts"] = True
        key["alerts"] = True
    return SweepTask(
        runner="repro.serve.sweep:run_serve_cell_payload",
        params=params,
        key=key,
        seed=seed,
        label=f"{spec.name}/{policy}/{clients}/{retry}/{backpressure}",
    )


def serve_grid(
    scenarios: Sequence[str],
    policies: Sequence[str],
    clients: Sequence[str],
    retries: Sequence[str],
    backpressures: Sequence[str],
) -> List[Tuple[str, str, str, str, str]]:
    """The filtered cell product of the sweep axes.

    Open-loop has no clients to retry or throttle, so ``clients="open"``
    contributes exactly one cell per (scenario, policy) — pinned to
    ``retry="none"``, ``backpressure="off"`` — instead of a redundant
    cell per retry × backpressure combination.
    """
    cells: List[Tuple[str, str, str, str, str]] = []
    for scenario in scenarios:
        for policy in policies:
            for token in clients:
                if token == OPEN_LOOP:
                    cells.append((scenario, policy, token, "none", "off"))
                    continue
                for retry in retries:
                    for backpressure in backpressures:
                        cells.append((scenario, policy, token, retry, backpressure))
    return cells


def _scenario_entries(
    spec: ScenarioSpec, cells: Sequence[Dict[str, Any]]
) -> List[Dict]:
    """Turn one scenario's cell payloads into schema entries with derived SLOs.

    The SLO reference point is the best cell's P50 (client-perceived TTFT
    and TPOT independently) *within this scenario* across the whole serve
    grid, scaled by the scenario's ``slo_scale`` — so open- and
    closed-loop cells are graded against the same healthy-system latency,
    and abandoned intents count as violations.
    """
    records_by_cell = {
        index: [LatencyRecord(t, p) for t, p in cell["latencies"]]
        for index, cell in enumerate(cells)
    }
    best_ttft, best_tpot = baseline_p50(records_by_cell)
    ttft_slo_s = spec.slo_scale * best_ttft
    tpot_slo_s = spec.slo_scale * best_tpot
    entries = []
    for index, cell in enumerate(cells):
        violation = slo_violation_ratio(
            records_by_cell[index], ttft_slo_s=ttft_slo_s, tpot_slo_s=tpot_slo_s
        )
        stats = cell["fleet_stats"]
        summary = cell["summary"]
        entries.append(
            {
                "scenario": cell["scenario"],
                "policy": cell["policy"],
                "policy_name": cell["policy_name"],
                "mode": cell["mode"],
                "clients": cell["clients"],
                "retry": cell["retry"],
                "backpressure": cell["backpressure"],
                "router": cell["router"],
                "autoscaler": cell["autoscaler"],
                "workload": cell["workload"],
                "horizon_s": cell["horizon_s"],
                "offered": cell["offered"],
                "issued": cell["issued"],
                "submitted": cell["submitted"],
                "finished": cell["finished"],
                "shed": cell["shed"],
                "retries": cell["retries"],
                "retry_pending": cell["retry_pending"],
                "gave_up": cell["gave_up"],
                "incomplete": cell["incomplete"],
                "client_incomplete": cell["client_incomplete"],
                "completion_ratio": cell["completion_ratio"],
                "goodput_per_submitted": cell["goodput_per_submitted"],
                "client_ttft_p50": cell["client_ttft_p50"],
                "client_ttft_p90": cell["client_ttft_p90"],
                "client_ttft_p99": cell["client_ttft_p99"],
                "client_e2e_p50": cell["client_e2e_p50"],
                "ttft_p50": summary["ttft_p50"],
                "ttft_p90": summary["ttft_p90"],
                "ttft_p99": summary["ttft_p99"],
                "tpot_p50": summary["tpot_p50"],
                "tpot_p90": summary["tpot_p90"],
                "tpot_p99": summary["tpot_p99"],
                "throughput_tokens_per_s": summary["throughput_tokens_per_s"],
                "admitted": int(stats["admitted"]),
                "queue_peak": int(stats["queue_peak"]),
                "slo_scale": spec.slo_scale,
                "ttft_slo_s": ttft_slo_s,
                "tpot_slo_s": tpot_slo_s,
                "slo_violation_ratio": violation,
                "slo_attainment": 1.0 - violation,
                "wall_s": cell["wall_s"],
            }
        )
        if cell.get("stage_breakdown"):
            entries[-1]["stage_breakdown"] = cell["stage_breakdown"]
        if cell.get("alerts"):
            entries[-1]["alerts"] = cell["alerts"]
    return entries


def run_serve_sweep(
    *,
    scenarios: Optional[Sequence[str]] = None,
    policies: Optional[Sequence[str]] = None,
    clients: Optional[Sequence[Union[str, int]]] = None,
    retries: Optional[Sequence[str]] = None,
    backpressures: Optional[Sequence[str]] = None,
    scale: ExperimentScale = QUICK_SERVE_SCALE,
    seed: int = 42,
    max_workers: Optional[int] = None,
    use_cache: bool = False,
    cache_dir: Optional[Path] = None,
    trace: bool = False,
    alerts: bool = False,
) -> Dict:
    """Sweep the scenario × policy × clients × retry × backpressure grid.

    Args:
        scenarios: scenario names (default: :data:`DEFAULT_SCENARIOS`).
        policies: overload-policy keys (default: :data:`DEFAULT_POLICIES`).
        clients: client axis — ``"open"`` and/or positive counts
            (default: :data:`DEFAULT_CLIENTS`).
        retries: retry-policy names (default: :data:`DEFAULT_RETRIES`).
        backpressures: backpressure modes (default: :data:`DEFAULT_BACKPRESSURE`).
        scale: cluster size / trace length of every cell.
        seed: sweep seed; every cell derives its randomness from it.
        max_workers: worker processes; ``1`` runs cells inline (no pool),
            ``None`` sizes the pool to the grid (capped by the CPUs this
            process may use, cgroup limits included).
        use_cache: serve unchanged cells from the on-disk result cache
            and store fresh ones (the CLI enables this by default; the
            Python API defaults to off).
        cache_dir: cache location override (default ``.repro_cache/`` at
            the repository root, or ``$REPRO_CACHE_DIR``).
        trace: attach a per-request span tracer to every cell and add a
            ``stage_breakdown`` block (per-stage latency attribution) to
            each entry.  Traced cells cache under a distinct key.
        alerts: attach an in-memory metrics monitor to every cell,
            replay the default alert-rule pack over its scrape stream,
            and add an ``alerts`` block (firing/resolved timeline) to
            each entry.  Alert cells cache under a distinct key; cells
            without the axis stay bit-identical.
    """
    names = list(scenarios) if scenarios is not None else list(DEFAULT_SCENARIOS)
    policy_keys = list(policies) if policies is not None else list(DEFAULT_POLICIES)
    client_tokens = [
        normalize_clients(c)
        for c in (clients if clients is not None else DEFAULT_CLIENTS)
    ]
    retry_names = list(retries) if retries is not None else list(DEFAULT_RETRIES)
    bp_names = (
        list(backpressures) if backpressures is not None else list(DEFAULT_BACKPRESSURE)
    )
    unknown = [n for n in names if n not in list_scenarios()]
    if unknown:
        raise KeyError(f"unknown scenarios {unknown}; known: {', '.join(list_scenarios())}")
    unknown = [r for r in retry_names if r not in list_retry_policies()]
    if unknown:
        raise KeyError(
            f"unknown retry policies {unknown}; known: {', '.join(list_retry_policies())}"
        )
    unknown = [b for b in bp_names if b not in list_backpressure_modes()]
    if unknown:
        raise KeyError(
            f"unknown backpressure modes {unknown}; "
            f"known: {', '.join(list_backpressure_modes())}"
        )
    if not names or not policy_keys or not client_tokens or not retry_names or not bp_names:
        raise ValueError("the serve sweep needs at least one value on every axis")
    if max_workers is not None and max_workers < 1:
        raise ValueError("max_workers must be >= 1")
    specs = {name: get_scenario(name) for name in names}
    grid = serve_grid(names, policy_keys, client_tokens, retry_names, bp_names)
    tasks = [
        serve_cell_task(
            specs[scenario], policy, token, retry, backpressure, scale, seed,
            trace=trace, alerts=alerts,
        )
        for scenario, policy, token, retry, backpressure in grid
    ]

    cache = ResultCache(cache_dir) if use_cache else None
    start = time.perf_counter()
    outcome = run_tasks(tasks, max_workers=max_workers, cache=cache)
    wall_s_total = time.perf_counter() - start

    by_scenario: Dict[str, List[Dict[str, Any]]] = {name: [] for name in names}
    for cell in outcome.results:
        by_scenario[cell["scenario"]].append(cell)
    entries: List[Dict] = []
    for name in names:
        entries.extend(_scenario_entries(specs[name], by_scenario[name]))

    return {
        "schema_version": SCHEMA_VERSION,
        "repro_version": __version__,
        "seed": seed,
        "scale": {
            "name": scale.name,
            "num_instances": scale.num_instances,
            "trace_duration_s": scale.trace_duration_s,
            "drain_timeout_s": scale.drain_timeout_s,
        },
        "scenarios": names,
        "policies": policy_keys,
        "clients": client_tokens,
        "retries": retry_names,
        "backpressure": bp_names,
        "router": SERVE_ROUTER,
        "autoscaler": SERVE_AUTOSCALER,
        "trace": bool(trace),
        # Only present when the opt-in axis was enabled: plain documents
        # keep their pre-alerts byte shape (no schema version bump).
        **({"alerts": True} if alerts else {}),
        "entries": entries,
        "cache_hits": outcome.cache_hits,
        "cache_misses": outcome.cache_misses,
        "wall_s_total": wall_s_total,
    }


def write_results(document: Dict, path: Optional[Path] = None) -> Path:
    """Write the document to ``SERVE_results.json`` (repo root by default)."""
    target = Path(path) if path is not None else DEFAULT_OUTPUT
    target.write_text(json.dumps(document, indent=2, sort_keys=False) + "\n")
    return target


def format_results(document: Dict) -> str:
    """Human-readable table of a serve sweep document."""
    scale = document["scale"]
    lines = [
        f"repro {document['repro_version']} · scale {scale['name']} "
        f"({scale['num_instances']} instances, {scale['trace_duration_s']:.0f}s trace) "
        f"· seed {document['seed']} · {len(document['entries'])} cells "
        f"in {document['wall_s_total']:.1f}s",
        f"{'scenario':<16} {'clients':<7} {'retry':<8} {'bp':<3} "
        f"{'offer':>5} {'subm':>5} {'fin':>5} {'shed':>5} {'rtry':>5} "
        f"{'gvup':>5} {'goodput':>8} {'c_ttft50':>9} {'slo_att':>8}",
    ]
    for entry in document["entries"]:
        ttft = entry["client_ttft_p50"]
        lines.append(
            f"{entry['scenario']:<16} {entry['clients']:<7} {entry['retry']:<8} "
            f"{entry['backpressure']:<3} {entry['offered']:>5d} {entry['submitted']:>5d} "
            f"{entry['finished']:>5d} {entry['shed']:>5d} {entry['retries']:>5d} "
            f"{entry['gave_up']:>5d} {entry['goodput_per_submitted']:>8.3f} "
            f"{ttft if ttft is None else format(ttft, '9.3f')!s:>9} "
            f"{entry['slo_attainment']:>8.2f}"
        )
    return "\n".join(lines)
