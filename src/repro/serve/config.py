"""Client-behaviour configuration for the online serving frontend.

Import-light on purpose (mirrors :mod:`repro.fleet.config`): these
dataclasses travel inside sweep-task cache keys via
:func:`dataclasses.asdict`, so they must stay frozen, JSON-able and free
of heavy imports.

Retry accounting vocabulary (used consistently by
:mod:`repro.serve.clients`, the ``SERVE_results.json`` schema and
``tests/invariants.py``):

* an **intent** is one logical request a client wants served (one turn
  of a session);
* an **attempt** is one engine submission of that intent — the first
  attempt plus up to ``max_attempts - 1`` retries;
* a client **gives up** on an intent when a shed exhausts its attempt
  budget; it then moves on to its next intent after a think pause.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with multiplicative jitter.

    ``max_attempts`` counts *submissions*, so ``1`` means no retries.
    The delay before retry ``k`` (1-based) is::

        min(backoff_cap_s, backoff_base_s * backoff_factor ** (k - 1))

    scaled by a seeded jitter factor uniform in
    ``[1 - jitter_fraction, 1 + jitter_fraction]``.
    """

    max_attempts: int = 1
    backoff_base_s: float = 0.5
    backoff_factor: float = 2.0
    backoff_cap_s: float = 8.0
    jitter_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1 (1 means no retries)")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff delays must be non-negative")
        if not 0.0 <= self.jitter_fraction < 1.0:
            raise ValueError("jitter_fraction must be in [0, 1)")

    @property
    def retries_enabled(self) -> bool:
        return self.max_attempts > 1

    def delay_s(self, retry_index: int, rng) -> float:
        """Backoff before the ``retry_index``-th retry (1-based), jittered."""
        if retry_index < 1:
            raise ValueError("retry_index is 1-based")
        base = min(
            self.backoff_cap_s,
            self.backoff_base_s * self.backoff_factor ** (retry_index - 1),
        )
        jitter = 1.0 + self.jitter_fraction * (2.0 * rng.uniform() - 1.0)
        return base * jitter


@dataclass(frozen=True)
class BackpressureConfig:
    """Client-side throttle driven by shed / queue-depth signals.

    While the channel reports pressure — the fleet backlog is at or above
    ``backlog_threshold``, or an admission shed was observed within the
    last ``shed_window_s`` — every client-side delay (think time, retry
    backoff) is stretched by ``throttle_factor``.  Disabled clients
    ignore the signals entirely.
    """

    enabled: bool = False
    backlog_threshold: int = 16
    shed_window_s: float = 5.0
    throttle_factor: float = 4.0

    def __post_init__(self) -> None:
        if self.backlog_threshold < 0:
            raise ValueError("backlog_threshold must be non-negative")
        if self.shed_window_s < 0:
            raise ValueError("shed_window_s must be non-negative")
        if self.throttle_factor < 1.0:
            raise ValueError("throttle_factor must be >= 1 (it stretches delays)")


@dataclass(frozen=True)
class ClientPopulationConfig:
    """One closed-loop client population: size, pacing, retry, backpressure."""

    num_clients: int = 8
    #: mean of the exponential think-time distribution between a client's
    #: completed (or abandoned) intent and its next issue.
    think_time_mean_s: float = 1.0
    #: clients stagger their very first issue uniformly over this window so
    #: the population does not arrive as one synchronized burst at t=0.
    startup_window_s: float = 1.0
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    backpressure: BackpressureConfig = field(default_factory=BackpressureConfig)

    def __post_init__(self) -> None:
        if self.num_clients < 1:
            raise ValueError("num_clients must be >= 1")
        if self.think_time_mean_s < 0 or self.startup_window_s < 0:
            raise ValueError("client pacing times must be non-negative")


#: Named retry policies the sweep grid accepts (``--retries``).
RETRY_POLICIES: Dict[str, RetryPolicy] = {
    "none": RetryPolicy(max_attempts=1),
    "backoff": RetryPolicy(
        max_attempts=4,
        backoff_base_s=0.5,
        backoff_factor=2.0,
        backoff_cap_s=8.0,
        jitter_fraction=0.25,
    ),
}

#: Named backpressure modes the sweep grid accepts (``--backpressure``).
BACKPRESSURE_MODES: Dict[str, BackpressureConfig] = {
    "off": BackpressureConfig(enabled=False),
    "on": BackpressureConfig(
        enabled=True,
        backlog_threshold=16,
        shed_window_s=5.0,
        throttle_factor=4.0,
    ),
}


def list_retry_policies() -> List[str]:
    """Registered retry-policy names in registration order."""
    return list(RETRY_POLICIES)


def list_backpressure_modes() -> List[str]:
    """Registered backpressure-mode names in registration order."""
    return list(BACKPRESSURE_MODES)
