"""Closed-loop client population with retry, give-up and backpressure.

Open-loop replay submits arrivals on a fixed schedule no matter how the
system is doing; real clients are *closed-loop*: each waits for its
previous request to resolve, thinks, then issues the next one — and when
the admission layer sheds them, they back off and retry instead of
silently vanishing.  This module models that population on the shared
deterministic event loop.

Vocabulary (shared with ``SERVE_results.json`` and
``tests/invariants.py``): an **intent** is one logical request (one
session turn); an **attempt** is one engine submission of an intent.
The accounting identities every run satisfies exactly:

* ``submitted_attempts == issued + retries``
* ``sheds_observed == retries + retry_pending + gave_up``
* ``offered == finished + gave_up + client_incomplete`` where
  ``client_incomplete`` counts intents still unissued, awaiting a
  pending retry, or in flight when the horizon ends.

Sessions: requests sharing a ``session_id`` are one multi-turn
conversation — all its turns belong to one client, issued strictly in
order.  Sessions are assigned to clients round-robin in first-arrival
order, so the partition is deterministic and independent of client
count randomness.

Client-perceived latency: TTFT is measured from the intent's *first*
submission, so retry delay (backoff included) is part of it — exactly
what a user staring at a spinner experiences.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.engine.request import Request
from repro.serve.config import ClientPopulationConfig
from repro.simulation.rng import SeededRNG
from repro.workloads.trace import Workload


@dataclasses.dataclass(frozen=True)
class Intent:
    """One logical request a client wants served."""

    prompt_tokens: int
    output_tokens: int
    slo_class: str
    session_id: Optional[str]


class _Client:
    """State machine of one closed-loop client."""

    __slots__ = ("client_id", "intents", "rng", "intent_index", "attempts",
                 "first_submit_time", "done")

    def __init__(self, client_id: int, intents: List[Intent], rng: SeededRNG) -> None:
        self.client_id = client_id
        self.intents = intents
        self.rng = rng
        self.intent_index = 0
        #: submissions of the current intent so far.
        self.attempts = 0
        #: when the current intent was first submitted (client-perceived t=0).
        self.first_submit_time: Optional[float] = None
        self.done = not intents

    @property
    def current_intent(self) -> Intent:
        return self.intents[self.intent_index]


def partition_intents(workload: Workload, num_clients: int) -> List[List[Intent]]:
    """Split a workload's requests into per-client intent scripts.

    Session-aware: turns sharing a ``session_id`` stay together, in
    arrival order, on one client; sessions (and session-less singletons)
    are dealt round-robin in first-arrival order.
    """
    sessions: Dict[str, List[Intent]] = {}
    order: List[str] = []
    for index, request in enumerate(workload.requests):
        key = request.session_id if request.session_id is not None else f"~{index}"
        if key not in sessions:
            sessions[key] = []
            order.append(key)
        sessions[key].append(
            Intent(
                prompt_tokens=request.prompt_tokens,
                output_tokens=request.output_tokens,
                slo_class=request.slo_class,
                session_id=request.session_id,
            )
        )
    scripts: List[List[Intent]] = [[] for _ in range(num_clients)]
    for position, key in enumerate(order):
        scripts[position % num_clients].extend(sessions[key])
    return scripts


class ClosedLoopPopulation:
    """N closed-loop clients driving one serving system.

    Pass to :meth:`~repro.serving.system.ClusterServingSystem.run_online`
    as a frontend.  Completion callbacks come from the system's group
    fan-out; shed callbacks from the fleet admission controller — so a
    fleet config is required whenever retries or backpressure are on
    (without admission nothing is ever shed and both would be dead code).
    """

    def __init__(
        self,
        system,
        workload: Workload,
        config: ClientPopulationConfig,
        *,
        seed: int = 42,
        name: str = "clients",
    ) -> None:
        self.system = system
        self.config = config
        self.name = name
        root = SeededRNG(seed, f"serve/{name}")
        scripts = partition_intents(workload, config.num_clients)
        self.clients = [
            _Client(i, intents, root.child(f"client-{i}"))
            for i, intents in enumerate(scripts)
        ]

        #: total intents across all clients (the demand).
        self.offered = sum(len(c.intents) for c in self.clients)
        #: intents whose first attempt was submitted.
        self.issued = 0
        #: retry attempts actually submitted.
        self.retries = 0
        #: retries scheduled but not yet submitted (pending backoff).
        self.retry_pending = 0
        #: intents completed (exactly one finishing attempt each).
        self.finished = 0
        #: intents abandoned after exhausting the attempt budget.
        self.gave_up = 0
        #: shed callbacks received for this population's attempts.
        self.sheds_observed = 0
        #: clients that still have intents to run.
        self.active_clients = sum(1 for c in self.clients if not c.done)

        self._inflight: Dict[int, _Client] = {}
        self._last_shed_time = float("-inf")
        self._client_latencies: List[Tuple[float, Optional[float]]] = []
        self._client_e2es: List[float] = []

        if config.retry.retries_enabled or config.backpressure.enabled:
            # add_shed_listener raises without a fleet; surface the why.
            if system.fleet is None:
                raise ValueError(
                    "closed-loop retry/backpressure need an admission layer: "
                    "set ServingConfig.fleet"
                )
        system.add_completion_listener(self._on_finished)
        if system.fleet is not None:
            system.add_shed_listener(self._on_shed)

    # ------------------------------------------------------------------
    # Frontend protocol
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Stagger every client's first issue over the startup window."""
        for client in self.clients:
            if client.done:
                continue
            delay = float(client.rng.uniform(0.0, self.config.startup_window_s))
            self._schedule_issue(client, delay)

    @property
    def done(self) -> bool:
        """True once every client ran out of intents (finished or gave up)."""
        return all(client.done for client in self.clients)

    @property
    def submitted_attempts(self) -> int:
        return self.issued + self.retries

    @property
    def in_flight(self) -> int:
        """Attempts submitted but neither finished nor shed yet."""
        return len(self._inflight)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def client_latency_pairs(self) -> Tuple[Tuple[Optional[float], Optional[float]], ...]:
        """One ``(client_ttft, mean_tpot)`` pair per *intent*.

        Finished intents carry their client-perceived TTFT (retry delay
        included); abandoned and incomplete intents contribute
        ``(None, None)`` so SLO attainment charges them as violations —
        a give-up is the worst possible latency, not a missing sample.
        """
        pairs: List[Tuple[Optional[float], Optional[float]]] = list(
            self._client_latencies
        )
        pairs.extend([(None, None)] * (self.offered - self.finished))
        return tuple(pairs)

    def client_e2e_latencies(self) -> Tuple[float, ...]:
        """First-submission -> finish latency of every completed intent."""
        return tuple(self._client_e2es)

    def stats(self) -> Dict[str, int]:
        """Counters for the ``SERVE_results.json`` entry of this run."""
        return {
            "clients": self.config.num_clients,
            "offered": self.offered,
            "issued": self.issued,
            "submitted_attempts": self.submitted_attempts,
            "finished": self.finished,
            "gave_up": self.gave_up,
            "retries": self.retries,
            "retry_pending": self.retry_pending,
            "sheds_observed": self.sheds_observed,
            "in_flight": self.in_flight,
            "client_incomplete": self.offered - self.finished - self.gave_up,
        }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _schedule_issue(self, client: _Client, delay: float) -> None:
        self.system.loop.schedule(
            delay, lambda c=client: self._issue(c), name=f"{self.name}-issue"
        )

    def _issue(self, client: _Client) -> None:
        intent = client.current_intent
        now = self.system.loop.now
        if client.attempts == 0:
            client.first_submit_time = now
            self.issued += 1
        else:
            self.retries += 1
            self.retry_pending -= 1
        client.attempts += 1
        request = Request(
            arrival_time=now,
            prompt_tokens=intent.prompt_tokens,
            max_output_tokens=intent.output_tokens,
            slo_class=intent.slo_class,
            session_id=intent.session_id,
        )
        # Register before submitting: a full queue sheds synchronously,
        # re-entering _on_shed while submit() is still on the stack.
        self._inflight[request.request_id] = client
        self.system.submit(request)

    def _on_finished(self, request: Request) -> None:
        client = self._inflight.pop(request.request_id, None)
        if client is None:
            return  # someone else's request (e.g. a gateway's)
        self.finished += 1
        first_submit = client.first_submit_time
        if request.first_token_time is not None and first_submit is not None:
            self._client_latencies.append(
                (request.first_token_time - first_submit, request.mean_tpot)
            )
        if request.finish_time is not None and first_submit is not None:
            self._client_e2es.append(request.finish_time - first_submit)
        self._advance(client)

    def _on_shed(self, request: Request) -> None:
        client = self._inflight.pop(request.request_id, None)
        if client is None:
            return
        self.sheds_observed += 1
        self._last_shed_time = self.system.loop.now
        policy = self.config.retry
        if client.attempts < policy.max_attempts:
            delay = policy.delay_s(client.attempts, client.rng) * self._pressure_factor()
            if self.system.tracer is not None:
                self.system.tracer.on_retry_backoff(request, delay)
            self.retry_pending += 1
            self._schedule_issue(client, delay)
        else:
            self.gave_up += 1
            self._advance(client)

    def _advance(self, client: _Client) -> None:
        """Move a client past its current intent (finished or abandoned)."""
        client.intent_index += 1
        client.attempts = 0
        client.first_submit_time = None
        if client.intent_index >= len(client.intents):
            client.done = True
            self.active_clients -= 1
            return
        self._schedule_issue(client, self._think_delay(client))

    def _think_delay(self, client: _Client) -> float:
        mean = self.config.think_time_mean_s
        base = float(client.rng.exponential(mean)) if mean > 0 else 0.0
        return base * self._pressure_factor()

    def _pressure_factor(self) -> float:
        """How much to stretch client-side delays right now."""
        bp = self.config.backpressure
        if not bp.enabled:
            return 1.0
        now = self.system.loop.now
        pressured = (now - self._last_shed_time) <= bp.shed_window_s
        if not pressured and self.system.fleet is not None:
            pressured = self.system.fleet.backlog() >= bp.backlog_threshold
        return bp.throttle_factor if pressured else 1.0
