"""Stable schema of ``SERVE_results.json``.

The serve sweep emits one JSON document per run, mirroring the
``BENCH`` / ``SCENARIO`` / ``FLEET`` / ``MULTICLUSTER`` / ``CHAOS``
result contracts: keys may be *added* in later schema versions but the
keys listed here are never renamed or removed, and ``tests/test_serve.py``
pins them.

Determinism contract: for a fixed (scenarios, policies, clients,
retries, backpressure, scale, seed) the document is bit-identical across
runs — including across parallel and sequential execution and across
cold vs. warm caches — *except* for the keys in
:data:`WALL_CLOCK_ENTRY_KEYS` / :data:`WALL_CLOCK_DOCUMENT_KEYS`; use
:func:`strip_wall_clock` before comparing documents.

Top-level document::

    {
      "schema_version": 1,         # int, bumped on any breaking change
      "repro_version": "1.3.0",    # repro package version that produced it
      "seed": int,                 # sweep seed
      "scale": {                   # ExperimentScale of each cell
        "name": str,
        "num_instances": int,
        "trace_duration_s": float,
        "drain_timeout_s": float
      },
      "scenarios": [str, ...],     # scenario names swept, in order
      "policies": [str, ...],      # overload-policy keys swept, in order
      "clients": [str, ...],       # client axis: "open" and/or counts
      "retries": [str, ...],       # retry-policy names swept, in order
      "backpressure": [str, ...],  # backpressure modes swept, in order
      "router": str,               # fleet router of every cell (fixed)
      "autoscaler": str,           # autoscaler preset of every cell (fixed)
      "entries": [ServeEntry, ...],
      "cache_hits": int,           # cells served from .repro_cache
      "cache_misses": int,         # cells actually executed this run
      "wall_s_total": float        # host wall-clock of the whole sweep
    }

Each entry (one scenario × policy × clients × retry × backpressure
cell; open-loop cells are pinned to ``retry="none"``,
``backpressure="off"`` since neither concept applies without clients)::

    {
      "scenario": str,             # registry name, e.g. "spike-train"
      "policy": str,               # overload-policy key, e.g. "vllm"
      "policy_name": str,          # display name, e.g. "vLLM (DP)"
      "mode": str,                 # "open" | "closed"
      "clients": str,              # "open" or the client count, e.g. "16"
      "retry": str,                # retry-policy name ("none", "backoff")
      "backpressure": str,         # backpressure mode ("off", "on")
      "router": str,               # fleet router
      "autoscaler": str,           # autoscaler preset
      "workload": str,             # materialised workload name
      "horizon_s": float,          # run_online() horizon of this cell
      "offered": int,              # logical intents (= trace requests)
      "issued": int,               # intents whose first attempt submitted
      "submitted": int,            # engine submissions (issued + retries)
      "finished": int,             # attempts finished before the horizon
      "shed": int,                 # attempts rejected by admission
      "retries": int,              # retry attempts actually submitted
      "retry_pending": int,        # retries scheduled, unsubmitted at end
      "gave_up": int,              # intents abandoned (attempts exhausted)
      "incomplete": int,           # submitted - finished - shed (in flight)
      "client_incomplete": int,    # offered - finished - gave_up
                                   # (unissued / awaiting retry / in flight)
      "completion_ratio": float,   # finished / submitted
      "goodput_per_submitted": float, # finished / submitted — the
                                   # open-vs-closed acceptance metric
      "client_ttft_p50": float|null, # client-perceived TTFT percentiles:
      "client_ttft_p90": float|null, # first submission -> first token,
      "client_ttft_p99": float|null, # retry + backoff delay included
      "client_e2e_p50": float|null,  # first submission -> finish
      "ttft_p50": float, "ttft_p90": float, "ttft_p99": float,  # server side
      "tpot_p50": float, "tpot_p90": float, "tpot_p99": float,
      "throughput_tokens_per_s": float,
      "admitted": int,             # attempts dispatched to a serving group
      "queue_peak": int,           # admission-queue peak depth
      "slo_scale": float,          # scenario SLO factor (x best-cell P50)
      "ttft_slo_s": float,         # SLOs are derived from *client-perceived*
      "tpot_slo_s": float,         # latencies, so give-ups count against
      "slo_violation_ratio": float,  # attainment as hard violations
      "slo_attainment": float,
      "wall_s": float              # host wall-clock of this cell
    }

Accounting identities (asserted by ``tests/invariants.py`` over every
entry): ``submitted == issued + retries``, ``submitted == finished +
shed + incomplete``, ``shed == retries + retry_pending + gave_up`` and
``offered == finished + gave_up + client_incomplete`` — every attempt
and every intent is accounted for somewhere.
"""

from __future__ import annotations

import copy
from typing import Dict, List

#: Current schema version; bump only on breaking changes.
SCHEMA_VERSION = 1

#: Keys every top-level document must carry.
DOCUMENT_KEYS = (
    "schema_version",
    "repro_version",
    "seed",
    "scale",
    "scenarios",
    "policies",
    "clients",
    "retries",
    "backpressure",
    "router",
    "autoscaler",
    "entries",
    "wall_s_total",
)

#: Additive schema-v1 keys: emitted by current sweeps but not required by
#: the validator, so documents written before they existed stay valid.
#: ``trace`` records whether the sweep ran with ``--trace``; traced
#: entries additionally carry an optional ``stage_breakdown`` block (the
#: per-stage latency attribution from :mod:`repro.trace`).  ``alerts``
#: records whether the sweep ran with ``--alerts``; alert entries carry
#: an optional ``alerts`` block (see :mod:`repro.obs.schema`).
OPTIONAL_DOCUMENT_KEYS = ("cache_hits", "cache_misses", "trace", "alerts")

#: Keys every entry must carry (the stable contract).
ENTRY_KEYS = (
    "scenario",
    "policy",
    "policy_name",
    "mode",
    "clients",
    "retry",
    "backpressure",
    "router",
    "autoscaler",
    "workload",
    "horizon_s",
    "offered",
    "issued",
    "submitted",
    "finished",
    "shed",
    "retries",
    "retry_pending",
    "gave_up",
    "incomplete",
    "client_incomplete",
    "completion_ratio",
    "goodput_per_submitted",
    "client_ttft_p50",
    "client_ttft_p90",
    "client_ttft_p99",
    "client_e2e_p50",
    "ttft_p50",
    "ttft_p90",
    "ttft_p99",
    "tpot_p50",
    "tpot_p90",
    "tpot_p99",
    "throughput_tokens_per_s",
    "admitted",
    "queue_peak",
    "slo_scale",
    "ttft_slo_s",
    "tpot_slo_s",
    "slo_violation_ratio",
    "slo_attainment",
    "wall_s",
)

#: Keys of the scale block (same as the other result schemas').
SCALE_KEYS = ("name", "num_instances", "trace_duration_s", "drain_timeout_s")

#: Entry keys carrying host wall-clock (excluded from determinism checks).
WALL_CLOCK_ENTRY_KEYS = ("wall_s",)

#: Document keys carrying host-side execution accounting (wall-clock and
#: cache hit/miss counts) — excluded from determinism checks: a warm rerun
#: must compare equal to the cold run that populated its cache.
WALL_CLOCK_DOCUMENT_KEYS = ("wall_s_total", "cache_hits", "cache_misses")


def strip_wall_clock(document: Dict) -> Dict:
    """A deep copy of ``document`` with every wall-clock key removed.

    Two sweeps of the same grid and seed must compare equal after this.
    """
    stripped = copy.deepcopy(document)
    for key in WALL_CLOCK_DOCUMENT_KEYS:
        stripped.pop(key, None)
    for entry in stripped.get("entries", []):
        for key in WALL_CLOCK_ENTRY_KEYS:
            entry.pop(key, None)
    return stripped


def validate_document(document: Dict) -> List[str]:
    """Return a list of schema violations (empty when the document is valid)."""
    problems: List[str] = []
    for key in DOCUMENT_KEYS:
        if key not in document:
            problems.append(f"missing top-level key {key!r}")
    if document.get("schema_version") != SCHEMA_VERSION:
        problems.append(
            f"schema_version is {document.get('schema_version')!r}, expected {SCHEMA_VERSION}"
        )
    for key in SCALE_KEYS:
        if key not in document.get("scale", {}):
            problems.append(f"missing scale key {key!r}")
    for key in ("scenarios", "policies", "clients", "retries", "backpressure"):
        if key in document and not isinstance(document[key], list):
            problems.append(f"{key} must be a list")
    entries = document.get("entries", [])
    if not isinstance(entries, list):
        problems.append("entries must be a list")
        entries = []
    for index, entry in enumerate(entries):
        for key in ENTRY_KEYS:
            if key not in entry:
                problems.append(
                    f"entry {index} ({entry.get('scenario')!r} x {entry.get('clients')!r} "
                    f"x {entry.get('retry')!r} x {entry.get('backpressure')!r}) "
                    f"missing {key!r}"
                )
    return problems
