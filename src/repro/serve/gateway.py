"""Online gateway: feed an arrival stream into the loop incrementally.

The rest of the stack pre-schedules every arrival of a workload before
the simulation starts (``schedule_workload``).  The gateway replaces
that with a strict online protocol:

1. at ``start()`` it pulls **one** arrival from the source and schedules
   its submission via :meth:`~repro.serving.system.ClusterServingSystem.submit_at`;
2. only when that arrival fires — i.e. when simulation time has reached
   it — does the gateway pull the next one.

So at any instant the gateway holds at most one not-yet-due arrival, and
the source is never advanced more than one element past current
simulation time.  ``tests/test_serve.py`` proves this with a source that
raises on early pulls.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Union

from repro.engine.request import Request
from repro.workloads.trace import TracedRequest

_EXHAUSTED = object()


class OnlineGateway:
    """Replays an arrival stream into a serving system, one pull at a time."""

    def __init__(
        self,
        system,
        arrivals: Union[Iterable[TracedRequest], Iterator[TracedRequest]],
        *,
        name: str = "gateway",
    ) -> None:
        self.system = system
        self.name = name
        self._arrivals = iter(arrivals)
        #: arrivals submitted to the system so far.
        self.submitted = 0
        #: True once the source is exhausted and every pulled arrival fired.
        self.done = False
        self._last_arrival_time: float = float("-inf")

    def start(self) -> None:
        """Begin ingestion: pull and schedule the first arrival."""
        self._pull_next()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _pull_next(self) -> None:
        arrival = next(self._arrivals, _EXHAUSTED)
        if arrival is _EXHAUSTED:
            self.done = True
            return
        at = float(arrival.arrival_time)
        if at < self._last_arrival_time:
            raise ValueError(
                f"{self.name}: arrival stream is not time-ordered "
                f"({at:.3f} after {self._last_arrival_time:.3f})"
            )
        self._last_arrival_time = at
        # A shared loop may already be past the stream's early timestamps
        # (e.g. a gateway attached mid-run); those arrive "now".
        at = max(at, self.system.loop.now)
        request = Request(
            arrival_time=at,
            prompt_tokens=arrival.prompt_tokens,
            max_output_tokens=arrival.output_tokens,
            slo_class=arrival.slo_class,
            session_id=arrival.session_id,
        )
        if self.system.tracer is not None:
            self.system.tracer.on_gateway(request)
        self.system.submit_at(request, at)
        # Same timestamp, scheduled after submit_at: the loop's stable FIFO
        # order guarantees the submission happens before the next pull.
        self.system.loop.schedule_at(at, self._advance, name=f"{self.name}-pull")

    def _advance(self) -> None:
        self.submitted += 1
        self._pull_next()
