"""CLI entry point: ``python -m repro.serve``.

Sweeps scenarios across the client-behaviour grid (open-loop replay vs.
closed-loop populations × retry policy × backpressure) through the
unified sweep engine (:mod:`repro.sweeps`) and writes
``SERVE_results.json`` to the repository root (see ``--output``).
Unchanged cells are served from the on-disk result cache
(``.repro_cache/``); disable with ``--no-cache``, inspect with
``--cache-stats``, purge with ``--clear-cache``.  ``--list-retries`` /
``--list-backpressure`` show the registries, and ``--metrics-out FILE``
streams one cell's live Prometheus text scrapes — including the
client-side gauges/counters for closed-loop cells — to a file.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.policies import make_policy
from repro.scenarios.registry import list_scenarios
from repro.serve.config import list_backpressure_modes, list_retry_policies
from repro.serve.schema import validate_document
from repro.serve.sweep import (
    DEFAULT_BACKPRESSURE,
    DEFAULT_CLIENTS,
    DEFAULT_POLICIES,
    DEFAULT_RETRIES,
    DEFAULT_SCENARIOS,
    SERVE_SCALES,
    format_results,
    run_serve_sweep,
    serve_grid,
    stream_cell_metrics,
    write_results,
)
from repro.sweeps import effective_worker_count
from repro.sweeps.cli import add_cache_arguments, clear_cache, print_cache_stats


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Sweep scenarios across the online client-behaviour grid "
        "(open- vs. closed-loop, retry policy, backpressure) in parallel and "
        "write SERVE_results.json.",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SERVE_SCALES),
        default="quick",
        help="sweep scale (default: quick)",
    )
    parser.add_argument(
        "--scenarios",
        nargs="*",
        default=None,
        metavar="NAME",
        help=f"scenarios to sweep (default: {' '.join(DEFAULT_SCENARIOS)})",
    )
    parser.add_argument(
        "--policies",
        nargs="*",
        default=None,
        metavar="POLICY",
        help=f"overload-policy keys (default: {' '.join(DEFAULT_POLICIES)})",
    )
    parser.add_argument(
        "--clients",
        nargs="*",
        default=None,
        metavar="N|open",
        help=f"client axis: 'open' and/or counts (default: {' '.join(DEFAULT_CLIENTS)})",
    )
    parser.add_argument(
        "--retries",
        nargs="*",
        default=None,
        metavar="POLICY",
        help=f"retry policies (default: {' '.join(DEFAULT_RETRIES)})",
    )
    parser.add_argument(
        "--backpressure",
        nargs="*",
        default=None,
        metavar="MODE",
        help=f"backpressure modes (default: {' '.join(DEFAULT_BACKPRESSURE)})",
    )
    parser.add_argument("--seed", type=int, default=42, help="sweep seed")
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes (default: min(grid size, CPU count))",
    )
    parser.add_argument(
        "--sequential",
        action="store_true",
        help="run every cell inline in this process (equivalent to --workers 1)",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="where to write SERVE_results.json (default: repository root)",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="additionally replay the last grid cell inline, streaming live "
        "Prometheus text scrapes (fleet + client series) to FILE",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="attach a per-request span tracer to every cell and add a "
        "stage_breakdown block (per-stage latency attribution) to each entry; "
        "with --metrics-out, also streams the stage-duration histogram",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="additionally replay the last grid cell inline with tracing on "
        "and write its Chrome trace-event JSON (Perfetto-loadable) to FILE",
    )
    parser.add_argument(
        "--alerts",
        action="store_true",
        help="replay the default alert-rule pack (repro.obs) over every cell's "
        "metric stream and add an alerts block (firing/resolved timeline) to "
        "each entry",
    )
    add_cache_arguments(parser)
    parser.add_argument(
        "--list-retries",
        action="store_true",
        help="list retry policies and exit",
    )
    parser.add_argument(
        "--list-backpressure",
        action="store_true",
        help="list backpressure modes and exit",
    )
    args = parser.parse_args(argv)

    if args.list_retries:
        for name in list_retry_policies():
            print(name)
        return 0
    if args.list_backpressure:
        for name in list_backpressure_modes():
            print(name)
        return 0
    if args.clear_cache:
        return clear_cache(args)

    try:
        for policy in args.policies or ():
            make_policy(policy)  # fail fast on typos before spawning workers
        max_workers = 1 if args.sequential else args.workers
        if max_workers is None:
            names = [
                n
                for n in (args.scenarios or list(DEFAULT_SCENARIOS))
                if n in list_scenarios()
            ]
            grid = serve_grid(
                names,
                args.policies or DEFAULT_POLICIES,
                args.clients if args.clients is not None else DEFAULT_CLIENTS,
                args.retries if args.retries is not None else DEFAULT_RETRIES,
                (
                    args.backpressure
                    if args.backpressure is not None
                    else DEFAULT_BACKPRESSURE
                ),
            )
            max_workers = max(1, min(len(grid), effective_worker_count()))
        document = run_serve_sweep(
            scenarios=args.scenarios,
            policies=args.policies,
            clients=args.clients,
            retries=args.retries,
            backpressures=args.backpressure,
            scale=SERVE_SCALES[args.scale],
            seed=args.seed,
            max_workers=max_workers,
            use_cache=not args.no_cache,
            cache_dir=args.cache_dir,
            trace=args.trace,
            alerts=args.alerts,
        )
    except (KeyError, ValueError) as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    problems = validate_document(document)
    if problems:
        print("schema violations:", *problems, sep="\n  ", file=sys.stderr)
        return 1
    path = write_results(document, args.output)
    print(format_results(document))
    if args.cache_stats:
        print_cache_stats(document, args)
    if args.metrics_out or args.trace_out:
        # The *last* grid cell: with the default axes that is a closed-loop
        # cell, so the stream includes the client-side series.
        scenario, policy, clients, retry, backpressure = serve_grid(
            args.scenarios or list(DEFAULT_SCENARIOS),
            args.policies or list(DEFAULT_POLICIES),
            args.clients if args.clients is not None else list(DEFAULT_CLIENTS),
            args.retries if args.retries is not None else list(DEFAULT_RETRIES),
            (
                args.backpressure
                if args.backpressure is not None
                else list(DEFAULT_BACKPRESSURE)
            ),
        )[-1]
        if args.metrics_out:
            scrapes = stream_cell_metrics(
                scenario,
                policy,
                clients,
                retry,
                backpressure,
                SERVE_SCALES[args.scale],
                args.seed,
                Path(args.metrics_out),
                trace=args.trace,
            )
            print(f"streamed {scrapes} metric scrapes to {args.metrics_out}")
        if args.trace_out:
            from repro.serve.sweep import run_serve_cell
            from repro.trace import write_chrome_trace

            tracers = []
            run_serve_cell(
                scenario,
                policy,
                clients,
                retry,
                backpressure,
                SERVE_SCALES[args.scale],
                args.seed,
                trace=True,
                on_tracer=tracers.append,
            )
            spans = tracers[0].spans()
            write_chrome_trace(spans, Path(args.trace_out))
            print(f"wrote Chrome trace ({len(spans)} spans) to {args.trace_out}")
    print(f"\nwrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
