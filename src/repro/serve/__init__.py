"""Online serving frontend: live arrival ingestion + closed-loop clients.

Everything below this package pre-schedules a complete
:class:`~repro.workloads.trace.Workload` before the event loop starts.
``repro.serve`` puts a *frontend* in front of the stack instead:

* :class:`~repro.serve.gateway.OnlineGateway` — replays an arrival
  stream (generator handle, JSONL file tail, rate-shaped synthetic
  source) into the shared event loop **incrementally**, holding exactly
  one arrival of lookahead, so the system provably never sees the
  future;
* :class:`~repro.serve.clients.ClosedLoopPopulation` — N closed-loop
  clients with seeded think times, multi-turn sessions, a bounded
  retry-with-backoff policy keyed off the admission controller's shed
  callbacks, and a backpressure channel that throttles issue rates
  while the fleet is overloaded;
* a cached client-behaviour sweep (``python -m repro.serve``) emitting
  stable-schema ``SERVE_results.json`` with *client-observed* metrics:
  goodput, retries, give-ups, and client-perceived TTFT including
  retry delay.
"""

from repro.serve.clients import ClosedLoopPopulation
from repro.serve.config import (
    BACKPRESSURE_MODES,
    RETRY_POLICIES,
    BackpressureConfig,
    ClientPopulationConfig,
    RetryPolicy,
    list_backpressure_modes,
    list_retry_policies,
)
from repro.serve.gateway import OnlineGateway
from repro.serve.sources import (
    jsonl_arrivals,
    synthetic_arrivals,
    workload_arrivals,
    write_jsonl_trace,
)
from repro.serve.sweep import (
    SERVE_SCALES,
    run_serve_cell,
    run_serve_sweep,
    write_results,
)

__all__ = [
    "BACKPRESSURE_MODES",
    "BackpressureConfig",
    "ClientPopulationConfig",
    "ClosedLoopPopulation",
    "OnlineGateway",
    "RETRY_POLICIES",
    "RetryPolicy",
    "SERVE_SCALES",
    "jsonl_arrivals",
    "list_backpressure_modes",
    "list_retry_policies",
    "run_serve_cell",
    "run_serve_sweep",
    "synthetic_arrivals",
    "workload_arrivals",
    "write_jsonl_trace",
    "write_results",
]
