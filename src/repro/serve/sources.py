"""Pluggable arrival sources for the online gateway.

An arrival source is any iterator (or iterable) of
:class:`~repro.workloads.trace.TracedRequest` in non-decreasing
``arrival_time`` order.  The gateway pulls it **lazily** — one element of
lookahead — so a source may be a live generator whose later elements do
not exist yet when the simulation starts.  Three canonical sources:

* :func:`workload_arrivals` — replay a materialised workload (the
  open-loop baseline, now fed online instead of pre-scheduled);
* :func:`jsonl_arrivals` — tail a JSONL trace file, reading one record
  per pull (the "file tail" ingestion mode);
* :func:`synthetic_arrivals` — a rate-shaped seeded Poisson stream
  generated on the fly, never materialised as a list.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator, Union

from repro.simulation.rng import SeededRNG
from repro.workloads.trace import TracedRequest, Workload

#: JSONL field names; only ``arrival_time``/``prompt_tokens``/
#: ``output_tokens`` are required per record.
_REQUIRED_FIELDS = ("arrival_time", "prompt_tokens", "output_tokens")


def workload_arrivals(workload: Workload) -> Iterator[TracedRequest]:
    """Replay a workload's requests as an arrival stream (already sorted)."""
    return iter(workload.requests)


def jsonl_arrivals(path: Union[str, Path]) -> Iterator[TracedRequest]:
    """Tail a JSONL trace file, one record per line, lazily.

    Each line is an object with ``arrival_time``, ``prompt_tokens``,
    ``output_tokens`` and optional ``slo_class`` / ``session_id`` —
    exactly what :func:`write_jsonl_trace` emits.  Lines are read (and
    parsed) one pull at a time, so a partially-written file behaves like
    a live tail up to its current end.
    """

    def generate() -> Iterator[TracedRequest]:
        with open(path, "r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                missing = [f for f in _REQUIRED_FIELDS if f not in record]
                if missing:
                    raise ValueError(
                        f"{path}:{line_number}: missing fields {missing}"
                    )
                yield TracedRequest(
                    arrival_time=float(record["arrival_time"]),
                    prompt_tokens=int(record["prompt_tokens"]),
                    output_tokens=int(record["output_tokens"]),
                    slo_class=record.get("slo_class", "chat"),
                    session_id=record.get("session_id"),
                )

    return generate()


def write_jsonl_trace(workload: Workload, path: Union[str, Path]) -> Path:
    """Serialise a workload as the JSONL format :func:`jsonl_arrivals` reads."""
    target = Path(path)
    with open(target, "w", encoding="utf-8") as handle:
        for request in workload.requests:
            record = {
                "arrival_time": request.arrival_time,
                "prompt_tokens": request.prompt_tokens,
                "output_tokens": request.output_tokens,
                "slo_class": request.slo_class,
            }
            if request.session_id is not None:
                record["session_id"] = request.session_id
            handle.write(json.dumps(record) + "\n")
    return target


def synthetic_arrivals(
    *,
    rate_per_s: float,
    duration_s: float,
    seed: int = 42,
    prompt_tokens: int = 512,
    output_tokens: int = 128,
    slo_class: str = "chat",
) -> Iterator[TracedRequest]:
    """A rate-shaped Poisson arrival stream, generated lazily.

    Inter-arrival gaps are exponential with mean ``1 / rate_per_s``;
    the stream ends after ``duration_s`` simulation seconds.  Nothing is
    materialised up front: each pull draws exactly one gap from the
    seeded stream, so the source is deterministic *and* unbounded
    lookahead is impossible by construction.
    """
    if rate_per_s <= 0:
        raise ValueError("rate_per_s must be positive")
    if duration_s < 0:
        raise ValueError("duration_s must be non-negative")

    def generate() -> Iterator[TracedRequest]:
        rng = SeededRNG(seed, "synthetic-arrivals")
        now = 0.0
        while True:
            now += float(rng.exponential(1.0 / rate_per_s))
            if now > duration_s:
                return
            yield TracedRequest(
                arrival_time=now,
                prompt_tokens=prompt_tokens,
                output_tokens=output_tokens,
                slo_class=slo_class,
            )

    return generate()
