"""Trace upscaling (TraceUpscaler-style).

The paper scales the BurstGPT trace to its testbed's capacity "using a
scaling method that preserves the temporal pattern of the trace"
(TraceUpscaler).  The same idea is implemented here: to multiply the rate
by ``k`` every arrival is replicated ``floor(k)`` times (plus one more with
probability ``frac(k)``) and the replicas are spread with small jitter, so
bursts stay bursts rather than being smoothed out.
"""

from __future__ import annotations

from typing import List

from repro.simulation.rng import SeededRNG
from repro.workloads.trace import ArrivalTrace


def upscale_trace(
    trace: ArrivalTrace,
    factor: float,
    *,
    seed: int = 42,
    jitter_s: float = 0.25,
) -> ArrivalTrace:
    """Scale a trace's request rate by ``factor`` preserving its shape."""
    if factor <= 0:
        raise ValueError("factor must be positive")
    if factor == 1.0:
        return ArrivalTrace(timestamps=list(trace.timestamps), name=trace.name)
    rng = SeededRNG(seed, f"upscale-{trace.name}")
    whole = int(factor)
    fractional = factor - whole
    timestamps: List[float] = []
    for timestamp in trace.timestamps:
        copies = whole + (1 if float(rng.uniform()) < fractional else 0)
        if factor < 1.0:
            # Downscaling: keep each arrival with probability ``factor``.
            if float(rng.uniform()) < factor:
                timestamps.append(timestamp)
            continue
        for _ in range(copies):
            jitter = float(rng.uniform(-jitter_s, jitter_s))
            timestamps.append(max(0.0, timestamp + jitter))
    return ArrivalTrace(timestamps=timestamps, name=f"{trace.name}-x{factor:g}")


def scale_to_average_rate(
    trace: ArrivalTrace,
    target_rate: float,
    *,
    seed: int = 42,
) -> ArrivalTrace:
    """Upscale/downscale so the trace's average rate matches ``target_rate``."""
    if target_rate <= 0:
        raise ValueError("target_rate must be positive")
    current = trace.average_rate
    if current == 0:
        raise ValueError("cannot rescale an empty trace")
    return upscale_trace(trace, target_rate / current, seed=seed)
