"""Workloads: arrival traces, dataset length distributions, SLO accounting.

The paper drives every experiment with the BurstGPT arrival trace (spiked,
bursty request rates) combined with request length distributions from three
datasets (BurstGPT, ShareGPT, LongBench).  Neither the trace file nor the
datasets ship with this reproduction, so this package generates synthetic
equivalents matched to the published statistics:

* BurstGPT arrivals: bursty rate with ~2x spikes at unpredictable times and
  a mean request "stay time" of ~11 s (§2.2);
* BurstGPT dataset: mean input 642 / output 262 tokens;
* ShareGPT dataset: mean input 1,660 / output 373, inputs capped at 4 K;
* LongBench dataset: mean input 5,900 / output 499 (document summarisation).
"""

from repro.workloads.trace import ArrivalTrace, TracedRequest, Workload
from repro.workloads.burstgpt import (
    BurstSpec,
    burstgpt_arrival_trace,
    extreme_burst_trace,
    long_run_arrival_trace,
)
from repro.workloads.datasets import (
    DatasetSpec,
    BURSTGPT_DATASET,
    SHAREGPT_DATASET,
    LONGBENCH_DATASET,
    DATASETS,
    sample_lengths,
)
from repro.workloads.upscaler import upscale_trace, scale_to_average_rate
from repro.workloads.slo import SLOResult, slo_violation_ratio, slo_violation_curve

__all__ = [
    "ArrivalTrace",
    "TracedRequest",
    "Workload",
    "BurstSpec",
    "burstgpt_arrival_trace",
    "long_run_arrival_trace",
    "extreme_burst_trace",
    "DatasetSpec",
    "BURSTGPT_DATASET",
    "SHAREGPT_DATASET",
    "LONGBENCH_DATASET",
    "DATASETS",
    "sample_lengths",
    "upscale_trace",
    "scale_to_average_rate",
    "SLOResult",
    "slo_violation_ratio",
    "slo_violation_curve",
]
