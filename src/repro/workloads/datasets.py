"""Dataset length distributions (BurstGPT, ShareGPT, LongBench).

Request input/output lengths are sampled from log-normal distributions
matched to the mean lengths the paper reports (§5.1), with caps mirroring
the datasets' documented maxima.  Log-normal is the standard fit for LLM
conversation length distributions and produces the heavy tail that makes
memory demand spiky.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.simulation.rng import SeededRNG
from repro.workloads.trace import ArrivalTrace, TracedRequest, Workload


@dataclass(frozen=True)
class DatasetSpec:
    """Statistical description of one dataset's request lengths."""

    name: str
    mean_input_tokens: float
    mean_output_tokens: float
    max_input_tokens: int
    max_output_tokens: int
    input_sigma: float
    output_sigma: float
    slo_class: str

    def __post_init__(self) -> None:
        if self.mean_input_tokens <= 0 or self.mean_output_tokens <= 0:
            raise ValueError("mean token counts must be positive")


BURSTGPT_DATASET = DatasetSpec(
    name="BurstGPT",
    mean_input_tokens=642,
    mean_output_tokens=262,
    max_input_tokens=8192,
    max_output_tokens=2048,
    input_sigma=0.9,
    output_sigma=0.8,
    slo_class="chat",
)

SHAREGPT_DATASET = DatasetSpec(
    name="ShareGPT",
    mean_input_tokens=1660,
    mean_output_tokens=373,
    max_input_tokens=4096,
    max_output_tokens=2048,
    input_sigma=0.8,
    output_sigma=0.8,
    slo_class="chat",
)

LONGBENCH_DATASET = DatasetSpec(
    name="LongBench",
    mean_input_tokens=5900,
    mean_output_tokens=499,
    max_input_tokens=32768,
    max_output_tokens=2048,
    input_sigma=0.7,
    output_sigma=0.7,
    slo_class="summary",
)

DATASETS = {
    spec.name: spec for spec in (BURSTGPT_DATASET, SHAREGPT_DATASET, LONGBENCH_DATASET)
}


def _lognormal_with_mean(rng: SeededRNG, mean: float, sigma: float, size: int) -> np.ndarray:
    """Log-normal samples whose arithmetic mean equals ``mean``."""
    mu = np.log(mean) - 0.5 * sigma ** 2
    return rng.lognormal(mu, sigma, size)


def sample_lengths(
    spec: DatasetSpec, count: int, seed: int = 42
) -> List[tuple]:
    """Sample ``count`` (prompt_tokens, output_tokens) pairs for a dataset."""
    if count < 0:
        raise ValueError("count must be >= 0")
    if count == 0:
        return []
    rng = SeededRNG(seed, f"dataset-{spec.name}")
    prompts = _lognormal_with_mean(rng, spec.mean_input_tokens, spec.input_sigma, count)
    outputs = _lognormal_with_mean(rng, spec.mean_output_tokens, spec.output_sigma, count)
    prompts = np.clip(np.round(prompts), 16, spec.max_input_tokens).astype(int)
    outputs = np.clip(np.round(outputs), 4, spec.max_output_tokens).astype(int)
    return list(zip(prompts.tolist(), outputs.tolist()))


def build_workload(
    trace: ArrivalTrace,
    dataset: DatasetSpec,
    seed: int = 42,
    name: str = "",
) -> Workload:
    """Combine an arrival trace with dataset lengths into a workload."""
    lengths = sample_lengths(dataset, len(trace), seed=seed)
    requests = [
        TracedRequest(
            arrival_time=timestamp,
            prompt_tokens=prompt,
            output_tokens=output,
            slo_class=dataset.slo_class,
        )
        for timestamp, (prompt, output) in zip(trace.timestamps, lengths)
    ]
    workload_name = name or f"{trace.name}-{dataset.name}"
    return Workload(name=workload_name, requests=requests)
