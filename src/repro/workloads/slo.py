"""SLO-attainment accounting (Figure 13, last column).

The paper defines the SLO for scale factor ``N`` as ``N`` times the P50
latency of the *best baseline*, separately for TTFT and TPOT, and counts a
request as violating when either metric exceeds its SLO.  Chat workloads
use a tight factor of 5; document summarisation a looser factor of 10.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.engine.metrics import RequestRecord, percentile

#: Typical SLO scale factors marked in the paper's plots.
CHAT_SLO_SCALE = 5.0
SUMMARY_SLO_SCALE = 10.0


class LatencyRecord:
    """Minimal record exposing the two attributes SLO accounting reads.

    The sweep runners ship ``(ttft, mean_tpot)`` pairs between worker
    processes instead of full :class:`RequestRecord` objects; this adapter
    turns a pair back into something :func:`baseline_p50` and
    :func:`slo_violation_ratio` accept.
    """

    __slots__ = ("ttft", "mean_tpot")

    def __init__(self, ttft, mean_tpot) -> None:
        self.ttft = ttft
        self.mean_tpot = mean_tpot


@dataclass
class SLOResult:
    """SLO violation ratio of one system at one scale factor."""

    system: str
    scale: float
    ttft_slo_s: float
    tpot_slo_s: float
    violations: int
    total: int

    @property
    def violation_ratio(self) -> float:
        if self.total == 0:
            return 0.0
        return self.violations / self.total


def baseline_p50(records_by_system: Dict[str, Sequence[RequestRecord]]) -> tuple:
    """P50 TTFT / TPOT of the best system (the SLO reference point).

    Accepts any records exposing ``ttft`` and ``mean_tpot`` attributes;
    systems with no data fall back to a 0.0 baseline.
    """
    best_ttft = float("inf")
    best_tpot = float("inf")
    for records in records_by_system.values():
        ttfts = [r.ttft for r in records if r.ttft is not None]
        tpots = [r.mean_tpot for r in records if r.mean_tpot is not None]
        if ttfts:
            best_ttft = min(best_ttft, percentile(ttfts, 50))
        if tpots:
            best_tpot = min(best_tpot, percentile(tpots, 50))
    if best_ttft == float("inf"):
        best_ttft = 0.0
    if best_tpot == float("inf"):
        best_tpot = 0.0
    return best_ttft, best_tpot


def slo_violation_ratio(
    records: Sequence[RequestRecord],
    *,
    ttft_slo_s: float,
    tpot_slo_s: float,
) -> float:
    """Fraction of requests violating either the TTFT or the TPOT SLO."""
    if not records:
        return 0.0
    violations = 0
    for record in records:
        ttft_bad = record.ttft is None or record.ttft > ttft_slo_s
        tpot_bad = record.mean_tpot is not None and record.mean_tpot > tpot_slo_s
        if ttft_bad or tpot_bad:
            violations += 1
    return violations / len(records)


def slo_violation_curve(
    records_by_system: Dict[str, Sequence[RequestRecord]],
    scales: Sequence[float] = (2, 4, 6, 8, 10),
) -> List[SLOResult]:
    """Violation ratio of every system at every scale factor.

    The SLO reference (P50 of the best system) is computed across all the
    given systems, exactly as the paper does.
    """
    base_ttft, base_tpot = baseline_p50(records_by_system)
    results: List[SLOResult] = []
    for system, records in records_by_system.items():
        for scale in scales:
            ttft_slo = scale * base_ttft
            tpot_slo = scale * base_tpot
            violations = 0
            for record in records:
                ttft_bad = record.ttft is None or (ttft_slo > 0 and record.ttft > ttft_slo)
                tpot_bad = (
                    record.mean_tpot is not None and tpot_slo > 0 and record.mean_tpot > tpot_slo
                )
                if ttft_bad or tpot_bad:
                    violations += 1
            results.append(
                SLOResult(
                    system=system,
                    scale=float(scale),
                    ttft_slo_s=ttft_slo,
                    tpot_slo_s=tpot_slo,
                    violations=violations,
                    total=len(records),
                )
            )
    return results
