"""Synthetic BurstGPT-like arrival traces.

The real BurstGPT trace is not redistributable, so this module generates
arrival processes with the same character the paper describes (§2.2 and
Figure 2a): a base request rate with sudden, unpredictable spikes where the
incoming rate roughly doubles, sustained for tens of seconds.  The long-run
variant (Figure 16) has multiple burst waves over 640 s; the extreme-burst
variant (Figure 17) replays the burst back-to-back until every system runs
out of memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.simulation.rng import SeededRNG
from repro.workloads.trace import ArrivalTrace


@dataclass(frozen=True)
class BurstSpec:
    """One burst window: the rate multiplies by ``factor`` during it."""

    start_s: float
    duration_s: float
    factor: float

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.factor <= 0:
            raise ValueError("factor must be positive")

    def active(self, time: float) -> bool:
        return self.start_s <= time < self.start_s + self.duration_s


def _piecewise_rate(time: float, base_rate: float, bursts: Sequence[BurstSpec]) -> float:
    rate = base_rate
    for burst in bursts:
        if burst.active(time):
            rate = base_rate * burst.factor
    return rate


def _nonhomogeneous_poisson(
    duration_s: float,
    base_rate: float,
    bursts: Sequence[BurstSpec],
    rng: SeededRNG,
) -> List[float]:
    """Thinning sampler for a piecewise-constant-rate Poisson process."""
    max_rate = base_rate * max([b.factor for b in bursts], default=1.0)
    max_rate = max(max_rate, base_rate)
    timestamps: List[float] = []
    time = 0.0
    while time < duration_s:
        time += float(rng.exponential(1.0 / max_rate))
        if time >= duration_s:
            break
        accept_probability = _piecewise_rate(time, base_rate, bursts) / max_rate
        if float(rng.uniform()) <= accept_probability:
            timestamps.append(time)
    return timestamps


def burstgpt_arrival_trace(
    *,
    duration_s: float = 130.0,
    base_rate: float = 4.0,
    burst_factor: float = 2.2,
    burst_start_s: Optional[float] = None,
    burst_duration_s: Optional[float] = None,
    seed: int = 42,
    name: str = "burstgpt",
) -> ArrivalTrace:
    """A single-burst trace shaped like Figure 2(a).

    The incoming rate sits at ``base_rate`` and roughly doubles (default
    2.2x) partway through the window, "with no clear pattern" — here the
    burst begins at ~35 % of the duration unless given explicitly.
    """
    if burst_start_s is None:
        burst_start_s = 0.35 * duration_s
    if burst_duration_s is None:
        burst_duration_s = 0.35 * duration_s
    rng = SeededRNG(seed, f"{name}-arrivals")
    bursts = [BurstSpec(start_s=burst_start_s, duration_s=burst_duration_s, factor=burst_factor)]
    timestamps = _nonhomogeneous_poisson(duration_s, base_rate, bursts, rng)
    return ArrivalTrace(timestamps=timestamps, name=name)


def long_run_arrival_trace(
    *,
    duration_s: float = 640.0,
    base_rate: float = 4.0,
    burst_factor: float = 2.2,
    num_waves: int = 2,
    wave_duration_s: float = 60.0,
    seed: int = 42,
    name: str = "burstgpt-long",
) -> ArrivalTrace:
    """The 640 s multi-wave trace used by the dynamic-restoration study."""
    if num_waves <= 0:
        raise ValueError("num_waves must be positive")
    bursts: List[BurstSpec] = []
    for wave in range(num_waves):
        start = duration_s * (wave + 0.5) / (num_waves + 0.5)
        bursts.append(BurstSpec(start_s=start, duration_s=wave_duration_s, factor=burst_factor))
    rng = SeededRNG(seed, f"{name}-arrivals")
    timestamps = _nonhomogeneous_poisson(duration_s, base_rate, bursts, rng)
    return ArrivalTrace(timestamps=timestamps, name=name)


def extreme_burst_trace(
    *,
    duration_s: float = 170.0,
    base_rate: float = 2.0,
    burst_factor: float = 2.5,
    burst_start_s: float = 60.0,
    seed: int = 42,
    name: str = "burstgpt-extreme",
) -> ArrivalTrace:
    """Replay-and-rescale trace of §5.6: once the first burst hits, it never
    stops, so every system eventually exhausts memory."""
    bursts = [
        BurstSpec(
            start_s=burst_start_s,
            duration_s=duration_s - burst_start_s,
            factor=burst_factor,
        )
    ]
    rng = SeededRNG(seed, f"{name}-arrivals")
    timestamps = _nonhomogeneous_poisson(duration_s, base_rate, bursts, rng)
    return ArrivalTrace(timestamps=timestamps, name=name)
