"""Arrival traces and workloads.

An :class:`ArrivalTrace` is just a sorted list of arrival timestamps; a
:class:`Workload` combines the trace with per-request prompt/output lengths
(from a dataset sampler) and can materialise engine
:class:`~repro.engine.request.Request` objects for the serving system.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

try:  # numpy is optional here: every vectorised path keeps a pure-python twin
    import numpy as np
except ImportError:  # pragma: no cover - exercised via _force_python_paths
    np = None  # type: ignore[assignment]

from repro.engine.request import Request

#: Vectorisation cut-over: below this many timestamps the numpy round-trip
#: (asarray + tolist) costs more than the plain-python path it replaces.
_VECTORIZE_MIN = 512


@dataclass
class ArrivalTrace:
    """A sequence of request arrival times (seconds, sorted ascending)."""

    timestamps: List[float] = field(default_factory=list)
    name: str = "trace"

    def __post_init__(self) -> None:
        if np is not None and len(self.timestamps) >= _VECTORIZE_MIN:
            # Bit-identical to the python path: float64 conversion and
            # ascending sort commute with tolist(), and IEEE sorting of the
            # same values yields the same order (ties are identical values).
            array = np.sort(np.asarray(self.timestamps, dtype=np.float64))
            if array.size and array[0] < 0:
                raise ValueError("arrival times must be non-negative")
            self.timestamps = array.tolist()
        else:
            self.timestamps = sorted(float(t) for t in self.timestamps)
            if any(t < 0 for t in self.timestamps):
                raise ValueError("arrival times must be non-negative")

    def __len__(self) -> int:
        return len(self.timestamps)

    @property
    def duration(self) -> float:
        return self.timestamps[-1] if self.timestamps else 0.0

    @property
    def average_rate(self) -> float:
        """Mean requests/second over the trace duration.

        Degenerate traces are well-defined: an empty trace has rate 0.0,
        and a non-empty trace whose arrivals all land at t=0 (zero
        duration) counts as a one-second burst — its rate equals its
        arrival count — so rate-based rescaling never divides by zero.
        """
        if not self.timestamps:
            return 0.0
        if self.duration <= 0.0:
            return float(len(self.timestamps))
        return len(self.timestamps) / self.duration

    def rate_timeline(self, window_s: float = 5.0) -> List[tuple]:
        """Requests-per-second samples bucketed by ``window_s`` (Figure 2a)."""
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        if not self.timestamps:
            return []
        if np is not None and len(self.timestamps) >= _VECTORIZE_MIN:
            # Same buckets as the python path: ``int(t // window_s)`` and
            # float64 floor-division agree for non-negative timestamps.
            indices = np.floor_divide(
                np.asarray(self.timestamps, dtype=np.float64), window_s
            ).astype(np.int64)
            buckets_arr, counts = np.unique(indices, return_counts=True)
            return [
                (int(bucket) * window_s, int(count) / window_s)
                for bucket, count in zip(buckets_arr.tolist(), counts.tolist())
            ]
        buckets: dict = {}
        for t in self.timestamps:
            buckets[int(t // window_s)] = buckets.get(int(t // window_s), 0) + 1
        return [
            (bucket * window_s, count / window_s) for bucket, count in sorted(buckets.items())
        ]

    def clipped(self, max_time: float) -> "ArrivalTrace":
        """A copy containing only arrivals before ``max_time``."""
        return ArrivalTrace(
            timestamps=[t for t in self.timestamps if t <= max_time],
            name=self.name,
        )


@dataclass
class TracedRequest:
    """One request of a workload: when it arrives and how long it is.

    ``session_id`` marks the request as one turn of a multi-turn session
    (stamped by :func:`repro.scenarios.generators.stamp_sessions`); the
    fleet layer's session-affinity router keeps equal ids on the same
    serving group so KV prefix reuse is possible.  ``None`` means a
    single-shot request.
    """

    arrival_time: float
    prompt_tokens: int
    output_tokens: int
    slo_class: str = "chat"
    session_id: Optional[str] = None

    def __post_init__(self) -> None:
        if self.prompt_tokens <= 0 or self.output_tokens <= 0:
            raise ValueError("prompt and output token counts must be positive")


@dataclass
class Workload:
    """A named, fully-specified stream of requests."""

    name: str
    requests: List[TracedRequest] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.requests = sorted(self.requests, key=lambda r: r.arrival_time)

    def __len__(self) -> int:
        return len(self.requests)

    @property
    def duration(self) -> float:
        return self.requests[-1].arrival_time if self.requests else 0.0

    @property
    def total_prompt_tokens(self) -> int:
        return sum(r.prompt_tokens for r in self.requests)

    @property
    def total_output_tokens(self) -> int:
        return sum(r.output_tokens for r in self.requests)

    @property
    def mean_prompt_tokens(self) -> float:
        if not self.requests:
            return 0.0
        return self.total_prompt_tokens / len(self.requests)

    @property
    def mean_output_tokens(self) -> float:
        if not self.requests:
            return 0.0
        return self.total_output_tokens / len(self.requests)

    def arrival_trace(self) -> ArrivalTrace:
        return ArrivalTrace(
            timestamps=[r.arrival_time for r in self.requests], name=self.name
        )

    def to_engine_requests(self) -> List[Request]:
        """Materialise engine requests (fresh objects, safe to simulate)."""
        return [
            Request(
                arrival_time=r.arrival_time,
                prompt_tokens=r.prompt_tokens,
                max_output_tokens=r.output_tokens,
                slo_class=r.slo_class,
                session_id=r.session_id,
            )
            for r in self.requests
        ]

    def kv_token_demand_timeline(
        self, mean_stay_s: float = 11.0, window_s: float = 5.0
    ) -> List[tuple]:
        """Rough KV-token demand over time assuming a mean residency.

        Used only for workload characterisation plots; the real demand comes
        out of the simulation itself.
        """
        events: List[tuple] = []
        for request in self.requests:
            tokens = request.prompt_tokens + request.output_tokens
            events.append((request.arrival_time, tokens))
            events.append((request.arrival_time + mean_stay_s, -tokens))
        events.sort()
        timeline = []
        level = 0
        next_sample = 0.0
        for time, delta in events:
            while next_sample <= time:
                timeline.append((next_sample, level))
                next_sample += window_s
            level += delta
        return timeline


def merge_workloads(workloads: Sequence[Workload], name: str = "merged") -> Workload:
    """Interleave several workloads into one (used for mixed experiments)."""
    requests: List[TracedRequest] = []
    for workload in workloads:
        requests.extend(workload.requests)
    return Workload(name=name, requests=requests)
