"""Benchmark harness: time the simulator itself.

CCBench-style reproducible performance tracking for this repository: every
run replays a *canonical* BurstGPT slice through each overload policy and
executes each paper experiment at a fixed quick scale, measuring host
wall-clock time and simulated events per second, and writes the results to
``BENCH_results.json`` (schema: :mod:`repro.bench.schema`).  Subsequent PRs
re-run the harness to track the simulator's performance trajectory.

The harness itself is a sweep: every benchmark row is a
:class:`~repro.sweeps.task.SweepTask` executed inline
(``max_workers=1``) through the unified engine — inline because the
event-loop meter must observe the simulated events in this process, and
*never cached* because benchmark rows measure host time, which is the one
thing the result cache is explicitly allowed to discard.  The
``sweep_cache`` row, by contrast, exercises the cache on purpose: it runs
a scenario+fleet sweep cold into a throwaway cache directory and then
warm out of it, and reports both wall-clocks so the incremental-sweep win
is tracked across PRs like any other benchmark.

Two knobs matter:

* ``scale`` — the scenario size.  :data:`CANONICAL_SCALE` is the default
  used for trajectory tracking; :data:`TINY_SCALE` exists for smoke tests.
* ``experiments`` / ``policies`` — which benchmarks to run; by default all
  figure/table experiments and all five policies.
"""

from __future__ import annotations

import dataclasses
import json
import shutil
import tempfile
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro.experiments import (
    figure2,
    figure5,
    figure12,
    figure13,
    figure14,
    figure15,
    figure16,
    figure17,
    table1,
)
from repro.experiments.runner import (
    ExperimentScale,
    WORKLOAD_PRESETS,
    build_preset_workload,
    build_system_config,
    make_policies,
)
from repro.fleet.sweep import run_fleet_sweep
from repro.chaos.sweep import run_chaos_sweep
from repro.multicluster.sweep import run_multicluster_sweep
from repro.scenarios.sweep import run_sweep
from repro.serve.sweep import run_serve_sweep
from repro.serving.system import ClusterServingSystem
from repro.simulation.event_loop import EventLoop
from repro.sweeps import SweepTask, run_tasks
from repro.version import __version__

#: Scenario used for trajectory tracking: a 2-instance cluster replaying a
#: 45-second BurstGPT slice — small enough to run in seconds, large enough
#: to exercise overload, preemption and (for KunServe) a parameter drop.
CANONICAL_SCALE = ExperimentScale(
    name="bench-canonical",
    num_instances=2,
    trace_duration_s=45.0,
    drain_timeout_s=45.0,
)

#: Minimal scenario for smoke tests: completes in well under a second.
TINY_SCALE = ExperimentScale(
    name="bench-tiny",
    num_instances=2,
    trace_duration_s=4.0,
    drain_timeout_s=4.0,
)

#: Workload preset every policy benchmark replays.
CANONICAL_WORKLOAD = "burstgpt-14b"

#: Default output location: the repository root.
DEFAULT_OUTPUT = Path(__file__).resolve().parents[3] / "BENCH_results.json"


@dataclass(frozen=True)
class BenchEntry:
    """One benchmark measurement (see :mod:`repro.bench.schema`).

    ``extra`` holds additive per-row fields (e.g. the ``sweep_cache``
    row's cold/warm wall-clocks); it is flattened into the entry dict when
    the document is assembled and stays empty for every other row.
    """

    experiment: str
    kind: str
    policy: Optional[str]
    wall_s: float
    sim_s: float
    events: int
    events_per_s: float
    finished_requests: int
    extra: Dict[str, float] = field(default_factory=dict, compare=False)


def entry_dict(entry: BenchEntry) -> Dict[str, Any]:
    """Entry as a document dict, with any additive fields flattened in."""
    document = asdict(entry)
    document.update(document.pop("extra"))
    return document


def _metered(fn: Callable[[], Dict[str, float]]) -> Dict[str, float]:
    """Run ``fn`` measuring wall time and global event-loop activity.

    ``sim_s`` is the simulated time advanced by every event loop ``fn``
    ran (the :attr:`EventLoop.lifetime_sim_s` delta); a body that knows a
    better figure (e.g. a single run's ``result.duration_s``) may return
    its own ``sim_s`` to override it.
    """
    events_before = EventLoop.lifetime_events
    sim_before = EventLoop.lifetime_sim_s
    start = time.perf_counter()
    extra = fn() or {}
    wall_s = time.perf_counter() - start
    events = EventLoop.lifetime_events - events_before
    return {
        "wall_s": wall_s,
        "events": events,
        "events_per_s": events / wall_s if wall_s > 0 and events else 0.0,
        "sim_s": EventLoop.lifetime_sim_s - sim_before,
        **extra,
    }


# ----------------------------------------------------------------------
# Policy benchmarks: each policy replays the canonical BurstGPT slice
# ----------------------------------------------------------------------
def run_policy_benchmark(
    policy, scale: ExperimentScale, *, seed: int = 42, workload=None
) -> BenchEntry:
    """Replay the canonical workload under one policy; meter the run."""
    preset = WORKLOAD_PRESETS[CANONICAL_WORKLOAD]
    if workload is None:
        workload = build_preset_workload(preset, scale, seed=seed)
    config = build_system_config(preset, scale, seed=seed)
    system = ClusterServingSystem(config, policy)

    def body() -> Dict[str, float]:
        result = system.run(workload)
        return {
            "sim_s": result.duration_s,
            "finished_requests": result.finished_requests,
        }

    measured = _metered(body)
    return BenchEntry(
        experiment=f"policy:{policy.name}",
        kind="policy",
        policy=policy.name,
        wall_s=measured["wall_s"],
        sim_s=measured["sim_s"],
        events=int(measured["events"]),
        events_per_s=measured["events_per_s"],
        finished_requests=int(measured["finished_requests"]),
    )


def run_policy_benchmarks(
    scale: ExperimentScale = CANONICAL_SCALE, *, seed: int = 42
) -> List[BenchEntry]:
    """Benchmark all five systems on the same canonical workload."""
    preset = WORKLOAD_PRESETS[CANONICAL_WORKLOAD]
    workload = build_preset_workload(preset, scale, seed=seed)
    return [
        run_policy_benchmark(policy, scale, seed=seed, workload=workload)
        for policy in make_policies()
    ]


# ----------------------------------------------------------------------
# Experiment benchmarks: each paper figure/table at the requested scale
# ----------------------------------------------------------------------
def _scenario_sweep_benchmark(scale: ExperimentScale, seed: int) -> Dict:
    """A small scenario-grid sweep so its cost is tracked across PRs.

    Runs inline (``max_workers=1``) so the event-loop meter in this process
    sees the simulated events, and uncached so the row keeps measuring real
    execution; the parallel and cached paths are covered by
    ``tests/test_scenarios.py`` and the ``repro.scenarios`` CLI.
    """
    return run_sweep(
        scenarios=("steady-poisson", "spike-train"),
        policies=("vllm", "kunserve"),
        scale=dataclasses.replace(scale, name=f"scenarios-{scale.name}"),
        seed=seed,
        max_workers=1,
    )


def _fleet_sweep_benchmark(scale: ExperimentScale, seed: int) -> Dict:
    """A small fleet-grid sweep so its cost is tracked across PRs.

    Runs inline (``max_workers=1``) so the event-loop meter in this process
    sees the simulated events, and uncached so the row keeps measuring real
    execution; the parallel and cached paths are covered by
    ``tests/test_fleet.py`` and the ``repro.fleet`` CLI.
    """
    return run_fleet_sweep(
        scenarios=("steady-poisson",),
        policies=("vllm",),
        routers=("least_loaded", "power_of_two_choices"),
        autoscalers=("fixed", "elastic"),
        scale=dataclasses.replace(scale, name=f"fleet-{scale.name}"),
        seed=seed,
        max_workers=1,
    )


def _multicluster_sweep_benchmark(scale: ExperimentScale, seed: int) -> Dict:
    """A small fleet-of-fleets sweep so its cost is tracked across PRs.

    Two clusters, the two locality-relevant global routers, one placement
    policy.  Runs inline (``max_workers=1``) so the event-loop meter in
    this process sees the simulated events, and uncached so the row keeps
    measuring real execution; the parallel and cached paths are covered by
    ``tests/test_multicluster.py`` and the ``repro.multicluster`` CLI.
    """
    return run_multicluster_sweep(
        scenarios=("steady-poisson",),
        policies=("vllm",),
        cluster_counts=(2,),
        routers=("weighted_round_robin", "locality_affinity"),
        placements=("spare_capacity_first",),
        scale=dataclasses.replace(scale, name=f"multicluster-{scale.name}"),
        seed=seed,
        max_workers=1,
    )


def _chaos_sweep_benchmark(scale: ExperimentScale, seed: int) -> Dict:
    """A small chaos sweep so fault-injection cost is tracked across PRs.

    One scenario, the cluster-outage preset, both session-migration
    policies — the cell pair the chaos acceptance test pins.  Runs inline
    (``max_workers=1``) so the event-loop meter in this process sees the
    simulated events, and uncached so the row keeps measuring real
    execution; the parallel and cached paths are covered by
    ``tests/test_chaos.py`` and the ``repro.chaos`` CLI.
    """
    return run_chaos_sweep(
        scenarios=("steady-poisson",),
        policies=("vllm",),
        faults=("cluster-outage",),
        migrations=("sticky", "migrate"),
        scale=dataclasses.replace(scale, name=f"chaos-{scale.name}"),
        seed=seed,
        max_workers=1,
    )


def _serve_sweep_benchmark(scale: ExperimentScale, seed: int) -> Dict:
    """A small online-serving sweep so its cost is tracked across PRs.

    The open-loop baseline plus one closed-loop retry+backpressure cell —
    the goodput comparison the serve acceptance test pins.  Runs inline
    (``max_workers=1``) so the event-loop meter in this process sees the
    simulated events, and uncached so the row keeps measuring real
    execution; the parallel and cached paths are covered by
    ``tests/test_serve.py`` and the ``repro.serve`` CLI.
    """
    return run_serve_sweep(
        scenarios=("spike-train",),
        policies=("vllm",),
        clients=("open", "16"),
        retries=("backoff",),
        backpressures=("on",),
        scale=dataclasses.replace(scale, name=f"serve-{scale.name}"),
        seed=seed,
        max_workers=1,
    )


def _sweep_cache_benchmark(scale: ExperimentScale, seed: int) -> Dict[str, float]:
    """Cold vs. warm scenario+fleet sweep through the result cache.

    Runs the same grids as the ``scenarios`` and ``fleet`` rows twice
    against a throwaway cache directory: the first pass computes and
    populates the cache, the second is served entirely from it.  The
    additive ``cold_wall_s`` / ``warm_wall_s`` / ``cache_speedup`` fields
    make the incremental-sweep win visible in ``BENCH_results.json``.
    """
    cache_dir = Path(tempfile.mkdtemp(prefix="repro-sweep-cache-bench-"))

    def sweep_pair() -> int:
        scenario_doc = run_sweep(
            scenarios=("steady-poisson", "spike-train"),
            policies=("vllm", "kunserve"),
            scale=dataclasses.replace(scale, name=f"sweep-cache-{scale.name}"),
            seed=seed,
            max_workers=1,
            use_cache=True,
            cache_dir=cache_dir,
        )
        fleet_doc = run_fleet_sweep(
            scenarios=("steady-poisson",),
            policies=("vllm",),
            routers=("least_loaded", "power_of_two_choices"),
            autoscalers=("fixed", "elastic"),
            scale=dataclasses.replace(scale, name=f"sweep-cache-fleet-{scale.name}"),
            seed=seed,
            max_workers=1,
            use_cache=True,
            cache_dir=cache_dir,
        )
        return scenario_doc["cache_hits"] + fleet_doc["cache_hits"]

    try:
        start = time.perf_counter()
        cold_hits = sweep_pair()
        cold_wall_s = time.perf_counter() - start
        start = time.perf_counter()
        warm_hits = sweep_pair()
        warm_wall_s = time.perf_counter() - start
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    return {
        "cold_wall_s": cold_wall_s,
        "warm_wall_s": warm_wall_s,
        "cache_speedup": cold_wall_s / warm_wall_s if warm_wall_s > 0 else 0.0,
        "cold_cache_hits": float(cold_hits),
        "warm_cache_hits": float(warm_hits),
    }


def _trace_overhead_benchmark(scale: ExperimentScale, seed: int) -> Dict[str, float]:
    """Disabled-tracer overhead on the canonical serve cell.

    Runs the same closed-loop serve cell with no tracer attached and with
    a tracer attached but recording off (``trace="disabled"``) — the
    configuration a deployment keeps around for opt-in tracing.  Each
    variant is timed five times and the best (minimum) wall is kept —
    the standard defence against scheduler noise on a shared box.  The
    pairs are interleaved with alternating order and a full
    ``gc.collect()`` before every timed run, so load drift and collector
    debt accumulated by earlier bench rows hit both variants equally
    instead of taxing whichever happens to run second.  The
    additive ``untraced_wall_s`` / ``disabled_wall_s`` /
    ``overhead_ratio`` fields pin the ISSUE acceptance bound
    (disabled-tracer overhead within noise of 1.0x) in
    ``BENCH_results.json`` so regressions show up in the trajectory.
    """
    import gc

    from repro.serve.sweep import run_serve_cell

    cell_scale = dataclasses.replace(scale, name=f"trace-overhead-{scale.name}")

    def cell(trace) -> float:
        gc.collect()
        start = time.perf_counter()
        run_serve_cell(
            "spike-train", "vllm", "16", "backoff", "on", cell_scale, seed,
            trace=trace,
        )
        return time.perf_counter() - start

    cell(False)  # warm imports and caches so no timed run pays them
    untraced_walls: List[float] = []
    disabled_walls: List[float] = []
    for round_index in range(5):
        order = (False, "disabled") if round_index % 2 == 0 else ("disabled", False)
        for trace in order:
            (untraced_walls if trace is False else disabled_walls).append(cell(trace))
    untraced_wall_s = min(untraced_walls)
    disabled_wall_s = min(disabled_walls)
    return {
        "untraced_wall_s": untraced_wall_s,
        "disabled_wall_s": disabled_wall_s,
        "overhead_ratio": (
            disabled_wall_s / untraced_wall_s if untraced_wall_s > 0 else 0.0
        ),
    }


def _event_core_benchmark(scale: ExperimentScale, seed: int) -> None:
    """Pure event-loop microbenchmark: dispatch cost with nothing else.

    Sixteen self-rescheduling timer chains, each with a distinct period,
    where every tick also bursts four zero-delay no-ops — the schedule
    shape the serving simulator produces (staggered periodic processes
    plus same-timestamp kick storms), minus all model work.  The row's
    ``events_per_s`` is therefore the raw dispatch throughput of
    :class:`~repro.simulation.event_loop.EventLoop` itself; the
    regression gate in ``scripts/bench_compare.py`` watches it across
    PRs.  Event count scales with the trace length so tiny smoke runs
    stay fast (~5k events/s of trace ≈ 80k tiny / 900k canonical).
    """
    loop = EventLoop()

    def noop() -> None:
        pass

    def make_chain(index: int) -> Callable[[], None]:
        period = 0.001 + 0.0001 * index

        def tick() -> None:
            for _ in range(4):
                loop.schedule(0.0, noop)
            loop.schedule(period, tick)

        return tick

    for index in range(16):
        chain = make_chain(index)
        loop.schedule(0.001 * index, chain)
    loop.run(max_events=int(20_000 * scale.trace_duration_s))


def _parallel_shards_benchmark(scale: ExperimentScale, seed: int) -> Dict[str, float]:
    """Serial vs. conservative-parallel execution of one eligible tier cell.

    A four-shard ``locality_affinity``/``fixed``-autoscaler cell — the
    configuration class :mod:`repro.parallel` can shard — run serially and
    then under the parallel executor.  The additive fields record measured
    wall-clocks, the speedup, the worker/CPU counts (a 1-CPU container
    cannot show a real speedup; ``cpu_count`` makes that legible in the
    trajectory) and ``identical`` — 1.0 iff the two runs produced
    bit-identical records, summaries and tier stats, which is the
    correctness half of the row.
    """
    import os

    from repro.multicluster.config import make_multicluster_config
    from repro.multicluster.sweep import SWEEP_ADMISSION, run_tier
    from repro.scenarios.registry import get_scenario
    from repro.scenarios.sweep import build_cell_config

    spec = get_scenario("steady-poisson")
    cell_scale = dataclasses.replace(scale, name=f"parallel-shards-{scale.name}")
    shards = 4

    def build(execution: str):
        config = build_cell_config(spec, cell_scale, seed=seed)
        config.multicluster = make_multicluster_config(
            num_clusters=shards,
            global_router="locality_affinity",
            placement="spare_capacity_first",
            cluster_autoscaler="fixed",
            admission=SWEEP_ADMISSION,
            execution=execution,
        )
        return config

    def digest(run):
        return (
            tuple((r.ttft, r.mean_tpot, r.finished) for r in run.result.records),
            run.result.summary,
            run.system.stats(),
            run.result.duration_s,
            run.result.finished_requests,
        )

    serial = run_tier(spec, "vllm", build("serial"), cell_scale, seed)
    parallel = run_tier(spec, "vllm", build("parallel"), cell_scale, seed)
    report = parallel.parallel
    identical = digest(serial) == digest(parallel)
    return {
        "shards": float(shards),
        "workers": float(report.workers if report is not None else 0),
        "cpu_count": float(os.cpu_count() or 1),
        "serial_wall_s": serial.wall_s,
        "parallel_wall_s": parallel.wall_s,
        "speedup": serial.wall_s / parallel.wall_s if parallel.wall_s > 0 else 0.0,
        "identical": 1.0 if identical else 0.0,
    }


#: id -> runner; every runner accepts the scale unless marked analytic.
EXPERIMENT_RUNNERS: Dict[str, Callable] = {
    "figure2": lambda scale, seed: figure2.run_figure2(scale, seed=seed),
    "figure5": lambda scale, seed: figure5.run_figure5(scale, seed=seed, max_degree=2),
    "figure12": lambda scale, seed: figure12.run_figure12(
        scale, seed=seed, workload_keys=("burstgpt-14b",)
    ),
    "figure13": lambda scale, seed: figure13.run_figure13(
        scale, seed=seed, workload_keys=("burstgpt-14b",)
    ),
    "figure14": lambda scale, seed: figure14.run_figure14(scale, seed=seed),
    "figure15": lambda scale, seed: figure15.run_figure15(),
    "figure16": lambda scale, seed: figure16.run_figure16(
        scale, seed=seed, duration_s=3 * scale.trace_duration_s
    ),
    "figure17": lambda scale, seed: figure17.run_figure17(scale, seed=seed),
    "table1": lambda scale, seed: table1.run_table1(),
    "scenarios": _scenario_sweep_benchmark,
    "fleet": _fleet_sweep_benchmark,
    "multicluster": _multicluster_sweep_benchmark,
    "chaos": _chaos_sweep_benchmark,
    "serve": _serve_sweep_benchmark,
    "sweep_cache": _sweep_cache_benchmark,
    "trace_overhead": _trace_overhead_benchmark,
    "event_core": _event_core_benchmark,
    "parallel_shards": _parallel_shards_benchmark,
}

#: Experiment ids whose runner's return value is a dict of additive entry
#: fields (everything else returns a document the meter ignores).
EXTRA_FIELD_RUNNERS = frozenset({"sweep_cache", "trace_overhead", "parallel_shards"})


def run_experiment_benchmark(
    experiment_id: str, scale: ExperimentScale, *, seed: int = 42
) -> BenchEntry:
    """Run one figure/table experiment end-to-end; meter the run."""
    runner = EXPERIMENT_RUNNERS[experiment_id]

    def body() -> Dict[str, float]:
        out = runner(scale, seed)
        return out if experiment_id in EXTRA_FIELD_RUNNERS else {}

    measured = _metered(body)
    extra = {
        key: value
        for key, value in measured.items()
        if key not in ("wall_s", "sim_s", "events", "events_per_s")
    }
    return BenchEntry(
        experiment=experiment_id,
        kind="experiment",
        policy=None,
        wall_s=measured["wall_s"],
        sim_s=measured["sim_s"],
        events=int(measured["events"]),
        events_per_s=measured["events_per_s"],
        finished_requests=0,
        extra=extra,
    )


def resolve_experiment_ids(experiments: Optional[Sequence[str]]) -> List[str]:
    """Validate an experiment-id selection (``None`` means every runner)."""
    ids = list(experiments) if experiments is not None else list(EXPERIMENT_RUNNERS)
    unknown = [i for i in ids if i not in EXPERIMENT_RUNNERS]
    if unknown:
        known = ", ".join(EXPERIMENT_RUNNERS)
        raise KeyError(f"unknown experiments {unknown}; known: {known}")
    return ids


def run_experiment_benchmarks(
    scale: ExperimentScale = CANONICAL_SCALE,
    *,
    seed: int = 42,
    experiments: Optional[Sequence[str]] = None,
) -> List[BenchEntry]:
    """Benchmark the requested (default: all) figure/table experiments."""
    return [
        run_experiment_benchmark(i, scale, seed=seed)
        for i in resolve_experiment_ids(experiments)
    ]


# ----------------------------------------------------------------------
# Sweep-engine adapters (the harness rows as tasks)
# ----------------------------------------------------------------------
def run_policy_suite_payload(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """Sweep-engine runner: the five per-policy benchmarks as one cell.

    One cell for the whole suite so every policy replays the *same*
    workload object instead of rebuilding it per policy.
    """
    scale = ExperimentScale(**params["scale"])
    entries = run_policy_benchmarks(scale, seed=seed)
    return {"entries": [entry_dict(entry) for entry in entries]}


def run_experiment_payload(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """Sweep-engine runner: one figure/table experiment benchmark."""
    scale = ExperimentScale(**params["scale"])
    entry = run_experiment_benchmark(params["experiment"], scale, seed=seed)
    return {"entries": [entry_dict(entry)]}


# ----------------------------------------------------------------------
# Full harness + persistence
# ----------------------------------------------------------------------
def run_benchmarks(
    scale: ExperimentScale = CANONICAL_SCALE,
    *,
    seed: int = 42,
    include_policies: bool = True,
    include_experiments: bool = True,
    experiments: Optional[Sequence[str]] = None,
) -> Dict:
    """Run the harness and return the ``BENCH_results.json`` document."""
    scale_dict = dataclasses.asdict(scale)
    tasks: List[SweepTask] = []
    if include_policies:
        tasks.append(
            SweepTask(
                runner="repro.bench.harness:run_policy_suite_payload",
                params={"scale": scale_dict},
                key={"kind": "bench-policy-suite", "scale": scale_dict},
                seed=seed,
                label="policies",
            )
        )
    if include_experiments:
        for experiment_id in resolve_experiment_ids(experiments):
            tasks.append(
                SweepTask(
                    runner="repro.bench.harness:run_experiment_payload",
                    params={"scale": scale_dict, "experiment": experiment_id},
                    key={
                        "kind": "bench-experiment",
                        "experiment": experiment_id,
                        "scale": scale_dict,
                    },
                    seed=seed,
                    label=experiment_id,
                )
            )
    # Inline, uncached: benchmark rows measure host time on this machine.
    outcome = run_tasks(tasks, max_workers=1, cache=None)
    entries = []
    for payload in outcome.results:
        for entry in payload["entries"]:
            if "profile" in payload:
                # The task-level resource profile (wall/CPU/peak RSS, see
                # repro.obs.profile) recorded by the sweep executor.  A
                # multi-entry task (the policy suite) shares one profile
                # across its entries — it measures the task, not the row.
                entry["profile"] = payload["profile"]
            entries.append(entry)
    return {
        "schema_version": 1,
        "repro_version": __version__,
        "scale": {
            "name": scale.name,
            "num_instances": scale.num_instances,
            "trace_duration_s": scale.trace_duration_s,
            "drain_timeout_s": scale.drain_timeout_s,
        },
        "entries": entries,
    }


def write_results(document: Dict, path: Optional[Path] = None) -> Path:
    """Write the document to ``BENCH_results.json`` (repo root by default)."""
    target = Path(path) if path is not None else DEFAULT_OUTPUT
    target.write_text(json.dumps(document, indent=2, sort_keys=False) + "\n")
    return target


def format_results(document: Dict) -> str:
    """Human-readable table of a results document."""
    lines = [
        f"repro {document['repro_version']} · scale {document['scale']['name']} "
        f"({document['scale']['num_instances']} instances, "
        f"{document['scale']['trace_duration_s']:.0f}s trace)",
        f"{'experiment':<18} {'policy':<12} {'wall_s':>8} {'events':>9} {'events/s':>10} {'finished':>8}",
    ]
    for entry in document["entries"]:
        lines.append(
            f"{entry['experiment']:<18} {entry['policy'] or '-':<12} "
            f"{entry['wall_s']:>8.2f} {entry['events']:>9d} "
            f"{entry['events_per_s']:>10.0f} {entry['finished_requests']:>8d}"
        )
        if entry["experiment"] == "sweep_cache" and "cache_speedup" in entry:
            lines.append(
                f"{'':<18} {'':<12} cold {entry['cold_wall_s']:.2f}s -> warm "
                f"{entry['warm_wall_s']:.2f}s ({entry['cache_speedup']:.0f}x)"
            )
        if entry["experiment"] == "trace_overhead" and "overhead_ratio" in entry:
            lines.append(
                f"{'':<18} {'':<12} untraced {entry['untraced_wall_s']:.2f}s vs "
                f"disabled tracer {entry['disabled_wall_s']:.2f}s "
                f"({entry['overhead_ratio']:.3f}x)"
            )
        if entry["experiment"] == "parallel_shards" and "speedup" in entry:
            lines.append(
                f"{'':<18} {'':<12} serial {entry['serial_wall_s']:.2f}s vs "
                f"parallel {entry['parallel_wall_s']:.2f}s "
                f"({entry['speedup']:.2f}x, {entry['workers']:.0f} workers / "
                f"{entry['cpu_count']:.0f} cpus, identical="
                f"{'yes' if entry['identical'] else 'NO'})"
            )
    return "\n".join(lines)
