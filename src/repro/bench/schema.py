"""Stable schema of ``BENCH_results.json``.

The benchmark harness emits one JSON document per run so successive PRs can
track the performance trajectory of the simulator.  The schema below is a
compatibility contract: keys may be *added* in later schema versions, but
the keys listed here are never renamed or removed, and
``tests/test_bench.py`` pins them.

Top-level document::

    {
      "schema_version": 1,        # int, bumped on any breaking change
      "repro_version": "0.1.0",   # repro package version that produced it
      "scale": {                  # canonical scenario the run used
        "name": str,
        "num_instances": int,
        "trace_duration_s": float,
        "drain_timeout_s": float
      },
      "entries": [BenchEntry, ...]
    }

Each entry (one benchmark measurement)::

    {
      "experiment": str,          # stable id, e.g. "policy:kunserve" or
                                  # "figure12" — see ids below
      "kind": "policy" | "experiment",
      "policy": str | null,       # policy name for kind == "policy"
      "wall_s": float,            # host wall-clock seconds
      "sim_s": float,             # simulated seconds covered (0 when n/a)
      "events": int,              # discrete events executed
      "events_per_s": float,      # events / wall_s (0 when no events ran)
      "finished_requests": int    # requests completed (0 when n/a)
    }

Experiment ids are ``policy:<name>`` for the per-policy benchmarks (vllm,
vllm-pp, infercept, llumnix, kunserve), the module name (``figure2``,
``figure5``, ``figure12``..``figure17``, ``table1``) for the figure/table
experiments, ``scenarios`` / ``fleet`` / ``multicluster`` for the sweep
timing rows (small grids run inline so their cost is tracked),
``sweep_cache`` for the incremental-sweep row, ``event_core`` for the pure
event-loop dispatch microbenchmark (its ``events_per_s`` is gated by
``scripts/bench_compare.py``), and ``parallel_shards`` for the
serial-vs-parallel tier comparison.  Entries may carry *additive* fields
beyond ``ENTRY_KEYS``; the ``sweep_cache`` row adds ``cold_wall_s`` /
``warm_wall_s`` / ``cache_speedup`` / ``cold_cache_hits`` /
``warm_cache_hits``, the cold-vs-warm wall-clock of the same
scenario+fleet sweep run twice through the ``.repro_cache/`` result
cache; the ``parallel_shards`` row adds ``shards`` / ``workers`` /
``cpu_count`` / ``serial_wall_s`` / ``parallel_wall_s`` / ``speedup`` /
``identical`` (1.0 iff serial and parallel runs matched to the bit).
Every entry additionally carries a ``profile`` block — the task-level
resource profile (``wall_s`` / ``cpu_s`` / ``peak_rss_kb`` / ``events``
/ ``events_per_s`` / ``sim_s``) recorded by the sweep executor (see
:mod:`repro.obs.profile`); ``scripts/bench_compare.py`` reports (but
never gates on) its peak-RSS deltas.
"""

from __future__ import annotations

from typing import Dict, List

#: Current schema version; bump only on breaking changes.
SCHEMA_VERSION = 1

#: Keys every top-level document must carry.
DOCUMENT_KEYS = ("schema_version", "repro_version", "scale", "entries")

#: Keys every entry must carry (the stable contract).
ENTRY_KEYS = (
    "experiment",
    "kind",
    "policy",
    "wall_s",
    "sim_s",
    "events",
    "events_per_s",
    "finished_requests",
)

#: Keys of the scale block.
SCALE_KEYS = ("name", "num_instances", "trace_duration_s", "drain_timeout_s")


def validate_document(document: Dict) -> List[str]:
    """Return a list of schema violations (empty when the document is valid)."""
    problems: List[str] = []
    for key in DOCUMENT_KEYS:
        if key not in document:
            problems.append(f"missing top-level key {key!r}")
    if document.get("schema_version") != SCHEMA_VERSION:
        problems.append(
            f"schema_version is {document.get('schema_version')!r}, expected {SCHEMA_VERSION}"
        )
    for key in SCALE_KEYS:
        if key not in document.get("scale", {}):
            problems.append(f"missing scale key {key!r}")
    entries = document.get("entries", [])
    if not isinstance(entries, list):
        problems.append("entries must be a list")
        entries = []
    for index, entry in enumerate(entries):
        for key in ENTRY_KEYS:
            if key not in entry:
                problems.append(f"entry {index} ({entry.get('experiment')!r}) missing {key!r}")
        if entry.get("kind") not in ("policy", "experiment"):
            problems.append(f"entry {index} has invalid kind {entry.get('kind')!r}")
    return problems
