"""Benchmark harness for the simulator itself (``python -m repro.bench``).

Times each paper experiment and each overload policy on a canonical
BurstGPT slice (host wall-clock and simulated events/sec) and emits a
stable-schema ``BENCH_results.json`` at the repository root so the
simulator's performance trajectory is tracked across PRs.
"""

from repro.bench.harness import (
    BenchEntry,
    CANONICAL_SCALE,
    CANONICAL_WORKLOAD,
    DEFAULT_OUTPUT,
    EXPERIMENT_RUNNERS,
    EXTRA_FIELD_RUNNERS,
    TINY_SCALE,
    entry_dict,
    format_results,
    run_benchmarks,
    run_experiment_benchmark,
    run_experiment_benchmarks,
    run_policy_benchmark,
    run_policy_benchmarks,
    write_results,
)
from repro.bench.schema import (
    DOCUMENT_KEYS,
    ENTRY_KEYS,
    SCALE_KEYS,
    SCHEMA_VERSION,
    validate_document,
)

__all__ = [
    "BenchEntry",
    "CANONICAL_SCALE",
    "CANONICAL_WORKLOAD",
    "DEFAULT_OUTPUT",
    "DOCUMENT_KEYS",
    "ENTRY_KEYS",
    "EXPERIMENT_RUNNERS",
    "EXTRA_FIELD_RUNNERS",
    "SCALE_KEYS",
    "SCHEMA_VERSION",
    "TINY_SCALE",
    "entry_dict",
    "format_results",
    "run_benchmarks",
    "run_experiment_benchmark",
    "run_experiment_benchmarks",
    "run_policy_benchmark",
    "run_policy_benchmarks",
    "validate_document",
    "write_results",
]
