"""CLI entry point: ``python -m repro.bench``.

Runs the benchmark harness at the canonical scale and writes
``BENCH_results.json`` to the repository root (see ``--output``).
"""

from __future__ import annotations

import argparse
import dataclasses
import sys

from repro.bench.harness import (
    CANONICAL_SCALE,
    EXPERIMENT_RUNNERS,
    TINY_SCALE,
    format_results,
    run_benchmarks,
    write_results,
)
from repro.bench.schema import validate_document


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Benchmark the simulator: wall-clock and simulated events/sec "
        "per policy and per paper experiment.",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="where to write BENCH_results.json (default: repository root)",
    )
    parser.add_argument(
        "--tiny",
        action="store_true",
        help="use the tiny smoke-test scale instead of the canonical scale",
    )
    parser.add_argument(
        "--instances", type=int, default=None, help="override the instance count"
    )
    parser.add_argument(
        "--trace-duration",
        type=float,
        default=None,
        help="override the trace duration in simulated seconds",
    )
    parser.add_argument("--seed", type=int, default=42, help="workload seed")
    parser.add_argument(
        "--skip-policies", action="store_true", help="skip the per-policy benchmarks"
    )
    parser.add_argument(
        "--skip-experiments",
        action="store_true",
        help="skip the figure/table experiment benchmarks",
    )
    parser.add_argument(
        "--experiments",
        nargs="*",
        default=None,
        metavar="ID",
        help=f"subset of experiments to run (known: {', '.join(EXPERIMENT_RUNNERS)})",
    )
    args = parser.parse_args(argv)

    scale = TINY_SCALE if args.tiny else CANONICAL_SCALE
    if args.instances is not None or args.trace_duration is not None:
        overrides = {"name": f"{scale.name}-custom"}
        if args.instances is not None:
            overrides["num_instances"] = args.instances
        if args.trace_duration is not None:
            overrides["trace_duration_s"] = args.trace_duration
            overrides["drain_timeout_s"] = args.trace_duration
        scale = dataclasses.replace(scale, **overrides)

    try:
        document = run_benchmarks(
            scale,
            seed=args.seed,
            include_policies=not args.skip_policies,
            include_experiments=not args.skip_experiments,
            experiments=args.experiments,
        )
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    problems = validate_document(document)
    if problems:
        print("schema violations:", *problems, sep="\n  ", file=sys.stderr)
        return 1
    path = write_results(document, args.output)
    print(format_results(document))
    print(f"\nwrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
