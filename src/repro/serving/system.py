"""End-to-end cluster serving system.

Builds the whole stack (cluster, instances, groups, dispatcher, monitor,
policy) from a :class:`ServingConfig`, replays a workload trace through it,
and returns the collected metrics.  This is the object every experiment
module drives.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster.cluster import Cluster
from repro.engine.group import MicrobatchFormer, ServingGroup
from repro.engine.instance import ServingInstance
from repro.engine.metrics import MetricsCollector, RequestRecord
from repro.engine.request import Request
from repro.engine.scheduler import SchedulerConfig
from repro.fleet.controller import FleetController
from repro.models.memory import kv_bytes_per_token
from repro.models.spec import ModelSpec
from repro.policies.base import OverloadPolicy
from repro.serving.config import ServingConfig
from repro.serving.dispatcher import Dispatcher
from repro.serving.monitor import GlobalMonitor
from repro.simulation.event_loop import EventLoop
from repro.simulation.rng import SeededRNG
from repro.workloads.trace import Workload


@dataclass
class SimulationResult:
    """Outcome of replaying one workload on one system configuration."""

    system_name: str
    workload_name: str
    metrics: MetricsCollector
    records: List[RequestRecord]
    duration_s: float
    submitted_requests: int
    finished_requests: int
    summary: Dict[str, float] = field(default_factory=dict)

    @property
    def completion_ratio(self) -> float:
        if self.submitted_requests == 0:
            return 1.0
        return self.finished_requests / self.submitted_requests


class ClusterServingSystem:
    """A cluster of serving instances behind a dispatcher and a monitor."""

    def __init__(
        self,
        config: ServingConfig,
        policy: OverloadPolicy,
        *,
        loop: Optional[EventLoop] = None,
    ) -> None:
        # ``loop`` lets a caller share one deterministic event loop across
        # several systems — the multicluster tier simulates N clusters in
        # lock-step on a single loop.  Default: a private loop, as before.
        self.config = config
        self.policy = policy
        self.loop = loop if loop is not None else EventLoop()
        self.cluster = Cluster(config.cluster, self.loop)
        self.fabric = self.cluster.fabric
        self.metrics = MetricsCollector(timeline_window_s=config.timeline_window_s)
        self.model: ModelSpec = config.model
        self.kv_token_bytes = kv_bytes_per_token(config.model)
        self._rng = SeededRNG(config.seed, "system")
        self._group_counter = itertools.count()

        self.instances: List[ServingInstance] = self._build_instances()
        self.groups: List[ServingGroup] = []
        #: called with each finished request, synchronously at completion —
        #: the online serving frontend's closed-loop clients hang off this.
        #: Populated before group construction: every group (including ones
        #: the autoscaler creates later) fans out through the same list.
        self.completion_listeners: List = []
        self.fleet: Optional[FleetController] = (
            FleetController(config.fleet, self) if config.fleet is not None else None
        )
        #: optional per-request span recorder (see :meth:`attach_tracer`).
        #: Initialised before group construction: ``create_group`` checks it.
        self.tracer = None
        #: cluster label used in trace track names; the multicluster tier
        #: overrides it per shard before wiring the shared tracer.
        self._trace_cluster = "0"
        self._build_initial_groups()

        self.dispatcher = Dispatcher()
        # Policies that keep the base no-op tick (vLLM, InferCept) never
        # read the per-group snapshots, so the monitor can run its
        # aggregate-only fast path for them.
        consumes_snapshots = (
            type(policy).on_monitor_tick is not OverloadPolicy.on_monitor_tick
        )
        self.monitor = GlobalMonitor(
            self.loop,
            self.metrics,
            group_provider=lambda: self.groups,
            interval_s=config.monitor_interval_s,
            callback=self._on_monitor_tick,
            collect_snapshots=consumes_snapshots,
        )
        self._submitted = 0
        self._all_requests: List[Request] = []
        #: set lazily by :meth:`_arm_chaos` / chaos tests.
        self.fault_manager = None
        #: optional live-metrics stream (see :meth:`attach_metrics`).
        self.metrics_monitor = None
        self.policy.attach(self)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_instances(self) -> List[ServingInstance]:
        instances = []
        for index, gpus in enumerate(self.cluster.gpu_groups(self.config.gpus_per_instance)):
            instances.append(
                ServingInstance(
                    instance_id=index,
                    model=self.model,
                    gpus=gpus,
                    block_size=self.config.block_size,
                    runtime_reserve_fraction=self.config.runtime_reserve_fraction,
                    latency_config=self.config.latency_config,
                    rng=self._rng.child(f"latency-{index}"),
                )
            )
        return instances

    def _build_initial_groups(self) -> None:
        # The fleet's autoscaler may hold back instances as spare capacity;
        # the policy lays out only the instances serving from the start.
        initial = instances = self.instances
        if self.fleet is not None:
            reserve = self.fleet.reserve_instances(len(instances))
            initial = instances[: len(instances) - reserve]
            self.fleet.autoscaler.adopt_spares(list(instances[len(initial):]))
        layout = self.policy.initial_groups(len(initial))
        for member_indices in layout:
            members = [initial[i] for i in member_indices]
            assignment = self.policy.initial_layer_assignment(
                member_indices, self.model.num_layers
            )
            for instance, layers in zip(members, assignment):
                instance.load_layers(layers)
            self.create_group(members, assignment=assignment)

    def _scheduler_config(self) -> SchedulerConfig:
        base = SchedulerConfig(
            token_budget=self.config.token_budget,
            max_running_requests=self.config.max_running_requests,
        )
        return self.policy.scheduler_config(base)

    # ------------------------------------------------------------------
    # Group lifecycle (also used by the KunServe core)
    # ------------------------------------------------------------------
    def create_group(
        self,
        instances: List[ServingInstance],
        assignment: Optional[List[List[int]]] = None,
        microbatch_former: Optional[MicrobatchFormer] = None,
    ) -> ServingGroup:
        group = ServingGroup(
            group_id=next(self._group_counter),
            instances=instances,
            model=self.model,
            loop=self.loop,
            fabric=self.fabric,
            metrics=self.metrics,
            scheduler_config=self._scheduler_config(),
            assignment=assignment,
            microbatch_former=microbatch_former,
            block_size=self.config.block_size,
        )
        self.groups.append(group)
        group.finish_listeners.append(self._notify_finished)
        if self.tracer is not None:
            self._wire_group_tracer(group)
        if self.fleet is not None:
            self.fleet.on_group_created(group)
        return group

    def retire_group(self, group: ServingGroup) -> None:
        group.deactivate()
        if group in self.groups:
            self.groups.remove(group)

    @property
    def active_groups(self) -> List[ServingGroup]:
        return [g for g in self.groups if g.active]

    # ------------------------------------------------------------------
    # Request submission
    # ------------------------------------------------------------------
    def submit(self, request: Request) -> None:
        """Dispatch a request right now (through the fleet layer if present)."""
        self._submitted += 1
        self._all_requests.append(request)
        if self.tracer is not None:
            self.tracer.on_submit(request)
        if self.fleet is not None:
            self.fleet.submit(request)
        else:
            self.dispatcher.dispatch(request, self.groups)

    def submit_at(self, request: Request, time: float) -> None:
        """Schedule a request arrival at absolute simulation time ``time``."""
        self.loop.schedule_at(time, lambda r=request: self.submit(r), name="arrival")

    def schedule_workload(self, workload: Workload) -> List[Request]:
        """Register every request of a workload as a future arrival."""
        requests = workload.to_engine_requests()
        for request in requests:
            self.submit_at(request, request.arrival_time)
        return requests

    # ------------------------------------------------------------------
    # Completion / shed callbacks (online serving frontend)
    # ------------------------------------------------------------------
    def add_completion_listener(self, listener) -> None:
        """Call ``listener(request)`` whenever any group finishes a request."""
        self.completion_listeners.append(listener)

    def add_shed_listener(self, listener) -> None:
        """Call ``listener(request)`` whenever admission sheds a request.

        Shedding is an admission-layer decision, so a fleet config is
        required — a bare dispatcher accepts everything and would silently
        never fire the callback.
        """
        if self.fleet is None:
            raise ValueError(
                "shed callbacks require an admission layer: set ServingConfig.fleet"
            )
        self.fleet.admission.shed_listeners.append(listener)

    def _notify_finished(self, request: Request) -> None:
        for listener in self.completion_listeners:
            listener(request)

    def forget_request(self, request: Request) -> None:
        """Drop a request from this system's accounting entirely.

        The multicluster tier calls this when a fault displaces a request
        *off* this shard and re-homes it on a sibling — the request is
        then the sibling's to record, and keeping it here would double
        count it as unfinished at finalisation.  The ``_submitted`` intake
        counter is *not* rolled back: the submission event happened, and
        the metrics stream exposes it as a monotone Prometheus counter.
        """
        try:
            self._all_requests.remove(request)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    # Chaos and metrics hooks
    # ------------------------------------------------------------------
    def _arm_chaos(self, horizon: float) -> None:
        """Schedule the config's fault events (single-cluster scope).

        Standalone systems support ``instance_kill`` faults only —
        cluster outages and WAN degradation are tier-level concepts the
        multicluster system injects itself (it builds its shards with
        ``chaos=None``, so the two never double-fire).
        """
        schedule = self.config.chaos
        if schedule is None or not schedule:
            return
        unsupported = sorted(
            {e.kind for e in schedule.events if e.kind != "instance_kill"}
        )
        if unsupported:
            raise ValueError(
                f"single-cluster runs support instance_kill faults only, "
                f"got {', '.join(unsupported)} (use a multicluster config)"
            )
        from repro.core.fault_tolerance import FaultToleranceManager

        if self.fault_manager is None:
            self.fault_manager = FaultToleranceManager(self)
        for event in schedule.events:
            if event.at_s >= horizon:
                continue
            if event.instance >= len(self.instances):
                raise ValueError(
                    f"fault targets instance {event.instance}, but the cluster "
                    f"has {len(self.instances)}"
                )
            victim = self.instances[event.instance]
            self.loop.schedule_at(
                event.at_s,
                lambda v=victim: self._chaos_kill(v),
                name="chaos-instance-kill",
            )

    def _chaos_kill(self, instance: ServingInstance) -> None:
        if instance.failed:
            return
        if self.fleet is not None:
            # A failed spare must never be re-activated by the autoscaler.
            spares = self.fleet.autoscaler.spare_instances
            if instance in spares:
                spares.remove(instance)
        self.fault_manager.fail_instance(instance)

    def attach_metrics(
        self,
        *,
        path=None,
        callback=None,
        interval_s: Optional[float] = None,
        registry=None,
    ):
        """Install a :class:`repro.metrics.MetricsMonitor` on this system.

        The monitor samples the fleet/dispatcher counters every
        ``interval_s`` (default: the monitor interval) and streams
        Prometheus text scrapes to ``path`` and/or ``callback``;
        :meth:`run` starts and stops it around the replay.
        """
        from repro.metrics import MetricsMonitor, fleet_metrics_source

        monitor = MetricsMonitor(
            self.loop,
            interval_s=interval_s or self.config.monitor_interval_s,
            path=path,
            callback=callback,
            registry=registry,
        )
        monitor.add_source(fleet_metrics_source(self))
        self.metrics_monitor = monitor
        return monitor

    def _wire_group_tracer(self, group: ServingGroup) -> None:
        # A disabled tracer is never wired into the per-iteration hot
        # path: the group keeps ``tracer = None`` so its hook sites stay
        # a bare ``is None`` check — the near-zero overhead the
        # ``trace_overhead`` bench row pins.
        group.tracer = self.tracer if self.tracer.enabled else None
        group.trace_track = f"cluster{self._trace_cluster}/group{group.group_id}"

    def attach_tracer(self, tracer=None, *, enabled: bool = True):
        """Install a :class:`repro.trace.Tracer` on this system.

        Wires the span-recording hooks through the whole stack: request
        submission, admission (dispatch / shed / route), every serving
        group's iteration loop and migration mechanism, and the
        intra-cluster network fabric.  Tracing is off by default — an
        unattached system pays one ``is not None`` check per hook site —
        and ``enabled=False`` attaches the tracer without wiring the
        group/fabric/admission hot paths, so a disabled tracer costs the
        same bare checks as an untraced run (the near-zero configuration
        the ``trace_overhead`` bench row pins).

        Pass an existing ``tracer`` to share one recorder across systems
        (the multicluster tier shares its tracer with every shard).
        """
        from repro.trace import Tracer

        if tracer is None:
            tracer = Tracer(self.loop, enabled=enabled)
        self.tracer = tracer
        for group in self.groups:
            self._wire_group_tracer(group)
        if tracer.enabled:
            self.fabric.tracer = tracer
            if self.fleet is not None:
                self.fleet.admission.tracer = tracer
            self.add_completion_listener(tracer.on_finished)
        return tracer

    # ------------------------------------------------------------------
    # Monitor callback
    # ------------------------------------------------------------------
    def _on_monitor_tick(self, snapshots: List[Dict[str, float]], now: float) -> None:
        self.policy.on_monitor_tick(self, snapshots, now)

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(
        self,
        workload: Workload,
        *,
        until: Optional[float] = None,
        drain: bool = True,
    ) -> SimulationResult:
        """Replay ``workload`` and return the collected metrics.

        Args:
            workload: the requests to serve.
            until: optional hard stop (simulation seconds); defaults to the
                workload duration plus the drain timeout.
            drain: when True, keep simulating after the last arrival until
                every request finished or the drain timeout expires.
        """
        requests = self.schedule_workload(workload)
        self.monitor.start()
        if self.fleet is not None:
            self.fleet.start()
        horizon = until
        if horizon is None:
            horizon = workload.duration + (self.config.drain_timeout_s if drain else 0.0)
        self._arm_chaos(horizon)
        if self.metrics_monitor is not None:
            self.metrics_monitor.start()
        self.loop.run(until=horizon)
        self.monitor.stop()
        if self.fleet is not None:
            self.fleet.stop()
        if self.metrics_monitor is not None:
            self.metrics_monitor.stop()
        self._finalize_unfinished()
        summary = self.metrics.summary()
        result = SimulationResult(
            system_name=self.policy.name,
            workload_name=workload.name,
            metrics=self.metrics,
            records=list(self.metrics.records),
            duration_s=self.loop.now,
            submitted_requests=len(requests),
            finished_requests=self.metrics.finished_count(),
            summary=summary,
        )
        return result

    def run_online(
        self,
        frontends: List,
        *,
        until: float,
        workload_name: str = "online",
    ) -> SimulationResult:
        """Serve arrivals produced *live* by ``frontends`` until the horizon.

        Unlike :meth:`run`, nothing is pre-scheduled: each frontend's
        ``start()`` begins feeding the event loop (an
        :class:`~repro.serve.gateway.OnlineGateway` keeps exactly one
        arrival of lookahead; a closed-loop client population schedules
        only its next issue), and further submissions happen as simulation
        time advances.  ``submitted_requests`` therefore counts what was
        actually submitted by the horizon, not a pre-materialised trace.
        """
        self.monitor.start()
        if self.fleet is not None:
            self.fleet.start()
        self._arm_chaos(until)
        if self.metrics_monitor is not None:
            self.metrics_monitor.start()
        for frontend in frontends:
            frontend.start()
        self.loop.run(until=until)
        self.monitor.stop()
        if self.fleet is not None:
            self.fleet.stop()
        if self.metrics_monitor is not None:
            self.metrics_monitor.stop()
        self._finalize_unfinished()
        summary = self.metrics.summary()
        return SimulationResult(
            system_name=self.policy.name,
            workload_name=workload_name,
            metrics=self.metrics,
            records=list(self.metrics.records),
            duration_s=self.loop.now,
            submitted_requests=self._submitted,
            finished_requests=self.metrics.finished_count(),
            summary=summary,
        )

    def _finalize_unfinished(self) -> None:
        """Record requests that never finished so they count in the metrics."""
        recorded_ids = {record.request_id for record in self.metrics.records}
        for request in self._all_requests:
            if request.request_id not in recorded_ids:
                self.metrics.record_request(request)


def run_workload(
    workload: Workload,
    policy: OverloadPolicy,
    config: Optional[ServingConfig] = None,
    **run_kwargs,
) -> SimulationResult:
    """One-call helper: build a system, replay a workload, return results."""
    if config is None:
        config = ServingConfig()
    system = ClusterServingSystem(config, policy)
    return system.run(workload, **run_kwargs)
