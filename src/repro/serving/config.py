"""Serving-system configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.chaos.config import FaultSchedule
from repro.cluster.cluster import ClusterSpec
from repro.cluster.specs import cluster_a_spec
from repro.engine.latency_model import LatencyModelConfig
from repro.fleet.config import FleetConfig
from repro.models.catalog import QWEN_2_5_14B
from repro.models.spec import ModelSpec
from repro.multicluster.config import MultiClusterConfig


@dataclass
class ServingConfig:
    """Everything needed to build a :class:`ClusterServingSystem`.

    Attributes:
        model: the model being served (one replica per instance).
        cluster: the hardware (servers, GPUs, network).
        gpus_per_instance: GPUs per serving instance (tensor parallelism
            degree inside an instance; 1 for the 14B model, 4 for the 72B).
        block_size: KV-cache block size in tokens.
        token_budget: chunked-prefill token budget per iteration.
        max_running_requests: cap on concurrently admitted requests.
        runtime_reserve_fraction: HBM fraction reserved for activations and
            framework overheads (not usable by parameters or KV).
        monitor_interval_s: global monitor tick period.
        timeline_window_s: bucketing window of the recorded timelines.
        drain_timeout_s: how long past the last arrival the simulation keeps
            running to let in-flight requests finish.
        latency_config: overrides for the roofline latency model.
        seed: experiment seed (latency jitter, workload sampling).
        fleet: optional elastic-fleet layer (router strategy, admission
            control, autoscaler); ``None`` keeps the classic fixed fleet
            behind the plain dispatcher.
        multicluster: optional fleet-of-fleets tier
            (:mod:`repro.multicluster`): ``cluster`` then describes *one
            shard* and :class:`~repro.multicluster.system.MultiClusterSystem`
            instantiates ``multicluster.num_clusters`` of them behind a
            global router; ``None`` keeps the single-cluster system.
        chaos: optional deterministic fault schedule (:mod:`repro.chaos`)
            injected while the workload replays.  A multicluster system
            honours every fault kind; a single-cluster system accepts
            ``instance_kill`` events only (cluster outages and WAN
            degradation need the tier).  ``None`` disables injection.
    """

    model: ModelSpec = field(default_factory=lambda: QWEN_2_5_14B)
    cluster: ClusterSpec = field(default_factory=cluster_a_spec)
    gpus_per_instance: int = 1
    block_size: int = 64
    token_budget: int = 1024
    max_running_requests: int = 512
    runtime_reserve_fraction: float = 0.10
    monitor_interval_s: float = 1.0
    timeline_window_s: float = 1.0
    drain_timeout_s: float = 120.0
    latency_config: Optional[LatencyModelConfig] = None
    seed: int = 42
    fleet: Optional[FleetConfig] = None
    multicluster: Optional[MultiClusterConfig] = None
    chaos: Optional[FaultSchedule] = None

    def __post_init__(self) -> None:
        if self.gpus_per_instance <= 0:
            raise ValueError("gpus_per_instance must be positive")
        if self.gpus_per_instance > self.cluster.total_gpus:
            raise ValueError(
                f"gpus_per_instance={self.gpus_per_instance} exceeds the cluster's "
                f"{self.cluster.total_gpus} GPUs"
            )
        if self.monitor_interval_s <= 0:
            raise ValueError("monitor_interval_s must be positive")
        if self.drain_timeout_s < 0:
            raise ValueError("drain_timeout_s must be >= 0")

    @property
    def num_instances(self) -> int:
        return self.cluster.total_gpus // self.gpus_per_instance
