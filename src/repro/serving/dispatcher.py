"""Global request dispatcher.

Routes each arriving request to a serving group.  The default strategy is
the Llumnix-style load balancing the paper adopts for *all* evaluated
systems: pick the group with the lowest memory-demand-to-capacity ratio,
breaking ties by queue length.  A round-robin strategy is kept for
controlled experiments.
"""

from __future__ import annotations

from typing import List, Optional

from repro.engine.group import ServingGroup
from repro.engine.request import Request


class Dispatcher:
    """Routes requests to serving groups."""

    STRATEGIES = ("least_loaded", "round_robin")

    def __init__(self, strategy: str = "least_loaded") -> None:
        if strategy not in self.STRATEGIES:
            raise ValueError(
                f"unknown dispatch strategy {strategy!r}; choose from {self.STRATEGIES}"
            )
        self.strategy = strategy
        self._round_robin_cursor = 0
        self.dispatched = 0

    def dispatch(self, request: Request, groups: List[ServingGroup]) -> ServingGroup:
        """Choose a group for ``request`` and enqueue it there."""
        active = [g for g in groups if g.active]
        if not active:
            raise RuntimeError("no active serving groups to dispatch to")
        if self.strategy == "round_robin":
            group = active[self._round_robin_cursor % len(active)]
            self._round_robin_cursor += 1
        else:
            group = self._least_loaded(active)
        group.enqueue(request)
        self.dispatched += 1
        return group

    @staticmethod
    def _least_loaded(groups: List[ServingGroup]) -> ServingGroup:
        def load_key(group: ServingGroup):
            capacity = group.kv_capacity_bytes()
            demand = group.kv_demand_bytes()
            ratio = demand / capacity if capacity > 0 else float("inf")
            return (ratio, group.scheduler.num_waiting, group.group_id)

        return min(groups, key=load_key)
