"""Global request dispatcher.

Routes each arriving request to a serving group.  The default strategy is
the Llumnix-style load balancing the paper adopts for *all* evaluated
systems: pick the group with the lowest memory-demand-to-capacity ratio,
breaking ties by queue length.  Strategies are resolved from the pluggable
router registry in :mod:`repro.fleet.routing`, so every registered
strategy (round-robin, power-of-two-choices, memory headroom, session
affinity, ...) is available here by name; fleet runs replace the
dispatcher wholesale with the admission-controlled
:class:`~repro.fleet.controller.FleetController`.
"""

from __future__ import annotations

from typing import List

from repro.engine.group import ServingGroup
from repro.engine.request import Request
from repro.fleet.routing import list_routers, make_router


class Dispatcher:
    """Routes requests to serving groups via a named router strategy."""

    #: Strategy names available at import time (the built-in routers).
    STRATEGIES = tuple(list_routers())

    def __init__(self, strategy: str = "least_loaded", *, seed: int = 0) -> None:
        try:
            self._router = make_router(strategy, seed=seed)
        except KeyError:
            raise ValueError(
                f"unknown dispatch strategy {strategy!r}; choose from {tuple(list_routers())}"
            ) from None
        self.strategy = strategy
        self.dispatched = 0

    def dispatch(self, request: Request, groups: List[ServingGroup]) -> ServingGroup:
        """Choose a group for ``request`` and enqueue it there."""
        active = [g for g in groups if g.active]
        if not active:
            raise RuntimeError("no active serving groups to dispatch to")
        group = self._router.route(request, active)
        group.enqueue(request)
        self.dispatched += 1
        return group
