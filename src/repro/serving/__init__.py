"""Cluster-level serving system.

Ties the substrates together into the architecture of Figure 4: a global
dispatcher routes requests to serving instances (Llumnix-style load
balancing), a global monitor collects per-group load and invokes the
configured overload policy, and the :class:`ClusterServingSystem` replays a
workload trace end-to-end and returns the collected metrics.
"""

from repro.serving.config import ServingConfig
from repro.serving.dispatcher import Dispatcher
from repro.serving.monitor import GlobalMonitor
from repro.serving.system import ClusterServingSystem, SimulationResult, run_workload

__all__ = [
    "ServingConfig",
    "Dispatcher",
    "GlobalMonitor",
    "ClusterServingSystem",
    "SimulationResult",
    "run_workload",
]
