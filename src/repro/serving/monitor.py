"""Global monitor: periodic load collection and overload detection.

Every ``interval`` seconds the monitor samples every active group's memory
usage, demand (in-processing + head-of-line queued requests) and queue
lengths, records them into the metrics timelines, and hands the snapshot to
the configured overload policy (which may drop parameters, migrate
requests, or do nothing).

The tick is coalesced with the groups' own iteration bookkeeping: when the
attached policy does not consume per-group snapshots (vLLM and InferCept
ignore them — only Llumnix-style migration and KunServe react to cluster
state), the monitor folds the aggregate counters straight off the live
group objects in a single pass instead of materialising one snapshot dict
per group per tick.  Both paths record bit-identical timeline samples; the
fast path only skips the allocations.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.engine.group import ServingGroup
from repro.engine.metrics import MetricsCollector
from repro.simulation.event_loop import EventLoop
from repro.simulation.process import PeriodicProcess

#: Signature of the policy callback: (snapshots, now) -> None.
MonitorCallback = Callable[[List[Dict[str, float]], float], None]


class GlobalMonitor:
    """Collects usage information and triggers the overload policy."""

    def __init__(
        self,
        loop: EventLoop,
        metrics: MetricsCollector,
        group_provider: Callable[[], List[ServingGroup]],
        *,
        interval_s: float = 1.0,
        callback: Optional[MonitorCallback] = None,
        collect_snapshots: bool = True,
    ) -> None:
        self.loop = loop
        self.metrics = metrics
        self._group_provider = group_provider
        self.interval_s = interval_s
        self.callback = callback
        #: build per-group snapshot dicts each tick; pass ``False`` when the
        #: callback ignores them and only the aggregate timelines matter.
        self.collect_snapshots = collect_snapshots
        self._process = PeriodicProcess(loop, interval_s, self._tick, name="global-monitor")
        self._last_snapshots: List[Dict[str, float]] = []
        self.overload_events = 0

    @property
    def last_snapshots(self) -> List[Dict[str, float]]:
        """Per-group snapshots of the most recent tick.

        On the aggregate-only fast path no per-tick snapshot list exists,
        so external inspectors get a fresh one computed on demand instead
        of a misleading empty list.
        """
        if self.collect_snapshots:
            return self._last_snapshots
        return self.snapshot()

    def start(self) -> None:
        self._process.start(initial_delay=self.interval_s)

    def stop(self) -> None:
        self._process.stop()

    def snapshot(self) -> List[Dict[str, float]]:
        """Current per-group load snapshot."""
        return [group.load_snapshot() for group in self._group_provider() if group.active]

    def _tick(self, now: float) -> None:
        if self.collect_snapshots:
            snapshots = self.snapshot()
            self._last_snapshots = snapshots
            used = sum(s["kv_used_bytes"] for s in snapshots)
            demand = sum(s["kv_demand_bytes"] for s in snapshots)
            capacity = sum(s["kv_capacity_bytes"] for s in snapshots)
            queued = sum(int(s["num_waiting"]) for s in snapshots)
        else:
            # Aggregate-only fast path: identical sums (integer byte counts
            # are exact in float far beyond any cluster size), no dicts.
            snapshots = []
            used = 0.0
            demand = 0.0
            capacity = 0.0
            queued = 0
            for group in self._group_provider():
                if group.active:
                    used += group.kv_used_bytes()
                    demand += group.kv_demand_bytes()
                    capacity += group.kv_capacity_bytes()
                    queued += group.scheduler.num_waiting
        self.metrics.sample_memory(
            now, used_bytes=used, capacity_bytes=capacity, demand_bytes=demand
        )
        self.metrics.sample_queue(now, queued)
        if capacity > 0 and demand > capacity:
            self.overload_events += 1
        if self.callback is not None:
            self.callback(snapshots, now)
