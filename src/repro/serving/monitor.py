"""Global monitor: periodic load collection and overload detection.

Every ``interval`` seconds the monitor snapshots every active group's memory
usage, demand (in-processing + head-of-line queued requests) and queue
lengths, records them into the metrics timelines, and hands the snapshot to
the configured overload policy (which may drop parameters, migrate
requests, or do nothing).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.engine.group import ServingGroup
from repro.engine.metrics import MetricsCollector
from repro.simulation.event_loop import EventLoop
from repro.simulation.process import PeriodicProcess

#: Signature of the policy callback: (snapshots, now) -> None.
MonitorCallback = Callable[[List[Dict[str, float]], float], None]


class GlobalMonitor:
    """Collects usage information and triggers the overload policy."""

    def __init__(
        self,
        loop: EventLoop,
        metrics: MetricsCollector,
        group_provider: Callable[[], List[ServingGroup]],
        *,
        interval_s: float = 1.0,
        callback: Optional[MonitorCallback] = None,
    ) -> None:
        self.loop = loop
        self.metrics = metrics
        self._group_provider = group_provider
        self.interval_s = interval_s
        self.callback = callback
        self._process = PeriodicProcess(loop, interval_s, self._tick, name="global-monitor")
        self.last_snapshots: List[Dict[str, float]] = []
        self.overload_events = 0

    def start(self) -> None:
        self._process.start(initial_delay=self.interval_s)

    def stop(self) -> None:
        self._process.stop()

    def snapshot(self) -> List[Dict[str, float]]:
        """Current per-group load snapshot."""
        return [group.load_snapshot() for group in self._group_provider() if group.active]

    def _tick(self, now: float) -> None:
        snapshots = self.snapshot()
        self.last_snapshots = snapshots
        used = sum(s["kv_used_bytes"] for s in snapshots)
        demand = sum(s["kv_demand_bytes"] for s in snapshots)
        capacity = sum(s["kv_capacity_bytes"] for s in snapshots)
        queued = sum(int(s["num_waiting"]) for s in snapshots)
        self.metrics.sample_memory(
            now, used_bytes=used, capacity_bytes=capacity, demand_bytes=demand
        )
        self.metrics.sample_queue(now, queued)
        if capacity > 0 and demand > capacity:
            self.overload_events += 1
        if self.callback is not None:
            self.callback(snapshots, now)
