"""Pluggable cross-cluster (global) routers behind a registry.

The global router decides which *cluster* receives an arriving request;
the chosen cluster's own fleet layer (admission + intra-cluster router)
then places it on a serving group.  The registry mirrors
:mod:`repro.fleet.routing`: strategies are registered by name
(:func:`register_global_router`), instantiated with
:func:`make_global_router`, and the multicluster system resolves them
from the same registry the CLI lists.

Routers operate on *cluster handles*
(:class:`repro.multicluster.system.ClusterHandle`) — lightweight views
exposing load (``backlog``, ``kv_ratio``), topology (``index``,
``routable_group_count``) and economics (``cost_per_token``, fitted from
the cluster's roofline latency model via :mod:`repro.core.cost_model`).

Every request has a deterministic *home* cluster — the stable hash of its
session key over the cluster count (:func:`home_cluster_index`).  Routing
to any other cluster is *remote*: the request's context must cross the
inter-cluster fabric first, so remote dispatch pays the WAN cost, and the
``locality_affinity`` strategy exists precisely to avoid it.
"""

from __future__ import annotations

import abc
import hashlib
from typing import Dict, List, Sequence, Type, TYPE_CHECKING

from repro.engine.request import Request
from repro.fleet.routing import SessionAffinityRouter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.multicluster.system import ClusterHandle


def home_cluster_index(request: Request, num_clusters: int) -> int:
    """The request's home cluster: stable hash of its session key.

    Uses the same session key as the fleet's session-affinity router
    (``session_id`` when present, a coarse shape bucket otherwise), so a
    multi-turn conversation keeps one home across its whole lifetime and
    the cross-cluster traffic accounting is router-independent.
    """
    key = SessionAffinityRouter.session_key(request)
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") % num_clusters


def cluster_load_key(cluster: "ClusterHandle"):
    """Least-loaded ordering: KV pressure, then backlog, ties by index."""
    return (cluster.kv_ratio(), cluster.backlog(), cluster.index)


class GlobalRouter(abc.ABC):
    """Chooses a cluster shard for each request.

    ``route`` receives every cluster handle (in shard order, never empty)
    and must return one of them.  Routers may keep state (WRR counters)
    but must be deterministic for a fixed seed and call sequence.
    """

    #: registry name, set by ``register_global_router``.
    name: str = "base"

    def __init__(self, *, seed: int = 0, spill_queue_depth: int = 8) -> None:
        self.seed = seed
        self.spill_queue_depth = spill_queue_depth

    @abc.abstractmethod
    def route(self, request: Request, clusters: Sequence["ClusterHandle"]) -> "ClusterHandle":
        """Pick a cluster from ``clusters`` (non-empty) for ``request``."""


class LeastLoadedClusterRouter(GlobalRouter):
    """Send to the cluster with the lowest KV pressure (backlog breaks ties).

    The cross-cluster analog of the paper's Llumnix-style least-loaded
    dispatch; ignores locality entirely, so it trades WAN transfers for
    balance.
    """

    def route(self, request: Request, clusters: Sequence["ClusterHandle"]) -> "ClusterHandle":
        return min(clusters, key=cluster_load_key)


class WeightedRoundRobinRouter(GlobalRouter):
    """Smooth weighted round-robin over clusters, weighted by capacity.

    The classic nginx algorithm: each pick adds every cluster's weight
    (its routable group count, so elastic scale-ups attract more traffic)
    to a running counter, the largest counter wins and is decremented by
    the total.  Spreads load proportionally while interleaving picks —
    and, like any RR scheme, ignores session locality completely, which
    makes it the natural traffic-cost baseline for ``locality_affinity``.
    """

    def __init__(self, *, seed: int = 0, spill_queue_depth: int = 8) -> None:
        super().__init__(seed=seed, spill_queue_depth=spill_queue_depth)
        self._current: Dict[int, float] = {}

    def route(self, request: Request, clusters: Sequence["ClusterHandle"]) -> "ClusterHandle":
        weights = {
            cluster.index: float(max(1, cluster.routable_group_count()))
            for cluster in clusters
        }
        total = sum(weights.values())
        best = None
        for cluster in clusters:
            current = self._current.get(cluster.index, 0.0) + weights[cluster.index]
            self._current[cluster.index] = current
            if best is None or current > self._current[best.index]:
                best = cluster
        self._current[best.index] -= total
        return best


class LocalityAffinityRouter(GlobalRouter):
    """Pin every session to its home cluster, unconditionally.

    Maximises KV/prefix locality and keeps cross-cluster traffic at zero;
    the price is that a hot home cluster cannot shed load to its siblings
    (that trade-off is what the ``spillover`` strategy relaxes).
    """

    def route(self, request: Request, clusters: Sequence["ClusterHandle"]) -> "ClusterHandle":
        return clusters[home_cluster_index(request, len(clusters))]


class SpilloverRouter(GlobalRouter):
    """Home cluster first; overflow to the cheapest remote when it sheds.

    Keeps locality while the home cluster is healthy.  Once the home's
    per-group backlog reaches ``spill_queue_depth`` (the regime where its
    admission controller queues and ultimately sheds), the request
    overflows to the cheapest remote cluster — cost-model-weighted, i.e.
    the lowest fitted per-token execution cost scaled by current KV
    pressure — accepting one WAN transfer to avoid a shed.
    """

    def route(self, request: Request, clusters: Sequence["ClusterHandle"]) -> "ClusterHandle":
        home = clusters[home_cluster_index(request, len(clusters))]
        groups = max(1, home.routable_group_count())
        if home.backlog() < self.spill_queue_depth * groups:
            return home
        remote = [cluster for cluster in clusters if cluster is not home]
        if not remote:
            return home
        return min(
            remote,
            key=lambda c: (c.cost_per_token() * (1.0 + c.kv_ratio()), c.index),
        )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_GLOBAL_ROUTERS: Dict[str, Type[GlobalRouter]] = {}


def register_global_router(
    name: str, router_class: Type[GlobalRouter], *, overwrite: bool = False
) -> Type[GlobalRouter]:
    """Add a global router class to the registry; refuses duplicates."""
    if not name:
        raise ValueError("global router name must be non-empty")
    if name in _GLOBAL_ROUTERS and not overwrite:
        raise ValueError(f"global router {name!r} is already registered")
    router_class.name = name
    _GLOBAL_ROUTERS[name] = router_class
    return router_class


def make_global_router(
    name: str, *, seed: int = 0, spill_queue_depth: int = 8
) -> GlobalRouter:
    """Instantiate a registered global router by name."""
    if name not in _GLOBAL_ROUTERS:
        known = ", ".join(list_global_routers())
        raise KeyError(f"unknown global router {name!r}; known routers: {known}")
    return _GLOBAL_ROUTERS[name](seed=seed, spill_queue_depth=spill_queue_depth)


def list_global_routers() -> List[str]:
    """Registered global router names in registration order."""
    return list(_GLOBAL_ROUTERS)


register_global_router("least_loaded_cluster", LeastLoadedClusterRouter)
register_global_router("weighted_round_robin", WeightedRoundRobinRouter)
register_global_router("locality_affinity", LocalityAffinityRouter)
register_global_router("spillover", SpilloverRouter)
