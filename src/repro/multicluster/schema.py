"""Stable schema of ``MULTICLUSTER_results.json``.

The multicluster sweep emits one JSON document per run, mirroring the
``BENCH_results.json`` / ``SCENARIO_results.json`` / ``FLEET_results.json``
contracts: keys may be *added* in later schema versions but the keys
listed here are never renamed or removed, and ``tests/test_multicluster.py``
pins them.

Determinism contract: for a fixed (scenarios, policies, cluster_counts,
routers, placements, scale, seed) the document is bit-identical across
runs — including across parallel and sequential execution and across cold
vs. warm caches — *except* for the keys in
:data:`WALL_CLOCK_ENTRY_KEYS` / :data:`WALL_CLOCK_DOCUMENT_KEYS`; use
:func:`strip_wall_clock` before comparing documents.

Top-level document::

    {
      "schema_version": 1,         # int, bumped on any breaking change
      "repro_version": "1.1.0",    # repro package version that produced it
      "seed": int,                 # sweep seed
      "scale": {                   # per-cluster ExperimentScale of each cell
        "name": str,               # (each shard holds num_instances
        "num_instances": int,      #  instances; the workload is generated
        "trace_duration_s": float, #  for num_instances x clusters)
        "drain_timeout_s": float
      },
      "scenarios": [str, ...],     # scenario names swept, in order
      "policies": [str, ...],      # overload-policy keys swept, in order
      "cluster_counts": [int, ...],# cluster counts swept, in order
      "routers": [str, ...],       # global router strategies swept, in order
      "placements": [str, ...],    # placement policies swept, in order
      "entries": [MultiClusterEntry, ...],
      "cache_hits": int,           # cells served from .repro_cache
      "cache_misses": int,         # cells actually executed this run
      "wall_s_total": float        # host wall-clock of the whole sweep
    }

Each entry (one scenario × policy × cluster-count × router × placement
cell)::

    {
      "scenario": str,             # registry name, e.g. "steady-poisson"
      "policy": str,               # overload-policy key, e.g. "vllm"
      "policy_name": str,          # display name, e.g. "vLLM (DP)"
      "clusters": int,             # cluster shards in this cell
      "router": str,               # global router, e.g. "locality_affinity"
      "placement": str,            # placement policy, e.g. "cost_weighted"
      "workload": str,             # materialised workload name
      "requests": int,             # requests submitted to the tier
      "local_routed": int,         # requests dispatched to their home cluster
      "remote_routed": int,        # requests dispatched to a remote cluster
                                   # (these crossed the WAN fabric first)
      "cross_cluster_ratio": float,# remote_routed / requests (0 when no
                                   # requests arrived)
      "cross_cluster_bytes": float,# KV bytes moved over the WAN fabric
      "admitted": int,             # requests dispatched to a serving group
                                   # (summed over clusters)
      "shed": int,                 # requests rejected by admission (summed)
      "queue_peak": int,           # max per-cluster admission-queue peak
      "scale_up_events": int,      # autoscaler scale-ups (summed; includes
                                   # placement-directed ones)
      "remote_scale_ups": int,     # scale-ups the placement policy directed
                                   # to a sibling of the pressured cluster
      "scale_down_events": int,    # autoscaler drains (summed)
      "initial_groups": int,       # serving groups across all clusters at t=0
      "final_groups": int,         # routable groups when the run ended
      "finished": int,             # requests finished before the horizon
      "completion_ratio": float,   # finished / requests
      "ttft_p50": float, "ttft_p90": float, "ttft_p99": float,   # seconds,
      "tpot_p50": float, "tpot_p90": float, "tpot_p99": float,   # combined
                                   # over every cluster's records
      "throughput_tokens_per_s": float,  # summed over clusters
      "slo_scale": float,          # scenario SLO factor (x best-cell P50)
      "ttft_slo_s": float,         # absolute TTFT SLO derived for the cell
      "tpot_slo_s": float,         # absolute TPOT SLO derived for the cell
      "slo_violation_ratio": float,
      "slo_attainment": float,     # 1 - slo_violation_ratio
      "wall_s": float              # host wall-clock of this cell
    }
"""

from __future__ import annotations

import copy
from typing import Dict, List

#: Current schema version; bump only on breaking changes.
SCHEMA_VERSION = 1

#: Keys every top-level document must carry.
DOCUMENT_KEYS = (
    "schema_version",
    "repro_version",
    "seed",
    "scale",
    "scenarios",
    "policies",
    "cluster_counts",
    "routers",
    "placements",
    "entries",
    "wall_s_total",
)

#: Additive schema-v1 keys: emitted by current sweeps but not required by
#: the validator, so documents written before they existed stay valid.
OPTIONAL_DOCUMENT_KEYS = ("cache_hits", "cache_misses")

#: Keys every entry must carry (the stable contract).
ENTRY_KEYS = (
    "scenario",
    "policy",
    "policy_name",
    "clusters",
    "router",
    "placement",
    "workload",
    "requests",
    "local_routed",
    "remote_routed",
    "cross_cluster_ratio",
    "cross_cluster_bytes",
    "admitted",
    "shed",
    "queue_peak",
    "scale_up_events",
    "remote_scale_ups",
    "scale_down_events",
    "initial_groups",
    "final_groups",
    "finished",
    "completion_ratio",
    "ttft_p50",
    "ttft_p90",
    "ttft_p99",
    "tpot_p50",
    "tpot_p90",
    "tpot_p99",
    "throughput_tokens_per_s",
    "slo_scale",
    "ttft_slo_s",
    "tpot_slo_s",
    "slo_violation_ratio",
    "slo_attainment",
    "wall_s",
)

#: Keys of the scale block (same as the bench/scenario/fleet schemas').
SCALE_KEYS = ("name", "num_instances", "trace_duration_s", "drain_timeout_s")

#: Entry keys carrying host wall-clock (excluded from determinism checks).
WALL_CLOCK_ENTRY_KEYS = ("wall_s",)

#: Document keys carrying host-side execution accounting (wall-clock and
#: cache hit/miss counts) — excluded from determinism checks: a warm rerun
#: must compare equal to the cold run that populated its cache.
WALL_CLOCK_DOCUMENT_KEYS = ("wall_s_total", "cache_hits", "cache_misses")


def strip_wall_clock(document: Dict) -> Dict:
    """A deep copy of ``document`` with every wall-clock key removed.

    Two sweeps of the same grid and seed must compare equal after this.
    """
    stripped = copy.deepcopy(document)
    for key in WALL_CLOCK_DOCUMENT_KEYS:
        stripped.pop(key, None)
    for entry in stripped.get("entries", []):
        for key in WALL_CLOCK_ENTRY_KEYS:
            entry.pop(key, None)
    return stripped


def validate_document(document: Dict) -> List[str]:
    """Return a list of schema violations (empty when the document is valid)."""
    problems: List[str] = []
    for key in DOCUMENT_KEYS:
        if key not in document:
            problems.append(f"missing top-level key {key!r}")
    if document.get("schema_version") != SCHEMA_VERSION:
        problems.append(
            f"schema_version is {document.get('schema_version')!r}, expected {SCHEMA_VERSION}"
        )
    for key in SCALE_KEYS:
        if key not in document.get("scale", {}):
            problems.append(f"missing scale key {key!r}")
    for key in ("scenarios", "policies", "cluster_counts", "routers", "placements"):
        if key in document and not isinstance(document[key], list):
            problems.append(f"{key} must be a list")
    entries = document.get("entries", [])
    if not isinstance(entries, list):
        problems.append("entries must be a list")
        entries = []
    for index, entry in enumerate(entries):
        for key in ENTRY_KEYS:
            if key not in entry:
                problems.append(
                    f"entry {index} ({entry.get('scenario')!r} x {entry.get('router')!r} "
                    f"x {entry.get('placement')!r}) missing {key!r}"
                )
    return problems
