"""Multicluster sweep (scenario × policy × cluster-count × global-router ×
placement grid), executed by the unified sweep engine.

Replays registered scenarios (:mod:`repro.scenarios.registry`) through
fleet-of-fleets systems (:class:`~repro.multicluster.system.MultiClusterSystem`),
varying the cluster count, the global routing strategy and the placement
policy, and aggregates the results into a stable-schema
``MULTICLUSTER_results.json`` document (:mod:`repro.multicluster.schema`).

Execution mirrors :mod:`repro.fleet.sweep` exactly: every cell is a
:class:`~repro.sweeps.task.SweepTask` (content hash over the scenario
fingerprint, policy, cluster count, router, placement, WAN parameters,
scale, seed and ``repro`` version), cache hits skip recomputation
entirely, and misses fan out over the engine's shared warm worker pool.
Every cell is seeded independently of execution order and results are
JSON-normalised and assembled in grid order — so output is bit-identical
across runs, across parallel vs. sequential execution, and across cold
vs. warm caches, modulo the ``wall_s*`` and cache-accounting fields.

Scaling convention: ``scale.num_instances`` is the size of **one cluster
shard**; the workload is generated at ``num_instances × cluster_count``
so total offered load tracks total capacity and the cluster-count axis
compares shardings of the same deployment, not different deployments.
"""

from __future__ import annotations

import dataclasses
import json
import time
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.experiments.runner import ExperimentScale
from repro.fleet.config import AdmissionConfig
from repro.multicluster.config import make_multicluster_config
from repro.multicluster.placement import list_placements
from repro.multicluster.routing import list_global_routers
from repro.multicluster.schema import SCHEMA_VERSION
from repro.multicluster.system import MultiClusterResult, MultiClusterSystem
from repro.policies import make_policy
from repro.scenarios.registry import ScenarioSpec, get_scenario, list_scenarios
from repro.scenarios.sweep import build_cell_config, spec_fingerprint
from repro.sweeps import ResultCache, SweepTask, run_tasks
from repro.version import __version__
from repro.workloads.slo import LatencyRecord, baseline_p50, slo_violation_ratio

#: Default sweep scale (instances *per cluster*); what the
#: ``python -m repro.multicluster`` acceptance run uses.
QUICK_MULTICLUSTER_SCALE = ExperimentScale(
    name="multicluster-quick",
    num_instances=2,
    trace_duration_s=30.0,
    drain_timeout_s=30.0,
)

FULL_MULTICLUSTER_SCALE = ExperimentScale(
    name="multicluster-full",
    num_instances=4,
    trace_duration_s=90.0,
    drain_timeout_s=90.0,
)

MULTICLUSTER_SCALES: Dict[str, ExperimentScale] = {
    "quick": QUICK_MULTICLUSTER_SCALE,
    "full": FULL_MULTICLUSTER_SCALE,
}

#: Default grid axes: one session-heavy scenario (so locality routing has
#: real conversations to pin), one policy, two shards, every global
#: router, every placement policy.
DEFAULT_SCENARIOS: Tuple[str, ...] = ("steady-poisson",)
DEFAULT_POLICIES: Tuple[str, ...] = ("vllm",)
DEFAULT_CLUSTER_COUNTS: Tuple[int, ...] = (2,)

#: Admission settings used by every sweep cell (per cluster): tight enough
#: that bounded queues and shedding are exercised under bursts, loose
#: enough that steady-state cells behave like the plain dispatcher.
SWEEP_ADMISSION = AdmissionConfig(
    max_queue_depth=512,
    max_group_waiting=64,
    ttft_shed_s=60.0,
)

#: Default output location: the repository root, next to BENCH_results.json.
DEFAULT_OUTPUT = Path(__file__).resolve().parents[3] / "MULTICLUSTER_results.json"


@dataclasses.dataclass(frozen=True)
class MultiClusterCellResult:
    """Raw outcome of one grid cell, before SLO aggregation.

    ``latencies`` holds one ``(ttft, mean_tpot)`` pair per request so the
    aggregator can derive cross-cell SLO baselines without shipping full
    records between processes (same trick as the scenario/fleet sweeps).
    """

    scenario: str
    policy: str
    policy_name: str
    clusters: int
    router: str
    placement: str
    workload: str
    requests: int
    finished: int
    completion_ratio: float
    initial_groups: int
    summary: Dict[str, float]
    tier_stats: Dict[str, float]
    latencies: Tuple[Tuple[Optional[float], Optional[float]], ...]
    wall_s: float


@dataclasses.dataclass(frozen=True)
class TierRun:
    """One timed multicluster run: the system, its result, and context.

    ``system`` is the serial :class:`MultiClusterSystem` or, for runs the
    conservative protocol executed, a
    :class:`repro.parallel.executor.ParallelTierView` (duck-typed: the
    cell builders only read ``stats()``, ``initial_group_count()``,
    ``recovery_transient_s()`` and ``tracer``).  ``parallel`` carries the
    :class:`repro.parallel.executor.ParallelReport` when the run was
    parallel; ``parallel_fallback`` carries the ineligibility reason when
    parallel execution was requested but the cell ran serially.  Neither
    field enters cell payloads — documents are bit-identical across
    execution modes.
    """

    system: MultiClusterSystem
    result: MultiClusterResult
    workload_name: str
    initial_groups: int
    wall_s: float
    parallel: Optional[Any] = None
    parallel_fallback: Optional[str] = None


def tier_workload_scale(scale: ExperimentScale, num_clusters: int) -> ExperimentScale:
    """The tier's workload sizing convention, in one place.

    ``scale.num_instances`` sizes one shard; the workload is generated
    for ``num_instances × clusters`` so offered load scales with total
    capacity and the cluster-count axis compares shardings of the same
    deployment at equal utilisation.  The scenario sweep's
    ``--multicluster`` axis shares this helper, so the two documents
    stay comparable.
    """
    return dataclasses.replace(
        scale,
        name=f"{scale.name}-x{num_clusters}",
        num_instances=scale.num_instances * num_clusters,
    )


def run_tier(
    spec: ScenarioSpec,
    policy_key: str,
    config,
    scale: ExperimentScale,
    seed: int,
    trace: Union[bool, str] = False,
    on_tracer=None,
    on_system=None,
) -> TierRun:
    """Build the tier's workload, run ``config`` through it, and time it.

    ``config`` must carry a ``multicluster`` section; the workload is
    sized by :func:`tier_workload_scale`.  ``trace=True`` attaches one
    shared :class:`repro.trace.Tracer` across the tier and its shards
    (``trace="disabled"`` attaches it with recording off); ``on_tracer``
    receives the tracer right after it attaches.  ``on_system`` receives
    the constructed :class:`MultiClusterSystem` before the run starts —
    the hook the ``--alerts`` axis uses to attach an in-memory metrics
    monitor; it requires the serial path (callers wanting it must not
    request parallel execution).
    """
    workload_scale = tier_workload_scale(scale, config.multicluster.num_clusters)
    workload = spec.build_workload(workload_scale, seed)
    parallel_fallback: Optional[str] = None
    if on_system is not None and config.multicluster.execution == "parallel":
        raise ValueError("on_system requires serial execution")
    if config.multicluster.execution == "parallel":
        # Local import: repro.parallel imports this module's siblings.
        from repro.parallel import parallel_ineligibility, run_parallel

        reason = parallel_ineligibility(config, trace=bool(trace))
        if reason is None:
            start = time.perf_counter()
            outcome = run_parallel(config, policy_key, workload)
            wall_s = time.perf_counter() - start
            return TierRun(
                system=outcome.view,
                result=outcome.result,
                workload_name=workload.name,
                initial_groups=outcome.view.initial_group_count(),
                wall_s=wall_s,
                parallel=outcome.report,
            )
        parallel_fallback = reason
    start = time.perf_counter()
    system = MultiClusterSystem(config, lambda: make_policy(policy_key))
    if trace:
        tracer = system.attach_tracer(enabled=(trace != "disabled"))
        if on_tracer is not None:
            on_tracer(tracer)
    if on_system is not None:
        on_system(system)
    initial_groups = system.initial_group_count()
    result = system.run(workload)
    wall_s = time.perf_counter() - start
    return TierRun(
        system=system,
        result=result,
        workload_name=workload.name,
        initial_groups=initial_groups,
        wall_s=wall_s,
        parallel_fallback=parallel_fallback,
    )


def run_multicluster_cell(
    scenario: Union[str, ScenarioSpec],
    policy_key: str,
    cluster_count: int,
    router: str,
    placement: str,
    scale: ExperimentScale,
    seed: int = 42,
    execution: str = "serial",
) -> MultiClusterCellResult:
    """Run one scenario through one (policy, clusters, router, placement)
    combination; the in-process cell primitive.

    ``execution="parallel"`` requests the conservative parallel shard
    executor; ineligible cells (stateful routers, elastic autoscaling —
    which includes the whole committed default grid) transparently run
    serially, and either way the cell payload is bit-identical.
    """
    spec = scenario if isinstance(scenario, ScenarioSpec) else get_scenario(scenario)
    config = build_cell_config(spec, scale, seed=seed)
    config.multicluster = make_multicluster_config(
        num_clusters=cluster_count,
        global_router=router,
        placement=placement,
        admission=SWEEP_ADMISSION,
        execution=execution,
    )
    run = run_tier(spec, policy_key, config, scale, seed)
    result = run.result
    return MultiClusterCellResult(
        scenario=spec.name,
        policy=policy_key,
        policy_name=result.system_name,
        clusters=cluster_count,
        router=router,
        placement=placement,
        workload=run.workload_name,
        requests=result.submitted_requests,
        finished=result.finished_requests,
        completion_ratio=result.completion_ratio,
        initial_groups=run.initial_groups,
        summary=result.summary,
        tier_stats=run.system.stats(),
        latencies=tuple((r.ttft, r.mean_tpot) for r in result.records),
        wall_s=run.wall_s,
    )


def stream_cell_metrics(
    scenario: Union[str, ScenarioSpec],
    policy_key: str,
    cluster_count: int,
    router: str,
    placement: str,
    scale: ExperimentScale,
    seed: int,
    path,
) -> int:
    """Replay one cell inline with a live Prometheus metrics stream.

    Same construction as :func:`run_multicluster_cell`, but with a
    :class:`repro.metrics.MetricsMonitor` attached, streaming per-shard
    fleet gauges plus the tier-level counters (WAN bytes, faults, alive
    shards) to ``path``; returns the number of scrapes written.  This is
    what ``python -m repro.multicluster --metrics-out`` runs (uncached —
    the stream is the point, not the result document).
    """
    spec = scenario if isinstance(scenario, ScenarioSpec) else get_scenario(scenario)
    config = build_cell_config(spec, scale, seed=seed)
    config.multicluster = make_multicluster_config(
        num_clusters=cluster_count,
        global_router=router,
        placement=placement,
        admission=SWEEP_ADMISSION,
    )
    workload_scale = tier_workload_scale(scale, cluster_count)
    workload = spec.build_workload(workload_scale, seed)
    system = MultiClusterSystem(config, lambda: make_policy(policy_key))
    monitor = system.attach_metrics(path=path)
    system.run(workload)
    return monitor.scrapes


# ----------------------------------------------------------------------
# Sweep-engine adapter
# ----------------------------------------------------------------------
def run_multicluster_cell_payload(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """Sweep-engine runner: one multicluster cell as a JSON-able payload."""
    cell = run_multicluster_cell(
        params["scenario"],
        params["policy"],
        params["clusters"],
        params["router"],
        params["placement"],
        params["scale"],
        seed,
        execution=params.get("execution", "serial"),
    )
    return dataclasses.asdict(cell)


def multicluster_cell_task(
    spec: ScenarioSpec,
    policy: str,
    cluster_count: int,
    router: str,
    placement: str,
    scale: ExperimentScale,
    seed: int,
    execution: str = "serial",
) -> SweepTask:
    """Describe one multicluster grid cell as a cacheable sweep task."""
    mc = make_multicluster_config(
        num_clusters=cluster_count,
        global_router=router,
        placement=placement,
        admission=SWEEP_ADMISSION,
        execution=execution,
    )
    return SweepTask(
        runner="repro.multicluster.sweep:run_multicluster_cell_payload",
        params={
            "scenario": spec,
            "policy": policy,
            "clusters": cluster_count,
            "router": router,
            "placement": placement,
            "scale": scale,
            "execution": execution,
        },
        key={
            "kind": "multicluster-cell",
            "schema_version": SCHEMA_VERSION,
            "scenario": spec_fingerprint(spec),
            "policy": policy,
            # The full tier config, WAN parameters included: a changed
            # link model must invalidate cached cells.  ``execution`` is
            # deliberately left out: parallel cells are bit-identical to
            # serial by contract (tests/test_parallel.py enforces it), so
            # the two modes share cache entries.
            "multicluster": {
                **{
                    k: v
                    for k, v in dataclasses.asdict(mc).items()
                    if k not in ("admission", "execution")
                },
                "admission": dataclasses.asdict(mc.admission),
            },
            "scale": dataclasses.asdict(scale),
        },
        seed=seed,
        label=f"{spec.name}/{policy}/x{cluster_count}/{router}/{placement}",
    )


def _scenario_entries(
    spec: ScenarioSpec, cells: Sequence[Dict[str, Any]]
) -> List[Dict]:
    """Turn one scenario's cell payloads into schema entries with derived SLOs.

    The SLO reference point is the best cell's P50 (TTFT and TPOT
    independently) *within this scenario* across the whole multicluster
    grid, scaled by the scenario's ``slo_scale`` — the Figure 13
    convention with tier configurations standing in for policies.
    """
    records_by_cell = {
        index: [LatencyRecord(t, p) for t, p in cell["latencies"]]
        for index, cell in enumerate(cells)
    }
    best_ttft, best_tpot = baseline_p50(records_by_cell)
    ttft_slo_s = spec.slo_scale * best_ttft
    tpot_slo_s = spec.slo_scale * best_tpot
    entries = []
    for index, cell in enumerate(cells):
        violation = slo_violation_ratio(
            records_by_cell[index], ttft_slo_s=ttft_slo_s, tpot_slo_s=tpot_slo_s
        )
        stats = cell["tier_stats"]
        summary = cell["summary"]
        requests = cell["requests"]
        entries.append(
            {
                "scenario": cell["scenario"],
                "policy": cell["policy"],
                "policy_name": cell["policy_name"],
                "clusters": cell["clusters"],
                "router": cell["router"],
                "placement": cell["placement"],
                "workload": cell["workload"],
                "requests": requests,
                "local_routed": int(stats["local_routed"]),
                "remote_routed": int(stats["remote_routed"]),
                "cross_cluster_ratio": (
                    stats["remote_routed"] / requests if requests else 0.0
                ),
                "cross_cluster_bytes": stats["cross_cluster_bytes"],
                "admitted": int(stats["admitted"]),
                "shed": int(stats["shed"]),
                "queue_peak": int(stats["queue_peak"]),
                "scale_up_events": int(stats["scale_up_events"]),
                "remote_scale_ups": int(stats["remote_scale_ups"]),
                "scale_down_events": int(stats["scale_down_events"]),
                "initial_groups": cell["initial_groups"],
                "final_groups": int(stats["final_groups"]),
                "finished": cell["finished"],
                "completion_ratio": cell["completion_ratio"],
                "ttft_p50": summary["ttft_p50"],
                "ttft_p90": summary["ttft_p90"],
                "ttft_p99": summary["ttft_p99"],
                "tpot_p50": summary["tpot_p50"],
                "tpot_p90": summary["tpot_p90"],
                "tpot_p99": summary["tpot_p99"],
                "throughput_tokens_per_s": summary["throughput_tokens_per_s"],
                "slo_scale": spec.slo_scale,
                "ttft_slo_s": ttft_slo_s,
                "tpot_slo_s": tpot_slo_s,
                "slo_violation_ratio": violation,
                "slo_attainment": 1.0 - violation,
                "wall_s": cell["wall_s"],
            }
        )
    return entries


def run_multicluster_sweep(
    *,
    scenarios: Optional[Sequence[str]] = None,
    policies: Optional[Sequence[str]] = None,
    cluster_counts: Optional[Sequence[int]] = None,
    routers: Optional[Sequence[str]] = None,
    placements: Optional[Sequence[str]] = None,
    scale: ExperimentScale = QUICK_MULTICLUSTER_SCALE,
    seed: int = 42,
    max_workers: Optional[int] = None,
    use_cache: bool = False,
    cache_dir: Optional[Path] = None,
    execution: str = "serial",
) -> Dict:
    """Sweep the scenario × policy × clusters × router × placement grid.

    Args:
        scenarios: scenario names (default: :data:`DEFAULT_SCENARIOS`).
        policies: overload-policy keys (default: :data:`DEFAULT_POLICIES`).
        cluster_counts: cluster shard counts
            (default: :data:`DEFAULT_CLUSTER_COUNTS`).
        routers: global router strategies (default: every registered one).
        placements: placement policies (default: every registered one).
        scale: per-cluster size / trace length of every cell.
        seed: sweep seed; every cell derives its randomness from it.
        max_workers: worker processes; ``1`` runs cells inline (no pool),
            ``None`` sizes the pool to the grid (capped by the CPUs this
            process may use, cgroup limits included).
        use_cache: serve unchanged cells from the on-disk result cache
            and store fresh ones (the CLI enables this by default; the
            Python API defaults to off).
        cache_dir: cache location override (default ``.repro_cache/`` at
            the repository root, or ``$REPRO_CACHE_DIR``).
        execution: tier execution mode for every cell (``"serial"`` or
            ``"parallel"``; see :data:`repro.multicluster.config.EXECUTION_MODES`).
            Parallel cells are bit-identical to serial and ineligible
            cells fall back transparently, so the output document does
            not depend on this knob (``wall_s*`` aside).
    """
    names = list(scenarios) if scenarios is not None else list(DEFAULT_SCENARIOS)
    policy_keys = list(policies) if policies is not None else list(DEFAULT_POLICIES)
    counts = (
        [int(c) for c in cluster_counts]
        if cluster_counts is not None
        else list(DEFAULT_CLUSTER_COUNTS)
    )
    router_names = list(routers) if routers is not None else list_global_routers()
    placement_names = list(placements) if placements is not None else list_placements()
    unknown = [n for n in names if n not in list_scenarios()]
    if unknown:
        raise KeyError(f"unknown scenarios {unknown}; known: {', '.join(list_scenarios())}")
    unknown = [r for r in router_names if r not in list_global_routers()]
    if unknown:
        raise KeyError(
            f"unknown global routers {unknown}; known: {', '.join(list_global_routers())}"
        )
    unknown = [p for p in placement_names if p not in list_placements()]
    if unknown:
        raise KeyError(
            f"unknown placement policies {unknown}; known: {', '.join(list_placements())}"
        )
    if any(count < 1 for count in counts):
        raise ValueError("cluster counts must be >= 1")
    if not names or not policy_keys or not counts or not router_names or not placement_names:
        raise ValueError("the multicluster sweep needs at least one value on every axis")
    if max_workers is not None and max_workers < 1:
        raise ValueError("max_workers must be >= 1")
    specs = [get_scenario(name) for name in names]
    tasks = [
        multicluster_cell_task(
            spec, policy, count, router, placement, scale, seed, execution
        )
        for spec in specs
        for policy in policy_keys
        for count in counts
        for router in router_names
        for placement in placement_names
    ]

    cache = ResultCache(cache_dir) if use_cache else None
    start = time.perf_counter()
    outcome = run_tasks(tasks, max_workers=max_workers, cache=cache)
    wall_s_total = time.perf_counter() - start

    by_scenario: Dict[str, List[Dict[str, Any]]] = {name: [] for name in names}
    for cell in outcome.results:
        by_scenario[cell["scenario"]].append(cell)
    entries: List[Dict] = []
    for spec in specs:
        entries.extend(_scenario_entries(spec, by_scenario[spec.name]))

    return {
        "schema_version": SCHEMA_VERSION,
        "repro_version": __version__,
        "seed": seed,
        "scale": {
            "name": scale.name,
            "num_instances": scale.num_instances,
            "trace_duration_s": scale.trace_duration_s,
            "drain_timeout_s": scale.drain_timeout_s,
        },
        "scenarios": names,
        "policies": policy_keys,
        "cluster_counts": counts,
        "routers": router_names,
        "placements": placement_names,
        "entries": entries,
        "cache_hits": outcome.cache_hits,
        "cache_misses": outcome.cache_misses,
        "wall_s_total": wall_s_total,
    }


def write_results(document: Dict, path: Optional[Path] = None) -> Path:
    """Write the document to ``MULTICLUSTER_results.json`` (repo root by default)."""
    target = Path(path) if path is not None else DEFAULT_OUTPUT
    target.write_text(json.dumps(document, indent=2, sort_keys=False) + "\n")
    return target


def format_results(document: Dict) -> str:
    """Human-readable table of a multicluster sweep document."""
    scale = document["scale"]
    lines = [
        f"repro {document['repro_version']} · scale {scale['name']} "
        f"({scale['num_instances']} instances/cluster, "
        f"{scale['trace_duration_s']:.0f}s trace) · seed {document['seed']} "
        f"· {len(document['entries'])} cells in {document['wall_s_total']:.1f}s",
        f"{'scenario':<16} {'policy':<8} {'cl':>2} {'router':<21} {'placement':<20} "
        f"{'reqs':>5} {'rem':>5} {'shed':>5} {'up':>3} {'rup':>3} "
        f"{'ttft_p50':>9} {'slo_att':>8}",
    ]
    for entry in document["entries"]:
        lines.append(
            f"{entry['scenario']:<16} {entry['policy']:<8} {entry['clusters']:>2d} "
            f"{entry['router']:<21} {entry['placement']:<20} "
            f"{entry['requests']:>5d} {entry['remote_routed']:>5d} "
            f"{entry['shed']:>5d} {entry['scale_up_events']:>3d} "
            f"{entry['remote_scale_ups']:>3d} {entry['ttft_p50']:>9.3f} "
            f"{entry['slo_attainment']:>8.2f}"
        )
    return "\n".join(lines)
