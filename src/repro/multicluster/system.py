"""Fleet-of-fleets serving system: N clusters behind a global router.

:class:`MultiClusterSystem` instantiates ``num_clusters`` complete
:class:`~repro.serving.system.ClusterServingSystem` shards — each with its
own :class:`~repro.fleet.controller.FleetController` (admission queue,
intra-cluster router, autoscaler) — on **one shared deterministic event
loop**, so all shards and the WAN fabric between them simulate in
lock-step.  Three tier-level mechanisms sit on top:

* a **global router** (:mod:`repro.multicluster.routing`) picks the
  cluster for every arrival.  Each request has a deterministic *home*
  cluster (stable session hash); dispatching anywhere else is *remote*
  and the request's context first crosses the inter-cluster fabric
  (:mod:`repro.multicluster.fabric`), paying WAN latency and sharing WAN
  bandwidth — the modeled cost of ignoring locality;
* a **placement policy** (:mod:`repro.multicluster.placement`) runs on
  the multicluster controller tick: when a cluster's autoscaler is
  triggered but out of local spares, a sibling chosen by the policy
  absorbs the scale-up (counted as ``remote_scale_ups``);
* the **inter-cluster fabric** carries the remote-dispatch KV traffic
  and accounts every byte, so sweeps can compare routing strategies by
  the cross-cluster traffic they generate.

Determinism matches the single-cluster system: all shards share one
event loop, per-shard RNG streams derive from distinct seeds, and the
whole tier is a pure function of ``(config, workload, seed)``.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional

from repro.cluster.network import InterClusterLinkSpec
from repro.engine.metrics import RequestRecord, percentile
from repro.engine.request import Request
from repro.fleet.config import make_fleet_config
from repro.models.memory import kv_bytes_per_token
from repro.multicluster.fabric import InterClusterFabric
from repro.multicluster.placement import make_placement
from repro.multicluster.routing import home_cluster_index, make_global_router
from repro.policies.base import OverloadPolicy
from repro.serving.config import ServingConfig
from repro.serving.system import ClusterServingSystem
from repro.simulation.event_loop import EventLoop
from repro.simulation.process import PeriodicProcess
from repro.workloads.trace import Workload

#: Builds one fresh policy instance per cluster shard (policies attach to
#: exactly one serving system, so shards cannot share an instance).
PolicyFactory = Callable[[], OverloadPolicy]


class ClusterHandle:
    """The slice of one cluster shard the tier-level policies read.

    Global routers and placement policies operate on handles, never on
    the serving systems directly — the handle surface (load, topology,
    economics) is the contract new strategies can rely on.
    """

    def __init__(self, index: int, system: Optional[ClusterServingSystem]) -> None:
        self.index = index
        self.system = system
        #: cleared by a chaos ``cluster_outage``; dead shards are invisible
        #: to the global router and the placement tick.
        self.alive = True
        self._cost_per_token: Optional[float] = None

    # -- load ----------------------------------------------------------
    def routable_groups(self):
        return self.system.fleet.routable_groups()

    def routable_group_count(self) -> int:
        return len(self.routable_groups())

    def backlog(self) -> int:
        """Queued admissions plus every routable group's scheduler backlog.

        Delegates to the shard's fleet controller — the same load view its
        own autoscaler triggers on, so tier and shard never disagree.
        """
        return self.system.fleet.backlog()

    def kv_ratio(self) -> float:
        """Cluster KV demand / capacity over the routable groups."""
        return self.system.fleet.kv_ratio()

    # -- capacity ------------------------------------------------------
    def spare_instance_count(self) -> int:
        return len(self.system.fleet.autoscaler.spare_instances)

    # -- economics -----------------------------------------------------
    def cost_per_token(self) -> float:
        """Marginal execution cost (seconds/token) of this cluster's GPUs.

        Fitted once, lazily, from the shard's roofline latency model via
        the paper's batch cost model (:mod:`repro.core.cost_model`): the
        Eq. 1 cost of a 1024-token prefill divided by its length.  On
        heterogeneous fleets this ranks clusters by hardware speed; on
        homogeneous ones every shard ties and callers fall back to index
        order.
        """
        if self._cost_per_token is None:
            # Local import: core.cost_model pulls in numpy + the engine,
            # which router/placement unit tests with stub handles never need.
            from repro.core.cost_model import fit_from_latency_model

            model = fit_from_latency_model(self.system.instances[0].latency)
            self._cost_per_token = model.chunk_cost(0, 1024) / 1024.0
        return self._cost_per_token

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ClusterHandle(index={self.index}, groups={self.routable_group_count()})"


@dataclasses.dataclass
class MultiClusterResult:
    """Outcome of replaying one workload on a multicluster system."""

    system_name: str
    workload_name: str
    records: List[RequestRecord]
    duration_s: float
    submitted_requests: int
    finished_requests: int
    summary: Dict[str, float]
    cluster_stats: List[Dict[str, float]]

    @property
    def completion_ratio(self) -> float:
        if self.submitted_requests == 0:
            return 1.0
        return self.finished_requests / self.submitted_requests


def summarize_records(
    records: List[RequestRecord], throughput: float
) -> Dict[str, float]:
    """Tier-level summary over combined per-request records.

    Percentiles are computed over the union of every shard's records;
    ``throughput`` is the sum of the shards' bucket-mean token rates (the
    single-cluster definition, summed — callers must add shard terms in
    shard-index order so serial and parallel assembly agree bit-for-bit).
    Module-level so the parallel shard executor (:mod:`repro.parallel`)
    can assemble the identical summary from worker-returned records.
    """
    ttfts = [r.ttft for r in records if r.ttft is not None]
    tpots = [r.mean_tpot for r in records if r.mean_tpot is not None]
    return {
        "requests": float(len(records)),
        "finished": float(sum(1 for r in records if r.finished)),
        "ttft_p50": percentile(ttfts, 50),
        "ttft_p90": percentile(ttfts, 90),
        "ttft_p99": percentile(ttfts, 99),
        "tpot_p50": percentile(tpots, 50),
        "tpot_p90": percentile(tpots, 90),
        "tpot_p99": percentile(tpots, 99),
        "throughput_tokens_per_s": throughput,
    }


class MultiClusterSystem:
    """N cluster shards, a global router, placement, and a WAN fabric."""

    def __init__(
        self, config: ServingConfig, policy_factory: Optional[PolicyFactory]
    ) -> None:
        # ``policy_factory=None`` builds the tier in *plan* mode: handles
        # are index-only stubs with no serving systems behind them, so the
        # routing/fabric layer can be replayed standalone.  The parallel
        # executor's dispatch planner uses this; every other caller passes
        # a real factory.
        if config.multicluster is None:
            raise ValueError("ServingConfig.multicluster must be set")
        self.config = config
        self.mc = config.multicluster
        self.loop = EventLoop()
        self.fabric = InterClusterFabric(
            self.loop,
            self.mc.num_clusters,
            InterClusterLinkSpec(
                bandwidth=self.mc.wan_bandwidth, latency_s=self.mc.wan_latency_s
            ),
        )
        self.router = make_global_router(
            self.mc.global_router,
            seed=config.seed,
            spill_queue_depth=self.mc.spill_queue_depth,
        )
        self.placement = make_placement(self.mc.placement)
        fleet = make_fleet_config(
            router=self.mc.cluster_router,
            autoscaler=self.mc.cluster_autoscaler,
            admission=self.mc.admission,
            tick_interval_s=self.mc.tick_interval_s,
        )
        self._fleet_config = fleet
        self.handles: List[ClusterHandle] = []
        for index in range(self.mc.num_clusters):
            if policy_factory is None:
                self.handles.append(ClusterHandle(index, None))
                continue
            # Every shard is a full serving system on the shared loop, with
            # its own RNG streams (distinct seed offset per shard) and its
            # own fleet controller built from the tier's fleet settings.
            system = ClusterServingSystem(
                self.shard_config(index), policy_factory(), loop=self.loop
            )
            self.handles.append(ClusterHandle(index, system))
        self._kv_token_bytes = kv_bytes_per_token(config.model)
        self._tick_process = PeriodicProcess(
            self.loop,
            self.mc.tick_interval_s,
            self._tick,
            name="multicluster-controller",
        )

        self.local_routed = 0
        self.remote_routed = 0
        self.remote_scale_ups = 0
        self._all_requests: List[Request] = []
        #: requests currently crossing the WAN (stranded ones are recorded
        #: as unfinished when the horizon ends mid-transfer).
        self._in_flight: Dict[int, Request] = {}

        # -- chaos / fault accounting ----------------------------------
        #: arrivals whose home cluster was dead when they arrived.
        self.rerouted = 0
        #: requests dropped because of a fault (sticky displaced requests,
        #: WAN deliveries to a cluster that died mid-flight, arrivals with
        #: no alive cluster left).
        self.lost_to_fault = 0
        #: sessions adopted by a sibling after their home died (migrate).
        self.migrated_sessions = 0
        #: follow-up requests served locally at an adopted cluster.
        self.migration_hits = 0
        #: WAN bytes of one-time session moves (migrate policy).
        self.migration_bytes = 0.0
        #: WAN bytes of per-request context dispatch (healthy remote
        #: dispatch plus sticky repeated hops).
        self.dispatch_bytes = 0.0
        self.instance_kills = 0
        self.cluster_outages = 0
        self.wan_degrades = 0
        #: simulation times at which faults fired (metrics/report).
        self.fault_times: List[float] = []
        #: session key -> adopting cluster index (migrate policy).
        self._session_adoptions: Dict[str, int] = {}
        #: request_id -> time of the fault that displaced it.
        self._displacements: Dict[int, float] = {}
        #: fault-lost requests owned by the tier (not by any shard) —
        #: recorded as unfinished when the run ends.
        self._lost_requests: List[Request] = []
        #: armed from ``config.chaos`` by :meth:`run`.
        self.chaos = None
        #: optional live-metrics stream (see :meth:`attach_metrics`).
        self.metrics_monitor = None
        #: per-request span recorder (``repro.trace``); ``None`` when off.
        self.tracer = None

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def shard_config(self, index: int) -> ServingConfig:
        """The ServingConfig one shard is built from (shared with the
        parallel executor, which must construct bit-identical shards in
        worker processes)."""
        return dataclasses.replace(
            self.config,
            multicluster=None,
            fleet=self._fleet_config,
            seed=self.config.seed + 1 + index,
        )

    @property
    def systems(self) -> List[ClusterServingSystem]:
        return [handle.system for handle in self.handles]

    def initial_group_count(self) -> int:
        return sum(len(system.groups) for system in self.systems)

    def home_cluster(self, request: Request) -> int:
        return home_cluster_index(request, self.mc.num_clusters)

    @property
    def alive_handles(self) -> List[ClusterHandle]:
        return [handle for handle in self.handles if handle.alive]

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def submit(self, request: Request) -> None:
        """Route an arriving request to a cluster (now, or after the WAN)."""
        self._all_requests.append(request)
        if self.tracer is not None:
            self.tracer.on_submit(request)
        self._route(request)

    def _dispatch(self, handle: ClusterHandle, request: Request) -> None:
        """Hand a routed request to its shard.

        Every tier-to-shard handoff funnels through here — the healthy
        local/remote paths, migration adoption, and WAN delivery — so the
        parallel executor's planner can override this single method to
        record ``(time, shard, request)`` dispatches instead of executing
        them.
        """
        handle.system.submit(request)

    def _route(self, request: Request) -> None:
        alive = self.alive_handles
        if not alive:
            self._lose(request)
            return
        home = self.home_cluster(request)
        if not self.handles[home].alive:
            # The home cluster is down: the request cannot follow the
            # healthy path.  What happens next is the session-migration
            # policy's call (this is the axis chaos sweeps compare).
            self.rerouted += 1
            if self.mc.session_migration == "migrate":
                self._migrate_submit(request)
            else:
                # Sticky: route to an alive sibling, but the session stays
                # homed on the dead cluster — every turn pays a fresh WAN
                # context transfer (sourced from the home site's durable
                # session store).
                target = self.router.route(request, alive)
                if self.tracer is not None:
                    self.tracer.on_route(
                        request, f"cluster{target.index}", scope=self.router.name
                    )
                size = float(request.prompt_tokens * self._kv_token_bytes)
                self.dispatch_bytes += size
                self._wan_submit(request, home, target, size)
            return
        target = self.router.route(request, alive)
        if self.tracer is not None:
            self.tracer.on_route(
                request, f"cluster{target.index}", scope=self.router.name
            )
        if target.index == home:
            self.local_routed += 1
            self._dispatch(target, request)
            return
        # Remote dispatch: the session's context (conservatively, the full
        # prompt's worth of KV — multi-turn prompts carry their history)
        # must cross from the home cluster before serving can start.
        self.remote_routed += 1
        size = float(request.prompt_tokens * self._kv_token_bytes)
        self.dispatch_bytes += size
        self._wan_submit(request, home, target, size)

    def _migrate_submit(self, request: Request) -> None:
        """Serve a request whose home cluster is down, migrate-style.

        The first affected request of a session moves the session context
        over the WAN once and the session is *adopted* by the target
        cluster; later requests of the same session are served there
        locally — the move is amortised over the session's lifetime.
        """
        from repro.fleet.routing import SessionAffinityRouter

        alive = self.alive_handles
        key = SessionAffinityRouter.session_key(request)
        adopted = self._session_adoptions.get(key)
        if adopted is not None and self.handles[adopted].alive:
            self.migration_hits += 1
            self._dispatch(self.handles[adopted], request)
            return
        home = self.home_cluster(request)
        if self.handles[home].alive:
            # A displaced request whose session is homed on an *alive*
            # cluster (it had been remote-dispatched to the dead one):
            # the home still holds the session context, go back local.
            self._dispatch(self.handles[home], request)
            return
        target = self.router.route(request, alive)
        self._session_adoptions[key] = target.index
        self.migrated_sessions += 1
        size = float(request.prompt_tokens * self._kv_token_bytes)
        self.migration_bytes += size
        self._wan_submit(request, home, target, size, tag="migrate")

    def _wan_submit(
        self,
        request: Request,
        source: int,
        target: ClusterHandle,
        size: float,
        tag: str = "kv",
    ) -> None:
        self._in_flight[request.request_id] = request
        if self.tracer is not None:
            self.tracer.on_wan_start(
                request, f"cluster{source}", f"cluster{target.index}"
            )
        self.fabric.transfer(
            source,
            target.index,
            size,
            on_complete=lambda _t, r=request, h=target: self._deliver(r, h),
            tag=f"{tag}-req{request.request_id}",
        )

    def _deliver(self, request: Request, handle: ClusterHandle) -> None:
        self._in_flight.pop(request.request_id, None)
        if self.tracer is not None:
            self.tracer.on_wan_end(request)
        if not handle.alive:
            # The destination died while the context was crossing the WAN.
            if self.mc.session_migration == "migrate" and self.alive_handles:
                self._migrate_submit(request)
            else:
                self._lose(request)
            return
        self._dispatch(handle, request)

    def _lose(self, request: Request) -> None:
        self.lost_to_fault += 1
        self._lost_requests.append(request)
        if self.tracer is not None:
            self.tracer.on_lost(request)

    def submit_at(self, request: Request, time: float) -> None:
        """Schedule a request arrival at absolute simulation time ``time``."""
        self.loop.schedule_at(time, lambda r=request: self.submit(r), name="mc-arrival")

    # ------------------------------------------------------------------
    # Fault injection (driven by repro.chaos.ChaosInjector)
    # ------------------------------------------------------------------
    def fail_cluster_instance(
        self, cluster: int, instance: int, now: Optional[float] = None
    ) -> None:
        """Kill one instance of one shard; the shard recovers in place.

        Delegates to the shard's :class:`FaultToleranceManager` (survivor
        restore + displaced re-dispatch stay *inside* the cluster), and
        tracks the displaced requests for the recovery-transient metric.
        """
        if now is None:
            now = self.loop.now
        handle = self.handles[cluster]
        if not handle.alive:
            return  # the whole cluster is already down
        system = handle.system
        victim = system.instances[instance]
        if victim.failed:
            return
        spares = system.fleet.autoscaler.spare_instances
        if victim in spares:
            spares.remove(victim)
        if system.fault_manager is None:
            from repro.core.fault_tolerance import FaultToleranceManager

            system.fault_manager = FaultToleranceManager(system)
        report = system.fault_manager.fail_instance(victim, now)
        self.instance_kills += 1
        self.fault_times.append(now)
        for request_id in report.displaced_request_ids:
            self._displacements.setdefault(request_id, now)

    def fail_cluster(self, index: int, now: Optional[float] = None) -> None:
        """Take a whole cluster shard down, permanently.

        Every queued and running request of the shard is displaced.  Under
        the ``migrate`` session policy the displaced requests are re-homed
        on alive siblings (paying the amortised WAN session move); under
        ``sticky`` they are lost to the fault.  Future arrivals homed on
        the dead shard go through the same policy fork in :meth:`_route`.
        """
        if now is None:
            now = self.loop.now
        handle = self.handles[index]
        if not handle.alive:
            return
        handle.alive = False
        self.cluster_outages += 1
        self.fault_times.append(now)
        system = handle.system

        # Collect every request the shard was holding, deterministically.
        displaced = system.fleet.admission.evict_all()
        for group in list(system.groups):
            for request in list(group.scheduler.running):
                group.scheduler.remove_request(request)
                request.reset_for_recompute()
                displaced.append(request)
            for request in sorted(
                list(group.scheduler.waiting),
                key=lambda r: (r.arrival_time, r.request_id),
            ):
                group.scheduler.remove_request(request)
                displaced.append(request)
            system.retire_group(group)
        system.fleet.autoscaler.spare_instances.clear()
        for instance in system.instances:
            instance.failed = True
        displaced.sort(key=lambda r: (r.arrival_time, r.request_id))
        for request in displaced:
            self._displacements.setdefault(request.request_id, now)
        system.metrics.mark_event(
            now, "cluster_outage", cluster=index, displaced=len(displaced)
        )

        if self.mc.session_migration == "migrate" and self.alive_handles:
            for request in displaced:
                # The sibling that adopts the request records it from here
                # on; keeping it in the dead shard's books would double
                # count it as unfinished.
                system.forget_request(request)
                self._migrate_submit(request)
        else:
            # Sticky: the displaced requests die with their cluster.  They
            # stay in the dead shard's accounting, so finalisation records
            # them as unfinished.
            self.lost_to_fault += len(displaced)

    def degrade_wan(
        self,
        bandwidth_factor: float,
        latency_factor: float = 1.0,
        now: Optional[float] = None,
    ) -> None:
        """Degrade every WAN uplink (brown-out), relative to spec."""
        if now is None:
            now = self.loop.now
        self.fabric.degrade(bandwidth_factor, latency_factor)
        self.wan_degrades += 1
        self.fault_times.append(now)
        self.handles[0].system.metrics.mark_event(
            now,
            "wan_degrade",
            bandwidth_factor=bandwidth_factor,
            latency_factor=latency_factor,
        )

    def restore_wan(self) -> None:
        """Lift a WAN degradation (factors are absolute, not cumulative)."""
        self.fabric.restore()

    # ------------------------------------------------------------------
    # Fault reporting
    # ------------------------------------------------------------------
    def displaced_pending(self) -> int:
        """Displaced requests that have not finished yet (live metric)."""
        if not self._displacements:
            return 0
        finished = 0
        for system in self.systems:
            for record in system.metrics.records:
                if record.finished and record.request_id in self._displacements:
                    finished += 1
        return len(self._displacements) - finished

    def recovery_transient_s(self, records: List[RequestRecord]) -> float:
        """Worst-case time from a fault to its displaced requests finishing.

        For every displaced request: ``finish_time - fault_time`` when it
        finished, ``horizon - fault_time`` when it never did (a lost
        request never recovers — the transient extends to the end of the
        run).  The maximum over all displaced requests is the recovery
        transient; ``0.0`` when no fault displaced anything.
        """
        if not self._displacements:
            return 0.0
        horizon = self.loop.now
        worst = 0.0
        for record in records:
            fault_time = self._displacements.get(record.request_id)
            if fault_time is None:
                continue
            if record.finished and record.finish_time is not None:
                end = record.finish_time
            else:
                end = horizon
            worst = max(worst, end - fault_time)
        return worst

    # ------------------------------------------------------------------
    # Metrics streaming
    # ------------------------------------------------------------------
    def attach_metrics(
        self,
        *,
        path=None,
        callback=None,
        interval_s: Optional[float] = None,
        registry=None,
    ):
        """Install a :class:`repro.metrics.MetricsMonitor` over the tier.

        Streams per-cluster queue/instance gauges plus tier-level fault
        counters in Prometheus text format; :meth:`run` starts and stops
        the monitor around the replay.
        """
        from repro.metrics import MetricsMonitor, tier_metrics_source

        monitor = MetricsMonitor(
            self.loop,
            interval_s=interval_s or self.mc.tick_interval_s,
            path=path,
            callback=callback,
            registry=registry,
        )
        monitor.add_source(tier_metrics_source(self))
        self.metrics_monitor = monitor
        return monitor

    def attach_tracer(self, tracer=None, *, enabled: bool = True):
        """Install one shared per-request :class:`repro.trace.Tracer`.

        The tier and every cluster shard record into the same tracer, so a
        request's WAN hop, admission wait and execution all land in one
        span tree.  Shard tracks are namespaced ``cluster{i}/group{g}``.
        """
        from repro.trace import Tracer

        if tracer is None:
            tracer = Tracer(self.loop, enabled=enabled)
        self.tracer = tracer
        if tracer.enabled:
            self.fabric.network.tracer = tracer
        for handle in self.handles:
            handle.system._trace_cluster = str(handle.index)
            handle.system.attach_tracer(tracer)
        return tracer

    # ------------------------------------------------------------------
    # Placement tick
    # ------------------------------------------------------------------
    def _tick(self, now: float) -> None:
        """Redirect scale-ups from spare-less pressured clusters to donors."""
        for handle in self.handles:
            if not handle.alive:
                continue
            scaler = handle.system.fleet.autoscaler
            if not scaler.config.enabled or scaler.has_spare:
                continue  # local spares: the shard's own autoscaler acts
            if not scaler.wants_capacity(now):
                continue
            candidates = [
                c
                for c in self.handles
                if c is not handle and c.alive and c.system.fleet.autoscaler.has_spare
            ]
            donor = self.placement.place(handle, candidates)
            if donor is not None and donor.system.fleet.autoscaler.force_scale_up(now):
                self.remote_scale_ups += 1
                handle.system.metrics.mark_event(
                    now,
                    "multicluster-remote-scale-up",
                    pressured_cluster=handle.index,
                    donor_cluster=donor.index,
                    placement=self.placement.name,
                )

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(
        self,
        workload: Workload,
        *,
        until: Optional[float] = None,
        drain: bool = True,
    ) -> MultiClusterResult:
        """Replay ``workload`` through the tier and aggregate the metrics."""
        requests = workload.to_engine_requests()
        for request in requests:
            self.submit_at(request, request.arrival_time)
        for system in self.systems:
            system.monitor.start()
            system.fleet.start()
        self._tick_process.start()
        horizon = until
        if horizon is None:
            horizon = workload.duration + (self.config.drain_timeout_s if drain else 0.0)
        if self.config.chaos is not None and self.config.chaos:
            # Local import: repro.chaos imports this module's siblings.
            from repro.chaos.injector import ChaosInjector

            self.chaos = ChaosInjector(self, self.config.chaos)
            self.chaos.arm(horizon)
        if self.metrics_monitor is not None:
            self.metrics_monitor.start()
        self.loop.run(until=horizon)
        self._tick_process.stop()
        if self.metrics_monitor is not None:
            self.metrics_monitor.stop()
        records: List[RequestRecord] = []
        for system in self.systems:
            system.monitor.stop()
            system.fleet.stop()
            system._finalize_unfinished()
            records.extend(system.metrics.records)
        # Requests the horizon caught mid-WAN never reached a shard; they
        # still count as submitted-but-unfinished.
        for request in self._in_flight.values():
            records.append(RequestRecord.from_request(request))
        # Requests a fault orphaned entirely (sticky in-fabric losses,
        # arrivals with no alive cluster) are the tier's to record.
        for request in self._lost_requests:
            records.append(RequestRecord.from_request(request))
        finished = sum(1 for record in records if record.finished)
        return MultiClusterResult(
            system_name=self.systems[0].policy.name,
            workload_name=workload.name,
            records=records,
            duration_s=self.loop.now,
            submitted_requests=len(requests),
            finished_requests=finished,
            summary=self._summary(records),
            cluster_stats=[handle.system.fleet.stats() for handle in self.handles],
        )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def _summary(self, records: List[RequestRecord]) -> Dict[str, float]:
        """Tier-level summary (see :func:`summarize_records`)."""
        throughput = sum(
            s.metrics.throughput.mean() / s.metrics.timeline_window_s
            for s in self.systems
        )
        return summarize_records(records, throughput)

    def stats(self) -> Dict[str, float]:
        """Tier counters plus the shard fleet counters, aggregated."""
        per_cluster = [handle.system.fleet.stats() for handle in self.handles]
        return {
            "admitted": sum(s["admitted"] for s in per_cluster),
            "shed": sum(s["shed"] for s in per_cluster),
            "queue_peak": max(s["queue_peak"] for s in per_cluster),
            "scale_up_events": sum(s["scale_up_events"] for s in per_cluster),
            "scale_down_events": sum(s["scale_down_events"] for s in per_cluster),
            "final_groups": sum(s["final_groups"] for s in per_cluster),
            "local_routed": float(self.local_routed),
            "remote_routed": float(self.remote_routed),
            "remote_scale_ups": float(self.remote_scale_ups),
            "cross_cluster_bytes": float(self.fabric.bytes_sent),
            "cross_cluster_transfers": float(self.fabric.transfers),
            "rerouted": float(self.rerouted),
            "lost_to_fault": float(self.lost_to_fault),
            "migrated_sessions": float(self.migrated_sessions),
            "migration_hits": float(self.migration_hits),
            "migration_bytes": float(self.migration_bytes),
            "dispatch_bytes": float(self.dispatch_bytes),
            "instance_kills": float(self.instance_kills),
            "cluster_outages": float(self.cluster_outages),
            "wan_degrades": float(self.wan_degrades),
            "displaced": float(len(self._displacements)),
        }
