"""Fleet-of-fleets serving system: N clusters behind a global router.

:class:`MultiClusterSystem` instantiates ``num_clusters`` complete
:class:`~repro.serving.system.ClusterServingSystem` shards — each with its
own :class:`~repro.fleet.controller.FleetController` (admission queue,
intra-cluster router, autoscaler) — on **one shared deterministic event
loop**, so all shards and the WAN fabric between them simulate in
lock-step.  Three tier-level mechanisms sit on top:

* a **global router** (:mod:`repro.multicluster.routing`) picks the
  cluster for every arrival.  Each request has a deterministic *home*
  cluster (stable session hash); dispatching anywhere else is *remote*
  and the request's context first crosses the inter-cluster fabric
  (:mod:`repro.multicluster.fabric`), paying WAN latency and sharing WAN
  bandwidth — the modeled cost of ignoring locality;
* a **placement policy** (:mod:`repro.multicluster.placement`) runs on
  the multicluster controller tick: when a cluster's autoscaler is
  triggered but out of local spares, a sibling chosen by the policy
  absorbs the scale-up (counted as ``remote_scale_ups``);
* the **inter-cluster fabric** carries the remote-dispatch KV traffic
  and accounts every byte, so sweeps can compare routing strategies by
  the cross-cluster traffic they generate.

Determinism matches the single-cluster system: all shards share one
event loop, per-shard RNG streams derive from distinct seeds, and the
whole tier is a pure function of ``(config, workload, seed)``.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional

from repro.cluster.network import InterClusterLinkSpec
from repro.engine.metrics import RequestRecord, percentile
from repro.engine.request import Request
from repro.fleet.config import make_fleet_config
from repro.models.memory import kv_bytes_per_token
from repro.multicluster.fabric import InterClusterFabric
from repro.multicluster.placement import make_placement
from repro.multicluster.routing import home_cluster_index, make_global_router
from repro.policies.base import OverloadPolicy
from repro.serving.config import ServingConfig
from repro.serving.system import ClusterServingSystem
from repro.simulation.event_loop import EventLoop
from repro.simulation.process import PeriodicProcess
from repro.workloads.trace import Workload

#: Builds one fresh policy instance per cluster shard (policies attach to
#: exactly one serving system, so shards cannot share an instance).
PolicyFactory = Callable[[], OverloadPolicy]


class ClusterHandle:
    """The slice of one cluster shard the tier-level policies read.

    Global routers and placement policies operate on handles, never on
    the serving systems directly — the handle surface (load, topology,
    economics) is the contract new strategies can rely on.
    """

    def __init__(self, index: int, system: ClusterServingSystem) -> None:
        self.index = index
        self.system = system
        self._cost_per_token: Optional[float] = None

    # -- load ----------------------------------------------------------
    def routable_groups(self):
        return self.system.fleet.routable_groups()

    def routable_group_count(self) -> int:
        return len(self.routable_groups())

    def backlog(self) -> int:
        """Queued admissions plus every routable group's scheduler backlog.

        Delegates to the shard's fleet controller — the same load view its
        own autoscaler triggers on, so tier and shard never disagree.
        """
        return self.system.fleet.backlog()

    def kv_ratio(self) -> float:
        """Cluster KV demand / capacity over the routable groups."""
        return self.system.fleet.kv_ratio()

    # -- capacity ------------------------------------------------------
    def spare_instance_count(self) -> int:
        return len(self.system.fleet.autoscaler.spare_instances)

    # -- economics -----------------------------------------------------
    def cost_per_token(self) -> float:
        """Marginal execution cost (seconds/token) of this cluster's GPUs.

        Fitted once, lazily, from the shard's roofline latency model via
        the paper's batch cost model (:mod:`repro.core.cost_model`): the
        Eq. 1 cost of a 1024-token prefill divided by its length.  On
        heterogeneous fleets this ranks clusters by hardware speed; on
        homogeneous ones every shard ties and callers fall back to index
        order.
        """
        if self._cost_per_token is None:
            # Local import: core.cost_model pulls in numpy + the engine,
            # which router/placement unit tests with stub handles never need.
            from repro.core.cost_model import fit_from_latency_model

            model = fit_from_latency_model(self.system.instances[0].latency)
            self._cost_per_token = model.chunk_cost(0, 1024) / 1024.0
        return self._cost_per_token

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ClusterHandle(index={self.index}, groups={self.routable_group_count()})"


@dataclasses.dataclass
class MultiClusterResult:
    """Outcome of replaying one workload on a multicluster system."""

    system_name: str
    workload_name: str
    records: List[RequestRecord]
    duration_s: float
    submitted_requests: int
    finished_requests: int
    summary: Dict[str, float]
    cluster_stats: List[Dict[str, float]]

    @property
    def completion_ratio(self) -> float:
        if self.submitted_requests == 0:
            return 1.0
        return self.finished_requests / self.submitted_requests


class MultiClusterSystem:
    """N cluster shards, a global router, placement, and a WAN fabric."""

    def __init__(self, config: ServingConfig, policy_factory: PolicyFactory) -> None:
        if config.multicluster is None:
            raise ValueError("ServingConfig.multicluster must be set")
        self.config = config
        self.mc = config.multicluster
        self.loop = EventLoop()
        self.fabric = InterClusterFabric(
            self.loop,
            self.mc.num_clusters,
            InterClusterLinkSpec(
                bandwidth=self.mc.wan_bandwidth, latency_s=self.mc.wan_latency_s
            ),
        )
        self.router = make_global_router(
            self.mc.global_router,
            seed=config.seed,
            spill_queue_depth=self.mc.spill_queue_depth,
        )
        self.placement = make_placement(self.mc.placement)
        fleet = make_fleet_config(
            router=self.mc.cluster_router,
            autoscaler=self.mc.cluster_autoscaler,
            admission=self.mc.admission,
            tick_interval_s=self.mc.tick_interval_s,
        )
        self.handles: List[ClusterHandle] = []
        for index in range(self.mc.num_clusters):
            # Every shard is a full serving system on the shared loop, with
            # its own RNG streams (distinct seed offset per shard) and its
            # own fleet controller built from the tier's fleet settings.
            sub_config = dataclasses.replace(
                config,
                multicluster=None,
                fleet=fleet,
                seed=config.seed + 1 + index,
            )
            system = ClusterServingSystem(sub_config, policy_factory(), loop=self.loop)
            self.handles.append(ClusterHandle(index, system))
        self._kv_token_bytes = kv_bytes_per_token(config.model)
        self._tick_process = PeriodicProcess(
            self.loop,
            self.mc.tick_interval_s,
            self._tick,
            name="multicluster-controller",
        )

        self.local_routed = 0
        self.remote_routed = 0
        self.remote_scale_ups = 0
        self._all_requests: List[Request] = []
        #: requests currently crossing the WAN (stranded ones are recorded
        #: as unfinished when the horizon ends mid-transfer).
        self._in_flight: Dict[int, Request] = {}

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    @property
    def systems(self) -> List[ClusterServingSystem]:
        return [handle.system for handle in self.handles]

    def initial_group_count(self) -> int:
        return sum(len(system.groups) for system in self.systems)

    def home_cluster(self, request: Request) -> int:
        return home_cluster_index(request, self.mc.num_clusters)

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def submit(self, request: Request) -> None:
        """Route an arriving request to a cluster (now, or after the WAN)."""
        self._all_requests.append(request)
        home = self.home_cluster(request)
        target = self.router.route(request, self.handles)
        if target.index == home:
            self.local_routed += 1
            target.system.submit(request)
            return
        # Remote dispatch: the session's context (conservatively, the full
        # prompt's worth of KV — multi-turn prompts carry their history)
        # must cross from the home cluster before serving can start.
        self.remote_routed += 1
        self._in_flight[request.request_id] = request
        size = float(request.prompt_tokens * self._kv_token_bytes)
        self.fabric.transfer(
            home,
            target.index,
            size,
            on_complete=lambda _t, r=request, h=target: self._deliver(r, h),
            tag=f"kv-req{request.request_id}",
        )

    def _deliver(self, request: Request, handle: ClusterHandle) -> None:
        self._in_flight.pop(request.request_id, None)
        handle.system.submit(request)

    def submit_at(self, request: Request, time: float) -> None:
        """Schedule a request arrival at absolute simulation time ``time``."""
        self.loop.schedule_at(time, lambda r=request: self.submit(r), name="mc-arrival")

    # ------------------------------------------------------------------
    # Placement tick
    # ------------------------------------------------------------------
    def _tick(self, now: float) -> None:
        """Redirect scale-ups from spare-less pressured clusters to donors."""
        for handle in self.handles:
            scaler = handle.system.fleet.autoscaler
            if not scaler.config.enabled or scaler.has_spare:
                continue  # local spares: the shard's own autoscaler acts
            if not scaler.wants_capacity(now):
                continue
            candidates = [
                c
                for c in self.handles
                if c is not handle and c.system.fleet.autoscaler.has_spare
            ]
            donor = self.placement.place(handle, candidates)
            if donor is not None and donor.system.fleet.autoscaler.force_scale_up(now):
                self.remote_scale_ups += 1
                handle.system.metrics.mark_event(
                    now,
                    "multicluster-remote-scale-up",
                    pressured_cluster=handle.index,
                    donor_cluster=donor.index,
                    placement=self.placement.name,
                )

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(
        self,
        workload: Workload,
        *,
        until: Optional[float] = None,
        drain: bool = True,
    ) -> MultiClusterResult:
        """Replay ``workload`` through the tier and aggregate the metrics."""
        requests = workload.to_engine_requests()
        for request in requests:
            self.submit_at(request, request.arrival_time)
        for system in self.systems:
            system.monitor.start()
            system.fleet.start()
        self._tick_process.start()
        horizon = until
        if horizon is None:
            horizon = workload.duration + (self.config.drain_timeout_s if drain else 0.0)
        self.loop.run(until=horizon)
        self._tick_process.stop()
        records: List[RequestRecord] = []
        for system in self.systems:
            system.monitor.stop()
            system.fleet.stop()
            system._finalize_unfinished()
            records.extend(system.metrics.records)
        # Requests the horizon caught mid-WAN never reached a shard; they
        # still count as submitted-but-unfinished.
        for request in self._in_flight.values():
            records.append(RequestRecord.from_request(request))
        finished = sum(1 for record in records if record.finished)
        return MultiClusterResult(
            system_name=self.systems[0].policy.name,
            workload_name=workload.name,
            records=records,
            duration_s=self.loop.now,
            submitted_requests=len(requests),
            finished_requests=finished,
            summary=self._summary(records),
            cluster_stats=[handle.system.fleet.stats() for handle in self.handles],
        )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def _summary(self, records: List[RequestRecord]) -> Dict[str, float]:
        """Tier-level summary over the combined per-request records.

        Percentiles are computed over the union of every shard's records;
        throughput is the sum of the shards' bucket-mean token rates (the
        single-cluster definition, summed).
        """
        ttfts = [r.ttft for r in records if r.ttft is not None]
        tpots = [r.mean_tpot for r in records if r.mean_tpot is not None]
        throughput = sum(
            s.metrics.throughput.mean() / s.metrics.timeline_window_s
            for s in self.systems
        )
        return {
            "requests": float(len(records)),
            "finished": float(sum(1 for r in records if r.finished)),
            "ttft_p50": percentile(ttfts, 50),
            "ttft_p90": percentile(ttfts, 90),
            "ttft_p99": percentile(ttfts, 99),
            "tpot_p50": percentile(tpots, 50),
            "tpot_p90": percentile(tpots, 90),
            "tpot_p99": percentile(tpots, 99),
            "throughput_tokens_per_s": throughput,
        }

    def stats(self) -> Dict[str, float]:
        """Tier counters plus the shard fleet counters, aggregated."""
        per_cluster = [handle.system.fleet.stats() for handle in self.handles]
        return {
            "admitted": sum(s["admitted"] for s in per_cluster),
            "shed": sum(s["shed"] for s in per_cluster),
            "queue_peak": max(s["queue_peak"] for s in per_cluster),
            "scale_up_events": sum(s["scale_up_events"] for s in per_cluster),
            "scale_down_events": sum(s["scale_down_events"] for s in per_cluster),
            "final_groups": sum(s["final_groups"] for s in per_cluster),
            "local_routed": float(self.local_routed),
            "remote_routed": float(self.remote_routed),
            "remote_scale_ups": float(self.remote_scale_ups),
            "cross_cluster_bytes": float(self.fabric.bytes_sent),
            "cross_cluster_transfers": float(self.fabric.transfers),
        }
