"""Placement policies: which cluster absorbs an autoscaler scale-up.

Inside one cluster the autoscaler activates its own spare instances.  At
the multicluster tier a cluster can run out of spares while its siblings
still hold cold capacity; the placement policy decides which sibling
scales up on the pressured cluster's behalf (the global router then pulls
traffic toward the new capacity).  Registered by name, mirroring the
router registries, so the sweep can treat placement as a grid axis.

Policies choose among *candidate* handles (clusters that still hold spare
instances; the pressured cluster itself is never a candidate — it had no
spares, which is why placement ran):

* ``spare_capacity_first`` — the cluster with the most spare instances,
  keeping the fleet's headroom balanced.
* ``cost_weighted`` — the cluster whose marginal serving cost is lowest:
  the per-token execution cost fitted from its roofline latency model via
  :mod:`repro.core.cost_model`, scaled by current KV pressure.  On
  heterogeneous fleets this prefers cheap, idle hardware; on homogeneous
  fleets it degenerates to least-pressured.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Sequence, Type, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.multicluster.system import ClusterHandle


class PlacementPolicy(abc.ABC):
    """Chooses the cluster that absorbs a remote scale-up."""

    #: registry name, set by ``register_placement``.
    name: str = "base"

    @abc.abstractmethod
    def place(
        self,
        pressured: "ClusterHandle",
        candidates: Sequence["ClusterHandle"],
    ) -> Optional["ClusterHandle"]:
        """Pick a donor from ``candidates`` (may be empty) for ``pressured``.

        Returns ``None`` to decline the scale-up (no acceptable donor).
        """


class SpareCapacityFirstPlacement(PlacementPolicy):
    """Scale up wherever the most spare instances sit (ties: lowest index)."""

    def place(
        self,
        pressured: "ClusterHandle",
        candidates: Sequence["ClusterHandle"],
    ) -> Optional["ClusterHandle"]:
        if not candidates:
            return None
        return min(candidates, key=lambda c: (-c.spare_instance_count(), c.index))


class CostWeightedPlacement(PlacementPolicy):
    """Scale up on the cheapest cluster: fitted cost/token × (1 + pressure)."""

    def place(
        self,
        pressured: "ClusterHandle",
        candidates: Sequence["ClusterHandle"],
    ) -> Optional["ClusterHandle"]:
        if not candidates:
            return None
        return min(
            candidates,
            key=lambda c: (c.cost_per_token() * (1.0 + c.kv_ratio()), c.index),
        )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_PLACEMENTS: Dict[str, Type[PlacementPolicy]] = {}


def register_placement(
    name: str, policy_class: Type[PlacementPolicy], *, overwrite: bool = False
) -> Type[PlacementPolicy]:
    """Add a placement policy class to the registry; refuses duplicates."""
    if not name:
        raise ValueError("placement policy name must be non-empty")
    if name in _PLACEMENTS and not overwrite:
        raise ValueError(f"placement policy {name!r} is already registered")
    policy_class.name = name
    _PLACEMENTS[name] = policy_class
    return policy_class


def make_placement(name: str) -> PlacementPolicy:
    """Instantiate a registered placement policy by name."""
    if name not in _PLACEMENTS:
        known = ", ".join(list_placements())
        raise KeyError(f"unknown placement policy {name!r}; known policies: {known}")
    return _PLACEMENTS[name]()


def list_placements() -> List[str]:
    """Registered placement policy names in registration order."""
    return list(_PLACEMENTS)


register_placement("spare_capacity_first", SpareCapacityFirstPlacement)
register_placement("cost_weighted", CostWeightedPlacement)
