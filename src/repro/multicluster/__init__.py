"""Fleet-of-fleets tier (``python -m repro.multicluster``).

Shards the elastic fleet across several :class:`~repro.cluster.cluster.Cluster`
objects — each a complete serving system with its own
:class:`~repro.fleet.controller.FleetController` — behind a global router
with its own strategy registry (:mod:`repro.multicluster.routing`), a
placement policy deciding which cluster absorbs an autoscaler scale-up
(:mod:`repro.multicluster.placement`), and an inter-cluster WAN fabric
that makes remote routing and cross-cluster KV migration pay a modeled
cost (:mod:`repro.multicluster.fabric`, built on
:class:`repro.cluster.network.CrossClusterLink`).  The sweep runner
(:mod:`repro.multicluster.sweep`) replays scenarios across the
cluster-count × global-router × placement grid and emits a stable-schema
``MULTICLUSTER_results.json``.

Note: :mod:`repro.multicluster.sweep` and
:mod:`repro.multicluster.system` are intentionally *not* imported here —
they pull in :mod:`repro.serving`, whose config embeds
:class:`~repro.multicluster.config.MultiClusterConfig` from this package;
import them directly where needed.
"""

from repro.multicluster.config import (
    MultiClusterConfig,
    make_multicluster_config,
    multicluster_preset,
)
from repro.multicluster.placement import (
    CostWeightedPlacement,
    PlacementPolicy,
    SpareCapacityFirstPlacement,
    list_placements,
    make_placement,
    register_placement,
)
from repro.multicluster.routing import (
    GlobalRouter,
    LeastLoadedClusterRouter,
    LocalityAffinityRouter,
    SpilloverRouter,
    WeightedRoundRobinRouter,
    home_cluster_index,
    list_global_routers,
    make_global_router,
    register_global_router,
)
from repro.multicluster.schema import (
    DOCUMENT_KEYS,
    ENTRY_KEYS,
    SCALE_KEYS,
    SCHEMA_VERSION,
    WALL_CLOCK_DOCUMENT_KEYS,
    WALL_CLOCK_ENTRY_KEYS,
    strip_wall_clock,
    validate_document,
)

__all__ = [
    "CostWeightedPlacement",
    "DOCUMENT_KEYS",
    "ENTRY_KEYS",
    "GlobalRouter",
    "LeastLoadedClusterRouter",
    "LocalityAffinityRouter",
    "MultiClusterConfig",
    "PlacementPolicy",
    "SCALE_KEYS",
    "SCHEMA_VERSION",
    "SpareCapacityFirstPlacement",
    "SpilloverRouter",
    "WALL_CLOCK_DOCUMENT_KEYS",
    "WALL_CLOCK_ENTRY_KEYS",
    "WeightedRoundRobinRouter",
    "home_cluster_index",
    "list_global_routers",
    "list_placements",
    "make_global_router",
    "make_multicluster_config",
    "make_placement",
    "multicluster_preset",
    "register_global_router",
    "register_placement",
    "strip_wall_clock",
    "validate_document",
]
