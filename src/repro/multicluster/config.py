"""Multicluster-tier configuration: fleet-of-fleets sharding knobs.

These dataclasses are deliberately import-light (stdlib plus the equally
light :mod:`repro.fleet.config`) so they can be embedded in
:class:`repro.serving.config.ServingConfig` and shipped to sweep worker
processes without dragging the serving stack along.

A :class:`MultiClusterConfig` describes the tier that sits *above* the
per-cluster fleet layer: how many :class:`~repro.cluster.cluster.Cluster`
shards exist, which global router distributes arrivals across them
(:mod:`repro.multicluster.routing`), which placement policy decides the
cluster that absorbs an autoscaler scale-up
(:mod:`repro.multicluster.placement`), and the WAN link parameters of the
inter-cluster fabric (:class:`repro.cluster.network.InterClusterLinkSpec`
is built from the plain floats kept here).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.fleet.config import AdmissionConfig

#: Session-migration policies for sessions whose home cluster is down.
SESSION_MIGRATION_POLICIES: Tuple[str, ...] = ("sticky", "migrate")

#: Execution modes for the tier: ``"serial"`` simulates every shard on one
#: shared event loop (the reference semantics); ``"parallel"`` runs shards
#: in worker processes under the conservative windowed protocol of
#: :mod:`repro.parallel` when the configuration is eligible, falling back
#: to serial (with a recorded reason) when it is not.
EXECUTION_MODES: Tuple[str, ...] = ("serial", "parallel")


def list_session_migrations() -> List[str]:
    """Known session-migration policy names."""
    return list(SESSION_MIGRATION_POLICIES)


@dataclass(frozen=True)
class MultiClusterConfig:
    """The fleet-of-fleets tier: sharding, global routing, placement, WAN.

    Attributes:
        num_clusters: number of cluster shards; each is a full
            :class:`~repro.serving.system.ClusterServingSystem` (own
            ``FleetController``, admission queue and autoscaler) built from
            the embedding ``ServingConfig``'s cluster spec.
        global_router: global router strategy name
            (:func:`repro.multicluster.routing.list_global_routers`).
        placement: placement policy name deciding which cluster absorbs a
            scale-up when the pressured cluster has no local spare capacity
            (:func:`repro.multicluster.placement.list_placements`).
        cluster_router: intra-cluster fleet router used inside every shard
            (:func:`repro.fleet.routing.list_routers`).
        cluster_autoscaler: autoscaler preset applied to every shard
            (:func:`repro.fleet.config.list_autoscaler_presets`).
        admission: per-cluster admission-control parameters.
        wan_bandwidth: per-cluster unidirectional WAN uplink, bytes/s.
            The 10 Gbps default sits two orders of magnitude below the
            intra-cluster RDMA NICs, as real geo-sharded deployments do.
        wan_latency_s: one-way propagation delay of every WAN transfer.
        spill_queue_depth: per-group backlog at which the ``spillover``
            global router considers the home cluster overloaded.
        tick_interval_s: period of the multicluster controller's decision
            tick (placement runs on it); also used for the per-cluster
            fleet ticks so the tiers observe a consistent cadence.
        execution: how the tier simulates its shards.  ``"serial"`` (the
            default and the oracle) runs every shard on one shared event
            loop.  ``"parallel"`` requests the conservative parallel shard
            executor (:mod:`repro.parallel`): each shard advances in its
            own worker process in lookahead-bounded time windows, and the
            committed results are bit-identical to serial; configurations
            the conservative protocol cannot shard safely (stateful global
            routers, elastic autoscaling, chaos) transparently fall back
            to serial execution.
        session_migration: what happens to sessions whose home cluster is
            down (see :mod:`repro.chaos`).  ``"sticky"`` keeps the dead
            home: every affected arrival is rerouted to an alive sibling
            and pays a full WAN context transfer each turn (repeated WAN
            hops), and requests displaced by the outage are lost.
            ``"migrate"`` adopts the session onto an alive sibling: the
            first affected request moves the session context over the
            ``CrossClusterLink`` once and later turns are served locally
            (amortised KV move); displaced requests are re-homed the same
            way instead of being lost.
    """

    num_clusters: int = 2
    global_router: str = "least_loaded_cluster"
    placement: str = "spare_capacity_first"
    cluster_router: str = "least_loaded"
    cluster_autoscaler: str = "elastic"
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    wan_bandwidth: float = 10e9 / 8
    wan_latency_s: float = 0.030
    spill_queue_depth: int = 8
    tick_interval_s: float = 1.0
    session_migration: str = "sticky"
    execution: str = "serial"

    def __post_init__(self) -> None:
        if self.num_clusters < 1:
            raise ValueError("num_clusters must be >= 1")
        if not self.global_router:
            raise ValueError("global_router must be non-empty")
        if not self.placement:
            raise ValueError("placement must be non-empty")
        if self.wan_bandwidth <= 0:
            raise ValueError("wan_bandwidth must be positive")
        if self.wan_latency_s < 0:
            raise ValueError("wan_latency_s must be >= 0")
        if self.spill_queue_depth < 1:
            raise ValueError("spill_queue_depth must be >= 1")
        if self.tick_interval_s <= 0:
            raise ValueError("tick_interval_s must be positive")
        if self.session_migration not in SESSION_MIGRATION_POLICIES:
            known = ", ".join(SESSION_MIGRATION_POLICIES)
            raise ValueError(
                f"unknown session_migration {self.session_migration!r}; known: {known}"
            )
        if self.execution not in EXECUTION_MODES:
            known = ", ".join(EXECUTION_MODES)
            raise ValueError(
                f"unknown execution mode {self.execution!r}; known: {known}"
            )


def make_multicluster_config(
    num_clusters: int = 2,
    global_router: str = "least_loaded_cluster",
    placement: str = "spare_capacity_first",
    *,
    cluster_router: str = "least_loaded",
    cluster_autoscaler: str = "elastic",
    admission: Optional[AdmissionConfig] = None,
    wan_bandwidth: float = 10e9 / 8,
    wan_latency_s: float = 0.030,
    spill_queue_depth: int = 8,
    tick_interval_s: float = 1.0,
    session_migration: str = "sticky",
    execution: str = "serial",
) -> MultiClusterConfig:
    """Build a :class:`MultiClusterConfig`, failing fast on unknown names."""
    # Local imports: this module stays import-light for the sweep workers,
    # but router / placement / preset typos should fail at configure time.
    from repro.fleet.config import list_autoscaler_presets
    from repro.fleet.routing import list_routers
    from repro.multicluster.placement import list_placements
    from repro.multicluster.routing import list_global_routers

    if global_router not in list_global_routers():
        known = ", ".join(list_global_routers())
        raise KeyError(f"unknown global router {global_router!r}; known: {known}")
    if placement not in list_placements():
        known = ", ".join(list_placements())
        raise KeyError(f"unknown placement policy {placement!r}; known: {known}")
    if cluster_router not in list_routers():
        known = ", ".join(list_routers())
        raise KeyError(f"unknown cluster router {cluster_router!r}; known: {known}")
    if cluster_autoscaler not in list_autoscaler_presets():
        known = ", ".join(list_autoscaler_presets())
        raise KeyError(f"unknown autoscaler preset {cluster_autoscaler!r}; known: {known}")
    return MultiClusterConfig(
        num_clusters=num_clusters,
        global_router=global_router,
        placement=placement,
        cluster_router=cluster_router,
        cluster_autoscaler=cluster_autoscaler,
        admission=admission if admission is not None else AdmissionConfig(),
        wan_bandwidth=wan_bandwidth,
        wan_latency_s=wan_latency_s,
        spill_queue_depth=spill_queue_depth,
        tick_interval_s=tick_interval_s,
        session_migration=session_migration,
        execution=execution,
    )


def multicluster_preset(name: str) -> MultiClusterConfig:
    """Resolve a compact ``"N/router/placement"`` preset string.

    Segments may be omitted from the right: ``"2"`` means two clusters with
    the default router and placement, ``"2/locality_affinity"`` names the
    router too, ``"3/spillover/cost_weighted"`` names all three.  A leading
    non-numeric segment is treated as the router (two clusters implied), so
    ``"locality_affinity"`` works as well.  This is the format
    ``repro.scenarios``' ``--multicluster`` axis accepts.
    """
    parts: List[str] = [part for part in name.split("/") if part]
    if not parts:
        raise KeyError("empty multicluster preset")
    kwargs = {}
    if parts[0].isdigit():
        kwargs["num_clusters"] = int(parts[0])
        parts = parts[1:]
    if parts:
        kwargs["global_router"] = parts[0]
        parts = parts[1:]
    if parts:
        kwargs["placement"] = parts[0]
        parts = parts[1:]
    if parts:
        raise KeyError(
            f"malformed multicluster preset {name!r}; expected 'N/router/placement'"
        )
    return make_multicluster_config(**kwargs)


__all__: Tuple[str, ...] = (
    "EXECUTION_MODES",
    "MultiClusterConfig",
    "SESSION_MIGRATION_POLICIES",
    "list_session_migrations",
    "make_multicluster_config",
    "multicluster_preset",
)
