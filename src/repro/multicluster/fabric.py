"""Inter-cluster fabric: the WAN tier between cluster shards.

One :class:`~repro.cluster.network.NetworkFabric` endpoint per cluster
(``cluster{i}/wan``), connected pairwise by
:class:`~repro.cluster.network.CrossClusterLink` objects that add the
WAN propagation delay in front of the fabric's fluid-flow bandwidth
sharing.  All remote routing and cross-cluster KV migration in the
multicluster tier flows through here, so it carries a modeled cost: a
cluster whose uplink is saturated delays *every* concurrent remote
dispatch, exactly like intra-cluster bulk traffic contends on a NIC.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.cluster.network import (
    CrossClusterLink,
    InterClusterLinkSpec,
    NetworkFabric,
    Transfer,
    TransferPriority,
)
from repro.simulation.event_loop import EventLoop


class InterClusterFabric:
    """The WAN mesh between ``num_clusters`` cluster shards."""

    def __init__(
        self, loop: EventLoop, num_clusters: int, spec: InterClusterLinkSpec
    ) -> None:
        if num_clusters < 1:
            raise ValueError("num_clusters must be >= 1")
        self.spec = spec
        self.network = NetworkFabric(loop)
        self.num_clusters = num_clusters
        for index in range(num_clusters):
            self.network.add_node(self.node(index), spec.bandwidth)
        self._links: Dict[Tuple[int, int], CrossClusterLink] = {}
        for src in range(num_clusters):
            for dst in range(num_clusters):
                if src != dst:
                    self._links[(src, dst)] = CrossClusterLink(
                        loop, self.network, self.node(src), self.node(dst), spec
                    )

    @staticmethod
    def node(index: int) -> str:
        """Fabric endpoint name for a cluster's WAN uplink."""
        return f"cluster{index}/wan"

    def link(self, src: int, dst: int) -> CrossClusterLink:
        """The directed WAN link from cluster ``src`` to cluster ``dst``."""
        return self._links[(src, dst)]

    def transfer(
        self,
        src: int,
        dst: int,
        size_bytes: float,
        *,
        on_complete: Optional[Callable[[Transfer], None]] = None,
        tag: str = "",
    ) -> None:
        """Move ``size_bytes`` from cluster ``src`` to cluster ``dst``."""
        self.link(src, dst).transfer(
            size_bytes,
            priority=TransferPriority.BULK,
            on_complete=on_complete,
            tag=tag,
        )

    def degrade(
        self, bandwidth_factor: float, latency_factor: float = 1.0
    ) -> None:
        """Degrade every WAN uplink and link (chaos ``wan_degrade``).

        Scales each cluster's uplink to ``bandwidth_factor`` of the spec
        bandwidth and every link's propagation delay by
        ``latency_factor``.  Factors are absolute against the spec, not
        cumulative, so overlapping degradation windows don't compound and
        :meth:`restore` is simply ``degrade(1.0, 1.0)``.
        """
        if not (0.0 < bandwidth_factor <= 1.0):
            raise ValueError(
                f"bandwidth_factor must be in (0, 1], got {bandwidth_factor}"
            )
        if latency_factor < 1.0:
            raise ValueError(f"latency_factor must be >= 1, got {latency_factor}")
        for index in range(self.num_clusters):
            self.network.set_node_bandwidth(
                self.node(index), self.spec.bandwidth * bandwidth_factor
            )
        for link in self._links.values():
            link.latency_scale = latency_factor

    def restore(self) -> None:
        """Lift any WAN degradation: spec bandwidth, spec latency."""
        self.degrade(1.0, 1.0)

    @property
    def bytes_sent(self) -> float:
        """Total bytes submitted across every WAN link."""
        return sum(link.bytes_sent for link in self._links.values())

    @property
    def transfers(self) -> int:
        """Total transfers submitted across every WAN link."""
        return sum(link.transfers for link in self._links.values())
