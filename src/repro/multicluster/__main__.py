"""CLI entry point: ``python -m repro.multicluster``.

Sweeps scenarios across cluster counts × global routers × placement
policies (the fleet-of-fleets grid) through the unified sweep engine
(:mod:`repro.sweeps`) and writes ``MULTICLUSTER_results.json`` to the
repository root (see ``--output``).  Unchanged cells are served from the
on-disk result cache (``.repro_cache/``); disable with ``--no-cache``,
inspect with ``--cache-stats``, purge with ``--clear-cache``.
``--list-routers`` / ``--list-placements`` show the registries.
"""

from __future__ import annotations

import argparse
import sys

from repro.multicluster.config import EXECUTION_MODES
from repro.multicluster.placement import list_placements
from repro.multicluster.routing import list_global_routers
from repro.multicluster.schema import validate_document
from repro.multicluster.sweep import (
    DEFAULT_CLUSTER_COUNTS,
    DEFAULT_POLICIES,
    DEFAULT_SCENARIOS,
    MULTICLUSTER_SCALES,
    format_results,
    run_multicluster_sweep,
    stream_cell_metrics,
    write_results,
)
from repro.policies import make_policy
from repro.scenarios.registry import list_scenarios
from repro.sweeps import effective_worker_count
from repro.sweeps.cli import add_cache_arguments, clear_cache, print_cache_stats


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.multicluster",
        description="Sweep scenarios across cluster counts, global routers and "
        "placement policies in parallel and write MULTICLUSTER_results.json.",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(MULTICLUSTER_SCALES),
        default="quick",
        help="sweep scale, instances per cluster (default: quick)",
    )
    parser.add_argument(
        "--scenarios",
        nargs="*",
        default=None,
        metavar="NAME",
        help=f"scenarios to sweep (default: {' '.join(DEFAULT_SCENARIOS)})",
    )
    parser.add_argument(
        "--policies",
        nargs="*",
        default=None,
        metavar="POLICY",
        help=f"overload-policy keys (default: {' '.join(DEFAULT_POLICIES)})",
    )
    parser.add_argument(
        "--cluster-counts",
        nargs="*",
        type=int,
        default=None,
        metavar="N",
        help="cluster shard counts (default: "
        f"{' '.join(str(c) for c in DEFAULT_CLUSTER_COUNTS)})",
    )
    parser.add_argument(
        "--routers",
        nargs="*",
        default=None,
        metavar="ROUTER",
        help="global router strategies (default: all registered)",
    )
    parser.add_argument(
        "--placements",
        nargs="*",
        default=None,
        metavar="POLICY",
        help="placement policies (default: all registered)",
    )
    parser.add_argument(
        "--execution",
        choices=sorted(EXECUTION_MODES),
        default="serial",
        help="tier execution mode: 'parallel' runs eligible cells under the "
        "conservative parallel shard executor (bit-identical results; "
        "ineligible cells fall back to serial transparently)",
    )
    parser.add_argument("--seed", type=int, default=42, help="sweep seed")
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes (default: min(grid size, CPU count))",
    )
    parser.add_argument(
        "--sequential",
        action="store_true",
        help="run every cell inline in this process (equivalent to --workers 1)",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="where to write MULTICLUSTER_results.json (default: repository root)",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="additionally replay the first grid cell inline, streaming live "
        "Prometheus text scrapes (per-shard + tier series) to FILE",
    )
    add_cache_arguments(parser)
    parser.add_argument(
        "--list-routers",
        action="store_true",
        help="list global router strategies and exit",
    )
    parser.add_argument(
        "--list-placements",
        action="store_true",
        help="list placement policies and exit",
    )
    args = parser.parse_args(argv)

    if args.list_routers:
        for name in list_global_routers():
            print(name)
        return 0
    if args.list_placements:
        for name in list_placements():
            print(name)
        return 0
    if args.clear_cache:
        return clear_cache(args)

    try:
        for policy in args.policies or ():
            make_policy(policy)  # fail fast on typos before spawning workers
        max_workers = 1 if args.sequential else args.workers
        if max_workers is None:
            names = args.scenarios or list(DEFAULT_SCENARIOS)
            grid = (
                len([n for n in names if n in list_scenarios()])
                * len(args.policies or DEFAULT_POLICIES)
                * len(
                    args.cluster_counts
                    if args.cluster_counts is not None
                    else DEFAULT_CLUSTER_COUNTS
                )
                * len(args.routers if args.routers is not None else list_global_routers())
                * len(
                    args.placements
                    if args.placements is not None
                    else list_placements()
                )
            )
            max_workers = max(1, min(grid, effective_worker_count()))
        document = run_multicluster_sweep(
            scenarios=args.scenarios,
            policies=args.policies,
            cluster_counts=args.cluster_counts,
            routers=args.routers,
            placements=args.placements,
            scale=MULTICLUSTER_SCALES[args.scale],
            seed=args.seed,
            max_workers=max_workers,
            use_cache=not args.no_cache,
            cache_dir=args.cache_dir,
            execution=args.execution,
        )
    except (KeyError, ValueError) as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    problems = validate_document(document)
    if problems:
        print("schema violations:", *problems, sep="\n  ", file=sys.stderr)
        return 1
    path = write_results(document, args.output)
    print(format_results(document))
    if args.cache_stats:
        print_cache_stats(document, args)
    if args.metrics_out:
        from pathlib import Path

        scrapes = stream_cell_metrics(
            (args.scenarios or list(DEFAULT_SCENARIOS))[0],
            (args.policies or list(DEFAULT_POLICIES))[0],
            (
                args.cluster_counts
                if args.cluster_counts is not None
                else list(DEFAULT_CLUSTER_COUNTS)
            )[0],
            (args.routers if args.routers is not None else list_global_routers())[0],
            (args.placements if args.placements is not None else list_placements())[0],
            MULTICLUSTER_SCALES[args.scale],
            args.seed,
            Path(args.metrics_out),
        )
        print(f"streamed {scrapes} metric scrapes to {args.metrics_out}")
    print(f"\nwrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
