"""Coordinated KV-cache exchange (§4.2).

After a drop plan merges groups, the KV cache of an ongoing request is
coupled to the layers its original instance used to hold: instance A keeps
layers 0–k, so the KV of layers k+1..L-1 must move to the instances now
holding those layers (and vice versa).  Recomputing would make queued
requests wait, so the KV is exchanged over the network instead.

The exchange competes with pipeline activation transfers for NIC bandwidth.
KunServe's *coordinated* exchange chops the KV into chunks sized to roughly
one pipeline-stage execution and yields to activation transfers at chunk
boundaries, so activations are never stalled behind a multi-gigabyte
message.  The uncoordinated variant (kept for the Figure 14 ablation) sends
each request's KV as one message, which blocks activations for the
message's residual transfer time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster.network import NetworkFabric, Transfer, TransferPriority
from repro.engine.group import ServingGroup
from repro.engine.instance import ServingInstance
from repro.engine.request import Request, RequestState
from repro.simulation.event_loop import EventLoop


@dataclass
class ExchangeMove:
    """KV movement of one request between two instances."""

    request: Request
    src: ServingInstance
    dst: ServingInstance
    size_bytes: float


@dataclass
class ExchangePlan:
    """All KV movements required by one group merge (or split)."""

    moves: List[ExchangeMove] = field(default_factory=list)

    @property
    def total_bytes(self) -> float:
        return sum(move.size_bytes for move in self.moves)

    @property
    def num_requests(self) -> int:
        return len({move.request.request_id for move in self.moves})

    def __len__(self) -> int:
        return len(self.moves)


class KVExchangeCoordinator:
    """Plans and executes KV-cache exchanges over the cluster fabric."""

    #: Residual interference an activation sees at a chunk boundary when the
    #: exchange is coordinated (the check-and-yield overhead).
    COORDINATED_INTERFERENCE_S = 0.002

    def __init__(
        self,
        loop: EventLoop,
        fabric: NetworkFabric,
        *,
        coordinated: bool = True,
        kv_token_bytes: int,
    ) -> None:
        self.loop = loop
        self.fabric = fabric
        self.coordinated = coordinated
        self.kv_token_bytes = kv_token_bytes
        #: exchanges in flight per group id (for interference bookkeeping).
        self._inflight: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def plan_for_merge(
        self,
        group: ServingGroup,
        prior_owner: Dict[int, ServingInstance],
        kv_tokens: Dict[int, int],
    ) -> ExchangePlan:
        """Plan the KV moves after ``group`` was formed by a merge.

        Args:
            group: the freshly merged group (assignment already set).
            prior_owner: request id -> instance that held the request's KV
                before the merge.
            kv_tokens: request id -> number of KV tokens the request holds.
        """
        plan = ExchangePlan()
        num_layers = group.model.num_layers
        assignment = group.assignment
        for request in group.scheduler.running:
            owner = prior_owner.get(request.request_id)
            tokens = kv_tokens.get(request.request_id, 0)
            if owner is None or tokens == 0:
                continue
            try:
                owner_stage = group.instances.index(owner)
            except ValueError:
                owner_stage = None
            kept_layers = len(assignment[owner_stage]) if owner_stage is not None else 0
            moved_fraction = 1.0 - kept_layers / num_layers
            if moved_fraction <= 0:
                continue
            size = tokens * self.kv_token_bytes * moved_fraction
            destination = self._pick_destination(group, owner)
            if destination is None:
                continue
            plan.moves.append(
                ExchangeMove(request=request, src=owner, dst=destination, size_bytes=size)
            )
        return plan

    def plan_for_split(
        self,
        group: ServingGroup,
        new_owner: Dict[int, ServingInstance],
        kv_tokens: Dict[int, int],
    ) -> ExchangePlan:
        """Plan the KV gather when a pipelined group is split after restore.

        Each request's KV is spread over the stages proportionally to their
        layer counts; everything not already on the request's new owner must
        move there.
        """
        plan = ExchangePlan()
        num_layers = group.model.num_layers
        assignment = group.assignment
        for request in group.scheduler.running:
            owner = new_owner.get(request.request_id)
            tokens = kv_tokens.get(request.request_id, 0)
            if owner is None or tokens == 0:
                continue
            try:
                owner_stage = group.instances.index(owner)
                kept_layers = len(assignment[owner_stage])
            except ValueError:
                kept_layers = 0
            moved_fraction = 1.0 - kept_layers / num_layers
            if moved_fraction <= 0:
                continue
            size = tokens * self.kv_token_bytes * moved_fraction
            source = self._pick_destination(group, owner)
            if source is None:
                continue
            plan.moves.append(
                ExchangeMove(request=request, src=source, dst=owner, size_bytes=size)
            )
        return plan

    @staticmethod
    def _pick_destination(group: ServingGroup, owner: ServingInstance) -> Optional[ServingInstance]:
        """The peer instance holding the largest share of the moved layers."""
        candidates = [
            (len(layers), instance)
            for instance, layers in zip(group.instances, group.assignment)
            if instance is not owner
        ]
        if not candidates:
            return None
        candidates.sort(key=lambda item: item[0], reverse=True)
        return candidates[0][1]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, plan: ExchangePlan, group: ServingGroup) -> None:
        """Start all transfers of ``plan``; stall the affected requests."""
        if not plan.moves:
            return
        self._inflight[group.group_id] = self._inflight.get(group.group_id, 0) + len(plan.moves)
        group.activation_interference_s = self._interference(plan)
        for move in plan.moves:
            self._start_move(move, group)

    def _interference(self, plan: ExchangePlan) -> float:
        if self.coordinated:
            return self.COORDINATED_INTERFERENCE_S
        # Uncoordinated: an activation issued mid-exchange waits, on average,
        # half of one request-sized KV message.
        if not plan.moves:
            return 0.0
        mean_bytes = plan.total_bytes / len(plan.moves)
        bandwidths = [
            min(
                self.fabric.node_bandwidth(move.src.nic_node()),
                self.fabric.node_bandwidth(move.dst.nic_node()),
            )
            for move in plan.moves
        ]
        mean_bandwidth = sum(bandwidths) / len(bandwidths)
        return 0.5 * mean_bytes / mean_bandwidth

    def _start_move(self, move: ExchangeMove, group: ServingGroup) -> None:
        request = move.request
        request.state = RequestState.EXCHANGING
        src_node = move.src.nic_node()
        dst_node = move.dst.nic_node()
        if src_node == dst_node:
            # Same server: NVLink copy, effectively instantaneous at this
            # timescale; no stall needed.
            request.state = RequestState.RUNNING
            self._finish_move(group, request, None)
            return
        eta = self.fabric.estimate_transfer_time(src_node, dst_node, move.size_bytes, exclusive=False)
        group.stall_request(request, self.loop.now + eta)
        priority = TransferPriority.BULK if self.coordinated else TransferPriority.ACTIVATION
        self.fabric.submit(
            src_node,
            dst_node,
            move.size_bytes,
            priority=priority,
            tag=f"kv-exchange-{request.request_id}",
            on_complete=lambda t, r=request, g=group: self._finish_move(g, r, t),
        )

    def _finish_move(self, group: ServingGroup, request: Request, _transfer: Optional[Transfer]) -> None:
        if not request.finished:
            request.state = RequestState.RUNNING
            request.stall_until = min(request.stall_until, self.loop.now)
        remaining = self._inflight.get(group.group_id, 0) - 1
        if remaining <= 0:
            self._inflight.pop(group.group_id, None)
            group.activation_interference_s = 0.0
        else:
            self._inflight[group.group_id] = remaining
        group.kick()

    def has_inflight(self, group: ServingGroup) -> bool:
        return self._inflight.get(group.group_id, 0) > 0
