"""KunServe core: parameter-centric memory management.

The modules here implement the paper's contribution proper:

* :mod:`repro.core.drop_plan` — greedy drop-plan generation (Figure 6);
* :mod:`repro.core.cost_model` — the microbatch execution cost model of
  Eq. 1–3 with offline least-squares fitting;
* :mod:`repro.core.lookahead` — the divide-and-conquer lookahead batch
  formulation (Figure 10/11);
* :mod:`repro.core.kv_exchange` — coordinated KV-cache exchange that keeps
  pipeline activations ahead of bulk traffic (§4.2);
* :mod:`repro.core.local_manager` / :mod:`repro.core.global_manager` —
  executing drop plans across instances (§4.1);
* :mod:`repro.core.restore` — dynamic parameter restoration (§4.4);
* :mod:`repro.core.fault_tolerance` — recovering pipeline groups from
  instance failures (§4.4);
* :mod:`repro.core.kunserve` — the controller gluing everything together.
"""

from repro.core.drop_plan import DropPlan, PlanGroup, generate_drop_plan
from repro.core.cost_model import (
    BatchCostModel,
    CostModelParams,
    NoAttentionCostModel,
    ProfilingSample,
    fit_cost_model,
    generate_profiling_samples,
)
from repro.core.lookahead import lookahead_microbatches, make_lookahead_former
from repro.core.kv_exchange import ExchangePlan, KVExchangeCoordinator
from repro.core.local_manager import LocalMemoryManager
from repro.core.global_manager import GlobalMemoryManager
from repro.core.restore import RestoreManager
from repro.core.fault_tolerance import FaultToleranceManager
from repro.core.kunserve import KunServeConfig, KunServeController

__all__ = [
    "DropPlan",
    "PlanGroup",
    "generate_drop_plan",
    "BatchCostModel",
    "CostModelParams",
    "NoAttentionCostModel",
    "ProfilingSample",
    "fit_cost_model",
    "generate_profiling_samples",
    "lookahead_microbatches",
    "make_lookahead_former",
    "ExchangePlan",
    "KVExchangeCoordinator",
    "LocalMemoryManager",
    "GlobalMemoryManager",
    "RestoreManager",
    "FaultToleranceManager",
    "KunServeConfig",
    "KunServeController",
]
