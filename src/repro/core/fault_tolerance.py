"""Fault tolerance for pipeline groups (§4.4).

In ordinary replicated serving a failed instance only hurts itself.  After
a parameter drop, however, the surviving members of its pipeline group no
longer hold a complete model copy, so they cannot serve alone.  KunServe
recovers by restoring the missing layers on the survivors — parameters are
always re-loadable from host DRAM / SSD replicas over PCIe — and reforming
them into independent single-instance groups.  Requests whose KV lived
(partly) on the failed instance are recomputed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.cluster.network import TransferPriority
from repro.core.interfaces import ServingSystemAPI
from repro.core.local_manager import LocalMemoryManager
from repro.engine.group import ServingGroup
from repro.engine.instance import ServingInstance


@dataclass
class FailureReport:
    """Outcome of handling one instance failure."""

    time: float
    failed_instance_id: int
    affected_group_id: Optional[int]
    survivors: List[int] = field(default_factory=list)
    recomputed_requests: int = 0
    requeued_requests: int = 0
    restore_bytes: int = 0
    #: ids of the requests the failure displaced (recomputed + requeued),
    #: in the order they were re-dispatched — chaos sweeps use these to
    #: measure the recovery transient per displaced request.
    displaced_request_ids: List[int] = field(default_factory=list)


class FaultToleranceManager:
    """Handles instance failures, including mid-drop pipeline groups."""

    def __init__(self, system: ServingSystemAPI) -> None:
        self.system = system
        self.reports: List[FailureReport] = []

    def fail_instance(self, instance: ServingInstance, now: Optional[float] = None) -> FailureReport:
        """Simulate the failure of ``instance`` and recover the cluster."""
        if now is None:
            now = self.system.loop.now
        instance.failed = True
        group = self._group_of(instance)
        report = FailureReport(
            time=now,
            failed_instance_id=instance.instance_id,
            affected_group_id=group.group_id if group is not None else None,
        )
        if group is None:
            self.reports.append(report)
            return report

        survivors = [inst for inst in group.instances if inst is not instance]
        report.survivors = [inst.instance_id for inst in survivors]

        # Collect the group's requests before tearing it down.  Running
        # requests lose (at least part of) their KV cache: recompute them.
        displaced = []
        for request in list(group.scheduler.running):
            group.scheduler.remove_request(request)
            request.reset_for_recompute()
            displaced.append(request)
            report.recomputed_requests += 1
        for request in sorted(
            list(group.scheduler.waiting), key=lambda r: (r.arrival_time, r.request_id)
        ):
            group.scheduler.remove_request(request)
            displaced.append(request)
            report.requeued_requests += 1
        report.displaced_request_ids = [r.request_id for r in displaced]
        self.system.retire_group(group)

        # Restore full replicas on the survivors (pulled from the host copy
        # over PCIe) and bring them back as independent groups.
        num_layers = self.system.model.num_layers
        new_groups: List[ServingGroup] = []
        for survivor in survivors:
            manager = LocalMemoryManager(survivor)
            missing = manager.missing_layers(num_layers)
            if missing:
                if not manager.can_restore(missing):
                    # Should not happen right after a failure (the group's KV
                    # is mostly free once its requests were removed), but be
                    # safe: skip the survivor rather than corrupt state.
                    continue
                outcome = manager.execute_restore(missing)
                report.restore_bytes += outcome.transfer_bytes
                self.system.fabric.submit(
                    survivor.host_node(),
                    survivor.host_node(),
                    outcome.transfer_bytes,
                    priority=TransferPriority.BULK,
                    tag=f"failover-restore-inst{survivor.instance_id}",
                )
            new_groups.append(
                self.system.create_group([survivor], assignment=[list(range(num_layers))])
            )

        # Re-dispatch the displaced requests over the surviving groups (or
        # any other active group when the whole group died).
        targets = new_groups or [g for g in self.system.groups if g.active]
        if targets:
            for index, request in enumerate(displaced):
                targets[index % len(targets)].adopt_waiting(request)

        self.system.metrics.mark_event(
            now,
            "instance_failure",
            instance_id=instance.instance_id,
            recomputed=report.recomputed_requests,
        )
        self.reports.append(report)
        return report

    def _group_of(self, instance: ServingInstance) -> Optional[ServingGroup]:
        for group in self.system.groups:
            if group.active and instance in group.instances:
                return group
        return None
