"""Drop-plan generation (Figure 6).

Upon overloading, KunServe must decide which parameter replicas to drop.
Correctness only requires that the instances of every (merged) group still
hold one complete copy of the model between them; performance requires
keeping groups as small as possible, because more pipeline stages mean more
bubbles and smaller microbatches (Figure 5).

The paper's algorithm is a greedy merge: keep all groups in a min-heap keyed
by group size; repeatedly pop the two smallest groups and merge them — the
merge drops one full copy of the duplicated parameters — until enough bytes
have been freed or only one group remains (infeasible, fall back to the
KV-centric policy).  Complexity ``O(N log N)``.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple


@dataclass(frozen=True)
class PlanGroup:
    """A (possibly already merged) group in the planner's view.

    Attributes:
        group_ids: ids of the original serving groups folded into this one.
        num_instances: total instances across those groups.
        layer_copies: how many copies of each layer the group holds; a group
            that has not been merged holds ``len(group_ids)`` copies of every
            layer (each original group has a full replica).
    """

    group_ids: Tuple[int, ...]
    num_instances: int

    def __post_init__(self) -> None:
        if self.num_instances <= 0:
            raise ValueError("num_instances must be positive")
        if not self.group_ids:
            raise ValueError("group_ids must not be empty")


@dataclass
class MergeStep:
    """One merge performed by the planner (for logging / the executor)."""

    left: PlanGroup
    right: PlanGroup
    merged: PlanGroup
    freed_bytes: int


@dataclass
class DropPlan:
    """The planner's output: the new group assignment.

    Attributes:
        feasible: False when the requirement could not be met even after
            merging everything into a single group.
        required_bytes: the memory requirement ``R`` that was requested.
        freed_bytes: parameter bytes the plan frees cluster-wide.
        final_groups: the new partition of original group ids.
        steps: the merge steps in order (each frees one model copy).
    """

    feasible: bool
    required_bytes: int
    freed_bytes: int
    final_groups: List[Tuple[int, ...]] = field(default_factory=list)
    steps: List[MergeStep] = field(default_factory=list)

    @property
    def merged_groups(self) -> List[Tuple[int, ...]]:
        """Final groups that actually contain more than one original group."""
        return [group for group in self.final_groups if len(group) > 1]

    @property
    def num_merges(self) -> int:
        return len(self.steps)


def generate_drop_plan(
    groups: Sequence[PlanGroup],
    required_bytes: int,
    model_param_bytes: int,
) -> DropPlan:
    """Generate a drop plan following the greedy algorithm of Figure 6.

    Args:
        groups: the current serving groups (each holding one full replica
            per original group it contains).
        required_bytes: the memory requirement ``R`` to free.
        model_param_bytes: bytes of one complete model replica — what one
            merge frees.

    Returns:
        A :class:`DropPlan`.  When no plan can satisfy the requirement the
        plan is marked infeasible but still contains the merges performed
        (the caller falls back to KV-centric handling / autoscaling).
    """
    if required_bytes < 0:
        raise ValueError("required_bytes must be >= 0")
    if model_param_bytes <= 0:
        raise ValueError("model_param_bytes must be positive")

    if required_bytes == 0 or not groups:
        return DropPlan(
            feasible=True,
            required_bytes=required_bytes,
            freed_bytes=0,
            final_groups=[g.group_ids for g in groups],
        )

    # Min-heap keyed by (#instances, insertion order) — smallest groups are
    # merged first to keep pipeline depth (and thus bubbles) minimal.
    counter = itertools.count()
    heap: List[Tuple[int, int, PlanGroup]] = []
    for group in groups:
        heapq.heappush(heap, (group.num_instances, next(counter), group))

    freed = 0
    steps: List[MergeStep] = []
    while len(heap) >= 2 and freed < required_bytes:
        _, _, left = heapq.heappop(heap)
        _, _, right = heapq.heappop(heap)
        merged = PlanGroup(
            group_ids=tuple(left.group_ids) + tuple(right.group_ids),
            num_instances=left.num_instances + right.num_instances,
        )
        # Merging two groups that each hold a complete replica lets us drop
        # exactly one replica's worth of duplicated layers.
        freed_by_merge = model_param_bytes
        freed += freed_by_merge
        steps.append(MergeStep(left=left, right=right, merged=merged, freed_bytes=freed_by_merge))
        heapq.heappush(heap, (merged.num_instances, next(counter), merged))

    final_groups = [entry[2].group_ids for entry in sorted(heap)]
    return DropPlan(
        feasible=freed >= required_bytes,
        required_bytes=required_bytes,
        freed_bytes=freed,
        final_groups=final_groups,
        steps=steps,
    )


def balanced_layer_assignment(num_layers: int, instance_count: int) -> List[List[int]]:
    """Contiguous, balanced layer assignment for a merged group's stages."""
    if instance_count <= 0:
        raise ValueError("instance_count must be positive")
    if num_layers < instance_count:
        raise ValueError("cannot assign fewer layers than instances")
    base = num_layers // instance_count
    remainder = num_layers % instance_count
    assignment: List[List[int]] = []
    start = 0
    for index in range(instance_count):
        count = base + (1 if index < remainder else 0)
        assignment.append(list(range(start, start + count)))
        start += count
    return assignment


def plan_freed_bytes_by_group(plan: DropPlan, model_param_bytes: int) -> Dict[Tuple[int, ...], int]:
    """Bytes freed by each final merged group (one replica per extra member)."""
    freed: Dict[Tuple[int, ...], int] = {}
    for group in plan.final_groups:
        freed[group] = (len(group) - 1) * model_param_bytes
    return freed
