"""Structural interface between the KunServe core and the serving system.

The core modules (global memory manager, restore manager, fault tolerance,
controller) operate on a cluster-serving system but must not import
:mod:`repro.serving` (which imports the policies that import the core).
This protocol documents exactly what they rely on; the concrete
implementation is :class:`repro.serving.system.ClusterServingSystem`.
"""

from __future__ import annotations

from typing import List, Optional, Protocol, runtime_checkable

from repro.cluster.network import NetworkFabric
from repro.engine.group import MicrobatchFormer, ServingGroup
from repro.engine.instance import ServingInstance
from repro.engine.metrics import MetricsCollector
from repro.models.spec import ModelSpec
from repro.simulation.event_loop import EventLoop


@runtime_checkable
class ServingSystemAPI(Protocol):
    """What the KunServe core needs from the cluster serving system."""

    loop: EventLoop
    fabric: NetworkFabric
    metrics: MetricsCollector
    model: ModelSpec
    groups: List[ServingGroup]

    def create_group(
        self,
        instances: List[ServingInstance],
        assignment: Optional[List[List[int]]] = None,
        microbatch_former: Optional[MicrobatchFormer] = None,
    ) -> ServingGroup:
        """Create, register and activate a new serving group."""
        ...

    def retire_group(self, group: ServingGroup) -> None:
        """Deactivate a group and remove it from dispatching."""
        ...
