"""Microbatch execution cost model (§4.3, Eq. 1–3).

The lookahead batch formulation needs to predict how long a microbatch will
take.  Token-count proxies miss the quadratic attention terms, so the paper
retrofits a cost model::

    cost(c_ij) = alpha * (p_ij * c_ij  +  (c_ij^2 + c_ij) / 2)   # attention
               + beta * c_ij                                      # FFN
               + gamma                                            # fixed

    cost(b_k)  = sum_{c in b_k} cost(c)  -  (|b_k| - 1) * lam     # shared
                                                                  # weight loads

The hyper-parameters (alpha, beta, gamma, lam) are fitted offline with least
squares over profiling samples.  In this reproduction the profiling samples
are produced by the roofline :class:`~repro.engine.latency_model.LatencyModel`
(the "real GPU" of the simulation), so Figure 15 compares the fitted model
against that ground truth, including the no-attention baseline cost model
used by prior work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.engine.batch import ScheduledChunk
from repro.engine.latency_model import LatencyModel
from repro.engine.request import Request


@dataclass(frozen=True)
class CostModelParams:
    """Fitted hyper-parameters of the cost model."""

    alpha: float
    beta: float
    gamma: float
    lam: float

    def as_array(self) -> np.ndarray:
        return np.array([self.alpha, self.beta, self.gamma, self.lam], dtype=float)


@dataclass(frozen=True)
class ProfilingSample:
    """One offline profiling measurement: a microbatch and its latency."""

    chunks: tuple
    measured_time: float

    @property
    def num_chunks(self) -> int:
        return len(self.chunks)


def _chunk_features(prefix_tokens: float, chunk_tokens: float) -> np.ndarray:
    """Per-chunk feature vector for (alpha, beta, gamma) of Eq. 1."""
    attention = prefix_tokens * chunk_tokens + (chunk_tokens ** 2 + chunk_tokens) / 2.0
    return np.array([attention, chunk_tokens, 1.0], dtype=float)


class BatchCostModel:
    """Eq. 1–3 cost model with fitted parameters."""

    #: chunk_cost memo entries kept before the cache is reset (the lookahead
    #: splitter evaluates the same (prefix, tokens) pairs many times while
    #: binary-searching split points).
    _CACHE_LIMIT = 65536

    def __init__(self, params: CostModelParams) -> None:
        self.params = params
        self._chunk_cost_cache: dict = {}

    # ------------------------------------------------------------------
    # Cost evaluation
    # ------------------------------------------------------------------
    def chunk_cost(self, prefix_tokens: int, chunk_tokens: int) -> float:
        """Cost (seconds) of one chunk: Eq. 1."""
        if chunk_tokens <= 0:
            return 0.0
        key = (prefix_tokens, chunk_tokens)
        cached = self._chunk_cost_cache.get(key)
        if cached is not None:
            return cached
        # Scalar form of ``alpha . _chunk_features`` — the array allocation
        # is too expensive for a function this hot.
        attention = prefix_tokens * chunk_tokens + (chunk_tokens ** 2 + chunk_tokens) / 2.0
        cost = float(
            self.params.alpha * attention + self.params.beta * chunk_tokens + self.params.gamma
        )
        if len(self._chunk_cost_cache) >= self._CACHE_LIMIT:
            self._chunk_cost_cache.clear()
        self._chunk_cost_cache[key] = cost
        return cost

    def chunk_cost_of(self, chunk: ScheduledChunk) -> float:
        return self.chunk_cost(chunk.prefix_tokens, chunk.new_tokens)

    def microbatch_cost(self, chunks: Iterable[ScheduledChunk]) -> float:
        """Cost of a microbatch: Eq. 3 (with the shared-weight-load term)."""
        chunk_list = list(chunks)
        if not chunk_list:
            return 0.0
        total = sum(self.chunk_cost_of(chunk) for chunk in chunk_list)
        return total - (len(chunk_list) - 1) * self.params.lam

    # ------------------------------------------------------------------
    # Estimation helpers used by Figure 15
    # ------------------------------------------------------------------
    def estimate_prefill(self, prompt_tokens: int, prefix_tokens: int = 0) -> float:
        """Estimated latency of prefilling ``prompt_tokens`` after a prefix."""
        return self.chunk_cost(prefix_tokens, prompt_tokens)


class NoAttentionCostModel(BatchCostModel):
    """The prior-work baseline that ignores attention cost entirely.

    NanoFlow-style models estimate microbatch time from the token count
    alone (a linear model); the paper shows this deviates by up to 48–74 %
    for long prompts / prefixes.
    """

    def chunk_cost(self, prefix_tokens: int, chunk_tokens: int) -> float:
        if chunk_tokens <= 0:
            return 0.0
        return float(self.params.beta * chunk_tokens + self.params.gamma)


# ----------------------------------------------------------------------
# Offline profiling and least-squares fitting
# ----------------------------------------------------------------------
def _make_chunk(prefix_tokens: int, chunk_tokens: int, *, is_decode: bool = False) -> ScheduledChunk:
    request = Request(
        arrival_time=0.0,
        prompt_tokens=max(1, prefix_tokens + chunk_tokens),
        max_output_tokens=1,
    )
    return ScheduledChunk(
        request=request,
        prefix_tokens=prefix_tokens,
        new_tokens=chunk_tokens,
        is_decode=is_decode,
    )


def generate_profiling_samples(
    latency_model: LatencyModel,
    *,
    prompt_lengths: Sequence[int] = (128, 256, 512, 1024, 2048, 4096, 6144, 8192),
    prefix_lengths: Sequence[int] = (0, 512, 1024, 2048, 4096),
    batch_sizes: Sequence[int] = (1, 2, 4, 8),
    decode_contexts: Sequence[int] = (256, 1024, 4096),
) -> List[ProfilingSample]:
    """Run the offline profiling sweep (§4.3) against the roofline model.

    Produces single-chunk samples covering prompt/prefix lengths plus
    multi-chunk samples (for the shared-weight-load term) and decode-heavy
    samples so the fit covers the batching regimes seen online.
    """
    samples: List[ProfilingSample] = []
    for prompt in prompt_lengths:
        for prefix in prefix_lengths:
            chunk = _make_chunk(prefix, prompt)
            time = latency_model.batch_time([chunk])
            samples.append(ProfilingSample(chunks=((prefix, prompt),), measured_time=time))
    for batch_size in batch_sizes:
        if batch_size < 2:
            continue
        for prompt in prompt_lengths[:4]:
            chunks = [_make_chunk(0, prompt) for _ in range(batch_size)]
            time = latency_model.batch_time(chunks)
            samples.append(
                ProfilingSample(chunks=tuple((0, prompt) for _ in range(batch_size)), measured_time=time)
            )
    for context in decode_contexts:
        for batch_size in batch_sizes:
            chunks = [_make_chunk(context, 1, is_decode=True) for _ in range(batch_size)]
            time = latency_model.batch_time(chunks)
            samples.append(
                ProfilingSample(chunks=tuple((context, 1) for _ in range(batch_size)), measured_time=time)
            )
    return samples


def fit_cost_model(samples: Sequence[ProfilingSample]) -> CostModelParams:
    """Least-squares fit of (alpha, beta, gamma, lam) over profiling samples.

    Each sample contributes one row: the microbatch cost is linear in the
    four parameters, with the lam feature equal to ``-(num_chunks - 1)``.
    """
    if not samples:
        raise ValueError("need at least one profiling sample to fit")
    rows = []
    targets = []
    for sample in samples:
        attention = 0.0
        tokens = 0.0
        count = float(sample.num_chunks)
        for prefix, chunk in sample.chunks:
            features = _chunk_features(prefix, chunk)
            attention += features[0]
            tokens += features[1]
        rows.append([attention, tokens, count, -(count - 1.0)])
        targets.append(sample.measured_time)
    design = np.asarray(rows, dtype=float)
    target = np.asarray(targets, dtype=float)
    solution, _, _, _ = np.linalg.lstsq(design, target, rcond=None)
    alpha, beta, gamma, lam = (float(x) for x in solution)
    # Clamp to physically meaningful values (costs cannot be negative).
    return CostModelParams(
        alpha=max(alpha, 0.0),
        beta=max(beta, 0.0),
        gamma=max(gamma, 0.0),
        lam=max(lam, 0.0),
    )


def fit_from_latency_model(latency_model: LatencyModel) -> BatchCostModel:
    """Convenience: profile the roofline model and fit the cost model."""
    samples = generate_profiling_samples(latency_model)
    return BatchCostModel(fit_cost_model(samples))


def mean_relative_error(
    model: BatchCostModel, latency_model: LatencyModel, samples: Optional[Sequence[ProfilingSample]] = None
) -> float:
    """Mean relative deviation of the cost model vs. the ground truth."""
    if samples is None:
        samples = generate_profiling_samples(latency_model)
    errors = []
    for sample in samples:
        chunks = [_make_chunk(prefix, tokens) for prefix, tokens in sample.chunks]
        predicted = model.microbatch_cost(chunks)
        actual = sample.measured_time
        if actual > 0:
            errors.append(abs(predicted - actual) / actual)
    return float(np.mean(errors)) if errors else 0.0
