"""The KunServe controller: detection, drop, restore.

Glues the core pieces together behind the monitor-tick hook the cluster
serving system exposes:

* when the monitor reports memory overload (demand above capacity or a
  scheduler blocked on memory with requests queued), generate and execute a
  drop plan through the :class:`GlobalMemoryManager`;
* when the demand has fallen low enough, restore parameters through the
  :class:`RestoreManager`;
* install the lookahead microbatch former (backed by the fitted cost model)
  on every merged group so pipelined execution stays bubble-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.cost_model import BatchCostModel, fit_cost_model, generate_profiling_samples
from repro.core.global_manager import DropExecutionReport, GlobalMemoryManager
from repro.core.interfaces import ServingSystemAPI
from repro.core.kv_exchange import KVExchangeCoordinator
from repro.core.lookahead import make_lookahead_former
from repro.core.restore import RestoreManager
from repro.engine.group import MicrobatchFormer
from repro.models.memory import kv_bytes_per_token


@dataclass
class KunServeConfig:
    """Tunables of the KunServe controller.

    Attributes:
        overload_threshold: demand / capacity ratio above which a drop is
            triggered (the paper triggers when queued requests cannot fit).
        headroom_fraction: extra capacity targeted beyond the bare demand so
            decode growth does not instantly re-overload the system.
        restore_threshold: usage / undropped-capacity ratio below which
            parameters are restored (the paper uses 50 %).
        coordinated_exchange: enable the coordinated KV exchange of §4.2
            (disable only for the ablation).
        use_lookahead: enable the lookahead batch formulation of §4.3
            (disable only for the ablation).
        lookahead_min_tokens: floor for the MIN threshold of Figure 11.
        drop_cooldown_s: minimum spacing between successive drop operations.
        restore_cooldown_s: minimum time after a drop before restoration is
            considered (avoids drop/restore oscillation).
    """

    overload_threshold: float = 0.92
    headroom_fraction: float = 0.10
    restore_threshold: float = 0.5
    coordinated_exchange: bool = True
    use_lookahead: bool = True
    lookahead_min_tokens: int = 256
    drop_cooldown_s: float = 10.0
    restore_cooldown_s: float = 20.0

    def __post_init__(self) -> None:
        if not 0 < self.overload_threshold <= 1.5:
            raise ValueError("overload_threshold must be in (0, 1.5]")
        if not 0 < self.restore_threshold <= 1:
            raise ValueError("restore_threshold must be in (0, 1]")


class KunServeController:
    """Cluster-level brain of parameter-centric memory management."""

    def __init__(self, config: Optional[KunServeConfig] = None) -> None:
        self.config = config if config is not None else KunServeConfig()
        self.system: Optional[ServingSystemAPI] = None
        self.exchange: Optional[KVExchangeCoordinator] = None
        self.global_manager: Optional[GlobalMemoryManager] = None
        self.restore_manager: Optional[RestoreManager] = None
        self.cost_model: Optional[BatchCostModel] = None
        self.lookahead_former: Optional[MicrobatchFormer] = None
        self._last_drop_time: float = -1e9
        self.drop_reports: List[DropExecutionReport] = []

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, system: ServingSystemAPI) -> None:
        """Bind to a serving system: fit the cost model, build managers."""
        self.system = system
        kv_token_bytes = kv_bytes_per_token(system.model)
        self.exchange = KVExchangeCoordinator(
            system.loop,
            system.fabric,
            coordinated=self.config.coordinated_exchange,
            kv_token_bytes=kv_token_bytes,
        )
        self.cost_model = self._fit_cost_model(system)
        if self.config.use_lookahead and self.cost_model is not None:
            self.lookahead_former = make_lookahead_former(
                self.cost_model, min_tokens_floor=self.config.lookahead_min_tokens
            )
        self.global_manager = GlobalMemoryManager(
            system,
            self.exchange,
            lookahead_former=self.lookahead_former,
            headroom_fraction=self.config.headroom_fraction,
        )
        self.restore_manager = RestoreManager(
            system, self.exchange, usage_threshold=self.config.restore_threshold
        )

    def _fit_cost_model(self, system: ServingSystemAPI) -> Optional[BatchCostModel]:
        """Offline profiling + least-squares fit (§4.3)."""
        groups = [g for g in system.groups if g.active and g.instances]
        if not groups:
            return None
        latency_model = groups[0].instances[0].latency
        samples = generate_profiling_samples(latency_model)
        return BatchCostModel(fit_cost_model(samples))

    # ------------------------------------------------------------------
    # Monitor hook
    # ------------------------------------------------------------------
    def on_monitor_tick(self, snapshots: List[Dict[str, float]], now: float) -> None:
        """React to the monitor's periodic load snapshot."""
        if self.system is None or self.global_manager is None:
            raise RuntimeError("controller is not attached to a serving system")
        if self._is_overloaded(snapshots):
            if now - self._last_drop_time >= self.config.drop_cooldown_s:
                report = self.global_manager.handle_overload(now)
                if report is not None:
                    self._last_drop_time = now
                    self.drop_reports.append(report)
            return
        if now - self._last_drop_time >= self.config.restore_cooldown_s:
            assert self.restore_manager is not None
            self.restore_manager.maybe_restore(now)

    def _is_overloaded(self, snapshots: List[Dict[str, float]]) -> bool:
        """Cluster-wide overload test on the monitor snapshot."""
        total_capacity = sum(s["kv_capacity_bytes"] for s in snapshots)
        total_demand = sum(s["kv_demand_bytes"] for s in snapshots)
        if total_capacity <= 0:
            return False
        if total_demand > self.config.overload_threshold * total_capacity:
            return True
        # A scheduler already blocked on memory with queued work is an
        # overload even if the aggregate ratio looks fine (fragmentation
        # across groups), provided spare capacity elsewhere cannot absorb it
        # (that case is the dispatcher/migration's job, not a drop).
        blocked_demand = sum(
            s["kv_demand_bytes"] - s["kv_capacity_bytes"]
            for s in snapshots
            if s["memory_blocked"] > 0 and s["kv_demand_bytes"] > s["kv_capacity_bytes"]
        )
        spare = total_capacity - total_demand
        return blocked_demand > max(0.0, spare)
