"""Local (per-instance) memory manager: executes drop / restore plans.

The global memory manager decides *which* layers each instance keeps; the
local manager performs the mechanism on one instance: freeing the dropped
layers' physical chunks and remapping them into the KV-cache region via the
CUDA-VMM analog (§4.1), or the reverse for restoration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from repro.engine.instance import ServingInstance
from repro.memory.unified import DropResult, RestoreResult


@dataclass
class LocalDropOutcome:
    """What one instance did when executing its part of a drop plan."""

    instance_id: int
    kept_layers: List[int]
    dropped_layers: List[int]
    freed_bytes: int
    remap_latency_s: float


@dataclass
class LocalRestoreOutcome:
    """What one instance did when executing its part of a restore."""

    instance_id: int
    restored_layers: List[int]
    transfer_bytes: int
    remap_latency_s: float


class LocalMemoryManager:
    """Thin executor of drop / restore plans on a single instance."""

    def __init__(self, instance: ServingInstance) -> None:
        self.instance = instance

    def execute_drop(self, keep_layers: Iterable[int]) -> LocalDropOutcome:
        """Drop every resident layer not in ``keep_layers``.

        The freed physical memory is immediately remapped behind the KV
        region, so the instance's KV capacity grows by the freed bytes.
        """
        keep = set(keep_layers)
        resident = set(self.instance.memory.resident_layers)
        to_drop = sorted(resident - keep)
        result: DropResult = self.instance.memory.drop_layers(to_drop)
        return LocalDropOutcome(
            instance_id=self.instance.instance_id,
            kept_layers=sorted(keep & resident),
            dropped_layers=result.dropped_layers,
            freed_bytes=result.freed_bytes,
            remap_latency_s=result.remap_latency_s,
        )

    def can_restore(self, layers: Iterable[int]) -> bool:
        """Is there enough free KV memory to take the layers back?"""
        return self.instance.memory.can_restore_layers(layers)

    def execute_restore(self, layers: Iterable[int]) -> LocalRestoreOutcome:
        """Reclaim KV memory for ``layers`` and mark them resident.

        The returned ``transfer_bytes`` must be pulled over the network (or
        from host DRAM for fault recovery) by the caller.
        """
        result: RestoreResult = self.instance.memory.restore_layers(layers)
        return LocalRestoreOutcome(
            instance_id=self.instance.instance_id,
            restored_layers=result.restored_layers,
            transfer_bytes=result.transfer_bytes,
            remap_latency_s=result.remap_latency_s,
        )

    def missing_layers(self, num_layers: int) -> List[int]:
        """Layers of the full model this instance does not currently hold."""
        resident = self.instance.memory.resident_layers
        return [layer for layer in range(num_layers) if layer not in resident]
