"""Global memory manager: turns overload events into executed drop plans.

Workflow (§3, Figure 4): the monitor detects an overload and invokes the
global memory manager (➀); it computes the memory requirement ``R``,
generates a drop plan (Figure 6), forwards it to the local managers of the
involved instances (➁), re-schedules queued and ongoing requests onto the
merged groups executing with pipeline parallelism (➂), and hands the KV of
ongoing requests to the coordinated exchange (§4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.drop_plan import (
    DropPlan,
    PlanGroup,
    balanced_layer_assignment,
    generate_drop_plan,
)
from repro.core.interfaces import ServingSystemAPI
from repro.core.kv_exchange import KVExchangeCoordinator
from repro.core.local_manager import LocalMemoryManager
from repro.engine.group import MicrobatchFormer, ServingGroup
from repro.engine.instance import ServingInstance
from repro.models.memory import param_bytes


@dataclass
class DropExecutionReport:
    """Summary of one executed drop operation (for metrics / tests)."""

    time: float
    plan: DropPlan
    merged_group_ids: List[Tuple[int, ...]] = field(default_factory=list)
    new_group_ids: List[int] = field(default_factory=list)
    freed_bytes: int = 0
    exchanged_bytes: float = 0.0
    exchanged_requests: int = 0


class GlobalMemoryManager:
    """Generates and executes drop plans across the cluster."""

    def __init__(
        self,
        system: ServingSystemAPI,
        exchange: KVExchangeCoordinator,
        *,
        lookahead_former: Optional[MicrobatchFormer] = None,
        headroom_fraction: float = 0.10,
    ) -> None:
        if not 0 <= headroom_fraction < 1:
            raise ValueError("headroom_fraction must be in [0, 1)")
        self.system = system
        self.exchange = exchange
        self.lookahead_former = lookahead_former
        self.headroom_fraction = headroom_fraction
        self.reports: List[DropExecutionReport] = []

    # ------------------------------------------------------------------
    # Requirement computation
    # ------------------------------------------------------------------
    def required_bytes(self) -> int:
        """Memory requirement ``R``: queued demand not covered by free KV.

        Counts in-processing and head-of-line queued requests (the standard
        load-accounting the paper adopts from Llumnix) plus a headroom
        fraction so the system does not immediately re-overload from decode
        growth.
        """
        total_capacity = 0
        total_demand = 0
        for group in self.system.groups:
            if not group.active:
                continue
            total_capacity += group.kv_capacity_bytes()
            total_demand += group.kv_demand_bytes()
        headroom = int(self.headroom_fraction * total_capacity)
        return max(0, total_demand + headroom - total_capacity)

    # ------------------------------------------------------------------
    # Plan generation + execution
    # ------------------------------------------------------------------
    def handle_overload(self, now: float, required_bytes: Optional[int] = None) -> Optional[DropExecutionReport]:
        """Generate and execute a drop plan.  Returns None when no merge is
        possible (single group left) or nothing needs to be freed."""
        if required_bytes is None:
            required_bytes = self.required_bytes()
        if required_bytes <= 0:
            return None
        active_groups = [g for g in self.system.groups if g.active]
        plan_groups = [
            PlanGroup(group_ids=(group.group_id,), num_instances=len(group.instances))
            for group in active_groups
        ]
        plan = generate_drop_plan(plan_groups, required_bytes, param_bytes(self.system.model))
        if not plan.merged_groups:
            return None
        report = DropExecutionReport(time=now, plan=plan)
        for merged_ids in plan.merged_groups:
            new_group = self._execute_merge(merged_ids, now, report)
            report.new_group_ids.append(new_group.group_id)
            report.merged_group_ids.append(merged_ids)
        self.system.metrics.mark_event(
            now,
            "drop",
            freed_bytes=report.freed_bytes,
            merged_groups=len(report.merged_group_ids),
            feasible=plan.feasible,
        )
        self.reports.append(report)
        return report

    def _execute_merge(
        self, group_ids: Tuple[int, ...], now: float, report: DropExecutionReport
    ) -> ServingGroup:
        groups = [g for g in self.system.groups if g.group_id in group_ids and g.active]
        instances: List[ServingInstance] = []
        prior_owner: Dict[int, ServingInstance] = {}
        kv_tokens: Dict[int, int] = {}
        for group in groups:
            for instance in group.instances:
                instances.append(instance)
            owner_instance = group.instances[0]
            for request in group.scheduler.running:
                prior_owner[request.request_id] = owner_instance
                kv_tokens[request.request_id] = group.kv.tokens_of(request.request_id)

        # 1. Drop parameters: each instance keeps only its assigned slice.
        assignment = balanced_layer_assignment(self.system.model.num_layers, len(instances))
        for instance, layers in zip(instances, assignment):
            outcome = LocalMemoryManager(instance).execute_drop(layers)
            report.freed_bytes += outcome.freed_bytes

        # 2. Build the merged group (its KV capacity now includes the freed
        #    parameter memory) and move every request over.
        new_group = self.system.create_group(
            instances, assignment=assignment, microbatch_former=self.lookahead_former
        )
        for group in groups:
            self._transfer_requests(group, new_group)
            self.system.retire_group(group)

        # 3. Exchange the KV of ongoing requests so every stage holds the
        #    cache for its layers.
        exchange_plan = self.exchange.plan_for_merge(new_group, prior_owner, kv_tokens)
        self.exchange.execute(exchange_plan, new_group)
        report.exchanged_bytes += exchange_plan.total_bytes
        report.exchanged_requests += exchange_plan.num_requests
        new_group.kick()
        return new_group

    @staticmethod
    def _transfer_requests(source: ServingGroup, destination: ServingGroup) -> None:
        """Move all of ``source``'s requests into ``destination``."""
        for request in list(source.scheduler.running):
            tokens = source.kv.tokens_of(request.request_id)
            source.scheduler.remove_request(request)
            destination.adopt_running(request, tokens)
        # Preserve FCFS order for queued requests: they are re-enqueued in
        # arrival order by the destination scheduler.
        waiting = sorted(
            list(source.scheduler.waiting), key=lambda r: (r.arrival_time, r.request_id)
        )
        for request in waiting:
            source.scheduler.remove_request(request)
            destination.adopt_waiting(request)
        for request in list(source.scheduler.swapped):
            source.scheduler.remove_request(request)
            request.reset_for_recompute()
            destination.adopt_waiting(request)
