"""Dynamic parameter restoration (§4.4).

Pipelined execution is only worthwhile while memory is scarce: it reloads
weights more often and suffers bubbles.  Once the KV demand drops below a
threshold (50 % of the *undropped* capacity), KunServe pulls the dropped
parameters back — over the network, overlapped with serving, and at lower
priority than pipeline activations — and then splits the merged group back
into independent single-instance groups, gathering each ongoing request's
KV onto its new home instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster.network import Transfer, TransferPriority
from repro.core.drop_plan import balanced_layer_assignment
from repro.core.interfaces import ServingSystemAPI
from repro.core.kv_exchange import KVExchangeCoordinator
from repro.core.local_manager import LocalMemoryManager
from repro.engine.group import ServingGroup
from repro.engine.instance import ServingInstance
from repro.models.memory import param_bytes


@dataclass
class RestoreOperation:
    """An in-flight restoration of one merged group."""

    group: ServingGroup
    started_at: float
    pending_transfers: int = 0
    transfer_bytes: float = 0.0
    completed: bool = False


@dataclass
class RestoreReport:
    """Summary of a finished restoration (for metrics / tests)."""

    group_id: int
    started_at: float
    finished_at: float
    transfer_bytes: float
    new_group_ids: List[int] = field(default_factory=list)


class RestoreManager:
    """Decides when and how to restore dropped parameters."""

    def __init__(
        self,
        system: ServingSystemAPI,
        exchange: KVExchangeCoordinator,
        *,
        usage_threshold: float = 0.5,
    ) -> None:
        if not 0 < usage_threshold <= 1:
            raise ValueError("usage_threshold must be in (0, 1]")
        self.system = system
        self.exchange = exchange
        self.usage_threshold = usage_threshold
        self._inflight: Dict[int, RestoreOperation] = {}
        self.reports: List[RestoreReport] = []

    # ------------------------------------------------------------------
    # Trigger
    # ------------------------------------------------------------------
    def undropped_kv_capacity_bytes(self, group: ServingGroup) -> int:
        """KV capacity the group's instances would have with full replicas."""
        full_params = param_bytes(self.system.model)
        total = 0
        for instance in group.instances:
            usable = instance.memory.pool.total_bytes
            total += max(0, usable - full_params)
        return total

    def should_restore(self, group: ServingGroup) -> bool:
        """Is the group merged, idle enough, and not already restoring?"""
        if group.num_stages <= 1 or not group.active:
            return False
        if group.group_id in self._inflight:
            return False
        if self.exchange.has_inflight(group):
            return False
        undropped = self.undropped_kv_capacity_bytes(group)
        if undropped <= 0:
            return False
        demand = max(group.kv_used_bytes(), group.kv_demand_bytes())
        return demand < self.usage_threshold * undropped

    def maybe_restore(self, now: float) -> List[RestoreOperation]:
        """Start restoration for every group that qualifies."""
        started = []
        for group in list(self.system.groups):
            if self.should_restore(group):
                operation = self.start_restore(group, now)
                if operation is not None:
                    started.append(operation)
        return started

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def start_restore(self, group: ServingGroup, now: float) -> Optional[RestoreOperation]:
        """Begin pulling missing parameters for every instance of ``group``.

        The pull happens over the instances' NICs at BULK priority so
        pipeline activations keep going (the coordinated-transfer rule of
        §4.4).  Memory is only re-purposed once all transfers finish.
        """
        num_layers = self.system.model.num_layers
        operation = RestoreOperation(group=group, started_at=now)
        transfers = 0
        for instance in group.instances:
            missing = LocalMemoryManager(instance).missing_layers(num_layers)
            if not missing:
                continue
            if not instance.memory.can_restore_layers(missing):
                # Not enough free KV memory yet; try again on a later tick.
                return None
            size = len(missing) * instance.memory.layer_param_bytes
            source = self._parameter_source(group, instance)
            transfers += 1
            operation.transfer_bytes += size
            self.system.fabric.submit(
                source.nic_node(),
                instance.nic_node(),
                size,
                priority=TransferPriority.BULK,
                tag=f"restore-params-group{group.group_id}-inst{instance.instance_id}",
                on_complete=lambda t, op=operation: self._transfer_done(op, t),
            )
        if transfers == 0:
            return None
        operation.pending_transfers = transfers
        self._inflight[group.group_id] = operation
        self.system.metrics.mark_event(
            now, "restore_start", group_id=group.group_id, transfer_bytes=operation.transfer_bytes
        )
        return operation

    def _parameter_source(self, group: ServingGroup, target: ServingInstance) -> ServingInstance:
        """Pick a peer instance to pull the missing layers from.

        Any instance outside the group still holds a full replica; prefer
        one on a different server so pulls spread across NICs.  Fall back to
        a group member (which holds at least the layers it kept).
        """
        for candidate_group in self.system.groups:
            if not candidate_group.active or candidate_group is group:
                continue
            for instance in candidate_group.instances:
                if instance.server_id != target.server_id:
                    return instance
        peers = [inst for inst in group.instances if inst is not target]
        return peers[0] if peers else target

    def _transfer_done(self, operation: RestoreOperation, _transfer: Transfer) -> None:
        operation.pending_transfers -= 1
        if operation.pending_transfers > 0 or operation.completed:
            return
        operation.completed = True
        self._finish_restore(operation)

    def _finish_restore(self, operation: RestoreOperation) -> None:
        group = operation.group
        now = self.system.loop.now
        num_layers = self.system.model.num_layers
        if not group.active:
            self._inflight.pop(group.group_id, None)
            return

        # 1. Reclaim KV memory and mark the layers resident on every instance.
        for instance in group.instances:
            manager = LocalMemoryManager(instance)
            missing = manager.missing_layers(num_layers)
            if missing and manager.can_restore(missing):
                manager.execute_restore(missing)
        # The group's aggregate KV shrank; reflect that before splitting.
        group.sync_kv_capacity()

        # 2. Split the merged group back into single-instance groups and
        #    spread its requests across them (balanced by KV bytes).
        new_groups = [
            self.system.create_group([instance], assignment=[list(range(num_layers))])
            for instance in group.instances
        ]
        new_owner: Dict[int, ServingInstance] = {}
        kv_tokens: Dict[int, int] = {}
        loads = {g.group_id: 0 for g in new_groups}
        running = sorted(
            group.scheduler.running, key=lambda r: group.kv.tokens_of(r.request_id), reverse=True
        )
        for request in running:
            tokens = group.kv.tokens_of(request.request_id)
            kv_tokens[request.request_id] = tokens
            target = min(new_groups, key=lambda g: loads[g.group_id])
            loads[target.group_id] += tokens
            new_owner[request.request_id] = target.instances[0]

        # Plan the KV gather while the old group still knows the layout.
        gather_plan = self.exchange.plan_for_split(group, new_owner, kv_tokens)

        for request in running:
            tokens = kv_tokens.get(request.request_id, 0)
            group.scheduler.remove_request(request)
            target_instance = new_owner[request.request_id]
            target_group = next(g for g in new_groups if g.instances[0] is target_instance)
            target_group.adopt_running(request, tokens)
        waiting = sorted(
            list(group.scheduler.waiting), key=lambda r: (r.arrival_time, r.request_id)
        )
        for index, request in enumerate(waiting):
            group.scheduler.remove_request(request)
            new_groups[index % len(new_groups)].adopt_waiting(request)

        self.system.retire_group(group)
        self._inflight.pop(group.group_id, None)

        # 3. Gather each moved request's KV onto its new home.
        for move in gather_plan.moves:
            owner_instance = new_owner[move.request.request_id]
            owner_group = next(g for g in new_groups if g.instances[0] is owner_instance)
            single_plan = type(gather_plan)(moves=[move])
            self.exchange.execute(single_plan, owner_group)

        report = RestoreReport(
            group_id=group.group_id,
            started_at=operation.started_at,
            finished_at=now,
            transfer_bytes=operation.transfer_bytes,
            new_group_ids=[g.group_id for g in new_groups],
        )
        self.reports.append(report)
        self.system.metrics.mark_event(
            now,
            "restore_end",
            group_id=group.group_id,
            new_groups=len(new_groups),
            transfer_bytes=operation.transfer_bytes,
        )
        for new_group in new_groups:
            new_group.kick()

    @property
    def restoring_group_ids(self) -> List[int]:
        return list(self._inflight.keys())
