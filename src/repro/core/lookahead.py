"""Lookahead batch formulation (§4.3, Figure 10/11).

Under overloading many requests are queued, so instead of forming
microbatches greedily by token count (which balances tokens, not execution
time), KunServe looks ahead over *all* scheduled chunks and recursively
splits them into cost-balanced microbatches using the fitted cost model:

1. start with a single microbatch containing every chunk;
2. if the microbatch holds fewer than ``MIN`` tokens, stop splitting;
3. otherwise split it into two halves of (approximately) equal *cost* —
   splitting a prefill chunk mid-way when necessary — and recurse.

The result is a set of microbatches whose execution times are balanced, so
pipeline bubbles (Figure 8) shrink dramatically.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.cost_model import BatchCostModel
from repro.engine.batch import MicroBatch, ScheduledChunk
from repro.engine.group import MicrobatchFormer


def _split_chunk_by_cost(
    chunk: ScheduledChunk, target_cost: float, cost_model: BatchCostModel
) -> Optional[int]:
    """Token count at which ``chunk``'s cost reaches ``target_cost``.

    Returns None when the chunk cannot or should not be split (decode
    chunks, or a split point at the boundaries).  Binary search over the
    token count — chunk cost is monotonic in tokens.
    """
    if chunk.is_decode or chunk.new_tokens <= 1:
        return None
    low, high = 1, chunk.new_tokens - 1
    best = None
    while low <= high:
        mid = (low + high) // 2
        cost = cost_model.chunk_cost(chunk.prefix_tokens, mid)
        if cost <= target_cost:
            best = mid
            low = mid + 1
        else:
            high = mid - 1
    return best


def _split_balanced(
    batch: MicroBatch, cost_model: BatchCostModel
) -> Optional[tuple]:
    """Split ``batch`` into two microbatches of roughly equal cost.

    Costs accumulate *marginally*: every chunk after the first in a
    microbatch shares the weight loads, which Eq. 3 models by subtracting
    ``lam`` per additional chunk — ignoring that would make decode-heavy
    halves look far more expensive than they are and produce degenerate
    splits.
    """
    total_cost = cost_model.microbatch_cost(batch.chunks)
    if total_cost <= 0 or len(batch.chunks) == 0:
        return None
    target = total_cost / 2.0
    lam = cost_model.params.lam
    chunks = list(batch.chunks)
    first = MicroBatch()
    second = MicroBatch()
    accumulated = 0.0
    index = 0
    while index < len(chunks):
        chunk = chunks[index]
        cost = cost_model.chunk_cost_of(chunk)
        marginal = cost if not first.chunks else max(0.0, cost - lam)
        if accumulated + marginal <= target:
            first.add(chunk)
            accumulated += marginal
            index += 1
            continue
        # The chunk straddles the cost boundary: split it if we can.
        remaining_budget = target - accumulated
        if first.chunks:
            remaining_budget += lam
        split_tokens = _split_chunk_by_cost(chunk, remaining_budget, cost_model)
        if split_tokens is not None and 0 < split_tokens < chunk.new_tokens:
            head, tail = chunk.split(split_tokens)
            first.add(head)
            second.add(tail)
        elif not first.chunks:
            # Unsplittable chunk bigger than half the batch: best effort.
            first.add(chunk)
        else:
            second.add(chunk)
        index += 1
        break
    for chunk in chunks[index:]:
        second.add(chunk)
    if not first.chunks or not second.chunks:
        return None
    return first, second


def lookahead_microbatches(
    chunks: List[ScheduledChunk],
    cost_model: BatchCostModel,
    *,
    min_tokens: int = 256,
    max_microbatches: int = 8,
) -> List[MicroBatch]:
    """Divide-and-conquer cost-balanced microbatch formation (Figure 11).

    ``min_tokens`` is the MIN threshold of Figure 11 (stop splitting batches
    that already have few tokens); ``max_microbatches`` bounds the leaf count
    so per-microbatch weight reloads do not dominate when costs are skewed.
    """
    if min_tokens <= 0:
        raise ValueError("min_tokens must be positive")
    if max_microbatches <= 0:
        raise ValueError("max_microbatches must be positive")
    initial = MicroBatch(chunks=list(chunks))
    if not initial.chunks:
        return []

    def balance(batch: MicroBatch, leaf_budget: int) -> List[MicroBatch]:
        if leaf_budget <= 1 or batch.total_new_tokens <= min_tokens:
            return [batch]
        split = _split_balanced(batch, cost_model)
        if split is None:
            return [batch]
        first, second = split
        left_budget = leaf_budget // 2
        right_budget = leaf_budget - left_budget
        return balance(first, left_budget) + balance(second, right_budget)

    result = balance(initial, max_microbatches)
    return [microbatch for microbatch in result if microbatch.chunks]


def make_lookahead_former(
    cost_model: BatchCostModel,
    *,
    min_tokens_floor: int = 256,
    microbatches_per_stage: int = 1,
) -> MicrobatchFormer:
    """Build a :class:`MicrobatchFormer` for serving groups.

    The ``MIN`` threshold of Figure 11 is derived online by dividing the
    total token count by the desired number of microbatches (one per stage
    keeps every stage busy without shrinking microbatches so much that
    per-microbatch weight reloads dominate), floored at ``min_tokens_floor``.
    """

    def former(chunks: List[ScheduledChunk], num_stages: int) -> List[MicroBatch]:
        if not chunks:
            return []
        target_microbatches = max(2, num_stages * microbatches_per_stage)
        prefill_chunks = [chunk for chunk in chunks if not chunk.is_decode]
        decode_chunks = [chunk for chunk in chunks if chunk.is_decode]

        if prefill_chunks:
            total_tokens = sum(chunk.new_tokens for chunk in prefill_chunks)
            min_tokens = max(min_tokens_floor, total_tokens // target_microbatches)
            microbatches = lookahead_microbatches(
                prefill_chunks,
                cost_model,
                min_tokens=min_tokens,
                max_microbatches=target_microbatches,
            )
        else:
            microbatches = []

        if not microbatches:
            microbatches = [MicroBatch() for _ in range(min(target_microbatches, max(1, len(decode_chunks))))]

        # Decode chunks are homogeneous (one token each); spreading them
        # evenly keeps every microbatch's decode work identical so the
        # cost-balanced prefill split fully determines the balance.  The
        # chunk lists are appended to directly: this round-robin runs once
        # per running request per iteration.
        num_microbatches = len(microbatches)
        chunk_lists = [microbatch.chunks for microbatch in microbatches]
        for index, chunk in enumerate(decode_chunks):
            chunk_lists[index % num_microbatches].append(chunk)
        return [microbatch for microbatch in microbatches if microbatch.chunks]

    return former
