"""Cluster topology: servers, GPUs, and the shared network fabric."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cluster.gpu import GPU, GPUSpec
from repro.cluster.network import NetworkFabric
from repro.cluster.server import Server
from repro.simulation.event_loop import EventLoop


@dataclass(frozen=True)
class ClusterSpec:
    """Static description of a homogeneous cluster.

    Attributes:
        name: label for reports.
        gpu_spec: the GPU model every server hosts.
        num_servers: number of servers.
        gpus_per_server: GPUs per server (they share an NVLink domain).
        nic_bandwidth: per-server unidirectional RDMA bandwidth, bytes/s.
        pcie_bandwidth: per-server GPU<->host bandwidth, bytes/s.
        host_dram_bytes: per-server DRAM usable as KV swap space.
    """

    name: str
    gpu_spec: GPUSpec
    num_servers: int
    gpus_per_server: int
    nic_bandwidth: float
    pcie_bandwidth: float
    host_dram_bytes: int = 1024 * 1024 ** 3

    def __post_init__(self) -> None:
        if self.num_servers <= 0:
            raise ValueError("num_servers must be positive")
        if self.gpus_per_server <= 0:
            raise ValueError("gpus_per_server must be positive")

    @property
    def total_gpus(self) -> int:
        return self.num_servers * self.gpus_per_server

    @property
    def total_hbm_bytes(self) -> int:
        return self.total_gpus * self.gpu_spec.hbm_bytes


class Cluster:
    """A concrete cluster instance bound to an event loop.

    The cluster owns the servers/GPUs and the :class:`NetworkFabric`.  Serving
    instances (groups of GPUs holding one model copy) are carved out of the
    cluster by :mod:`repro.serving.system` based on the model's parallelism
    configuration.
    """

    def __init__(self, spec: ClusterSpec, loop: Optional[EventLoop] = None) -> None:
        self.spec = spec
        self.loop = loop if loop is not None else EventLoop()
        self.servers: List[Server] = []
        self.fabric = NetworkFabric(self.loop)
        self._build()

    def _build(self) -> None:
        gpu_id = 0
        for server_id in range(self.spec.num_servers):
            server = Server(
                server_id=server_id,
                gpus=[],
                nic_bandwidth=self.spec.nic_bandwidth,
                pcie_bandwidth=self.spec.pcie_bandwidth,
                host_dram_bytes=self.spec.host_dram_bytes,
            )
            for _ in range(self.spec.gpus_per_server):
                server.add_gpu(self.spec.gpu_spec, gpu_id)
                gpu_id += 1
            self.servers.append(server)
            # Each server contributes two fabric endpoints: its RDMA NIC and
            # its PCIe root complex (used only by swap traffic).
            self.fabric.add_node(self.nic_node(server_id), server.nic_bandwidth)
            self.fabric.add_node(self.host_node(server_id), server.pcie_bandwidth)

    # ------------------------------------------------------------------
    # Naming helpers for fabric endpoints
    # ------------------------------------------------------------------
    @staticmethod
    def nic_node(server_id: int) -> str:
        """Fabric endpoint name for a server's RDMA NIC."""
        return f"server{server_id}/nic"

    @staticmethod
    def host_node(server_id: int) -> str:
        """Fabric endpoint name for a server's host DRAM (PCIe)."""
        return f"server{server_id}/host"

    # ------------------------------------------------------------------
    # Topology queries
    # ------------------------------------------------------------------
    @property
    def gpus(self) -> List[GPU]:
        return [gpu for server in self.servers for gpu in server.gpus]

    @property
    def num_gpus(self) -> int:
        return self.spec.total_gpus

    def server_of_gpu(self, gpu_id: int) -> Server:
        for server in self.servers:
            for gpu in server.gpus:
                if gpu.gpu_id == gpu_id:
                    return server
        raise KeyError(f"no such GPU: {gpu_id}")

    def gpu_groups(self, gpus_per_instance: int) -> List[List[GPU]]:
        """Partition the cluster's GPUs into instance-sized groups.

        Groups never straddle a server when a server has enough GPUs (this
        mirrors the paper: an instance lives inside one server unless the
        model does not fit, which never happens in the evaluated setups).
        """
        if gpus_per_instance <= 0:
            raise ValueError("gpus_per_instance must be positive")
        groups: List[List[GPU]] = []
        if gpus_per_instance <= self.spec.gpus_per_server:
            for server in self.servers:
                for start in range(0, server.num_gpus, gpus_per_instance):
                    chunk = server.gpus[start : start + gpus_per_instance]
                    if len(chunk) == gpus_per_instance:
                        groups.append(list(chunk))
        else:
            # Instance spans servers (e.g. Llama-3.1-405B on 16 GPUs).
            flat = self.gpus
            for start in range(0, len(flat), gpus_per_instance):
                chunk = flat[start : start + gpus_per_instance]
                if len(chunk) == gpus_per_instance:
                    groups.append(list(chunk))
        return groups

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Cluster(name={self.spec.name!r}, servers={self.spec.num_servers}, "
            f"gpus={self.num_gpus})"
        )
