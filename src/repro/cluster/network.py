"""Bandwidth-shared network fabric with priority classes.

The fabric models each endpoint (a serving instance's NIC, or a server's
PCIe root for swap traffic) as a node with a fixed unidirectional bandwidth.
Transfers between two nodes progress at the minimum of their fair share at
the source and at the destination.  Two priority classes exist:

* ``ACTIVATION`` -- tiny, latency-critical pipeline activation transfers.
* ``BULK`` -- KV-cache exchange, migration, swap, and parameter restore
  traffic.

High-priority transfers take the whole link; bulk transfers share whatever
bandwidth is left.  This is the mechanism KunServe's coordinated exchange
(§4.2) relies on: KV chunks are submitted at BULK priority so activations
are never stalled behind them.

Rates are recomputed whenever the set of active transfers at any endpoint
changes (a fluid-flow approximation), and the single completion event for
the earliest-finishing transfer is rescheduled accordingly — standard
progress-based network simulation.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.simulation.event_loop import Event, EventLoop


class TransferPriority(enum.IntEnum):
    """Priority classes for fabric transfers (lower value = higher priority)."""

    ACTIVATION = 0
    BULK = 1


@dataclass(slots=True)
class Transfer:
    """An in-flight data transfer between two fabric nodes."""

    transfer_id: int
    src: str
    dst: str
    size_bytes: float
    priority: TransferPriority
    on_complete: Optional[Callable[["Transfer"], None]] = None
    tag: str = ""

    remaining_bytes: float = field(init=False)
    submitted_at: float = field(default=0.0)
    completed_at: Optional[float] = field(default=None)
    current_rate: float = field(default=0.0)
    _last_update: float = field(default=0.0)
    cancelled: bool = field(default=False)

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError(f"transfer size must be >= 0, got {self.size_bytes}")
        self.remaining_bytes = float(self.size_bytes)

    @property
    def done(self) -> bool:
        return self.completed_at is not None

    @property
    def duration(self) -> Optional[float]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at


@dataclass(frozen=True)
class InterClusterLinkSpec:
    """Static description of a WAN link between two clusters.

    Cross-cluster traffic is qualitatively different from the intra-cluster
    RDMA fabric: bandwidth is one to two orders of magnitude lower and every
    transfer pays a propagation delay regardless of size.  The multicluster
    tier (:mod:`repro.multicluster`) builds one WAN endpoint per cluster
    from this spec, so remote routing and cross-cluster KV migration carry
    a modeled cost instead of being free.

    Attributes:
        bandwidth: per-cluster unidirectional WAN uplink bandwidth, bytes/s.
        latency_s: one-way propagation delay paid before any byte moves.
    """

    bandwidth: float
    latency_s: float

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth}")
        if self.latency_s < 0:
            raise ValueError(f"latency_s must be >= 0, got {self.latency_s}")


class CrossClusterLink:
    """A WAN link between two cluster endpoints of a shared fabric.

    Wraps :meth:`NetworkFabric.submit` with the link's propagation delay:
    a transfer first waits ``latency_s`` simulated seconds (the bytes are
    in flight but no endpoint bandwidth is held), then contends for the
    WAN endpoints' bandwidth under the fabric's fluid-flow model like any
    other transfer.  Both endpoints must already be registered on the
    fabric (the multicluster tier adds one ``cluster{i}/wan`` node per
    cluster).
    """

    def __init__(
        self,
        loop: EventLoop,
        fabric: "NetworkFabric",
        src: str,
        dst: str,
        spec: InterClusterLinkSpec,
    ) -> None:
        for node in (src, dst):
            if not fabric.has_node(node):
                raise KeyError(f"unknown fabric node: {node!r}")
        self._loop = loop
        self._fabric = fabric
        self.src = src
        self.dst = dst
        self.spec = spec
        #: propagation-delay multiplier; chaos WAN degradation raises it
        #: for the degradation window and restores it to 1.0 after.
        self.latency_scale: float = 1.0
        self.bytes_sent: float = 0.0
        self.transfers: int = 0

    def transfer(
        self,
        size_bytes: float,
        *,
        priority: TransferPriority = TransferPriority.BULK,
        on_complete: Optional[Callable[[Transfer], None]] = None,
        tag: str = "",
    ) -> None:
        """Move ``size_bytes`` across the link: latency, then bandwidth."""
        if size_bytes < 0:
            raise ValueError(f"transfer size must be >= 0, got {size_bytes}")
        self.bytes_sent += size_bytes
        self.transfers += 1
        self._loop.schedule(
            self.spec.latency_s * self.latency_scale,
            lambda: self._fabric.submit(
                self.src,
                self.dst,
                size_bytes,
                priority=priority,
                on_complete=on_complete,
                tag=tag,
            ),
            name=f"wan-{tag}" if tag else "wan-transfer",
        )


class NetworkFabric:
    """Fluid-flow network model shared by all instances of a cluster."""

    def __init__(self, loop: EventLoop) -> None:
        self._loop = loop
        self._node_bandwidth: Dict[str, float] = {}
        self._active: Dict[int, Transfer] = {}
        self._counter = itertools.count()
        self.completed_transfers: List[Transfer] = []
        #: single pending completion event, for the transfer that finishes
        #: earliest under the current rates.  Keeping one event instead of
        #: one per transfer avoids O(active) heap churn on every rate change
        #: (the coordinated KV exchange keeps hundreds of transfers live).
        self._next_completion: Optional[Event] = None
        #: per-request span recorder (``repro.trace``); ``None`` when off.
        self.tracer = None

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def add_node(self, name: str, bandwidth: float) -> None:
        """Register an endpoint with unidirectional ``bandwidth`` bytes/s."""
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        self._node_bandwidth[name] = float(bandwidth)

    def has_node(self, name: str) -> bool:
        return name in self._node_bandwidth

    def node_bandwidth(self, name: str) -> float:
        return self._node_bandwidth[name]

    def set_node_bandwidth(self, name: str, bandwidth: float) -> None:
        """Change an endpoint's bandwidth mid-run (chaos WAN degradation).

        In-flight transfers keep the bytes they already moved; rates are
        recomputed under the new capacity and the completion event is
        re-armed, exactly as on any submit/complete/cancel.
        """
        if name not in self._node_bandwidth:
            raise KeyError(f"unknown fabric node: {name!r}")
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        self._node_bandwidth[name] = float(bandwidth)
        self._recompute_rates()

    # ------------------------------------------------------------------
    # Transfers
    # ------------------------------------------------------------------
    def submit(
        self,
        src: str,
        dst: str,
        size_bytes: float,
        *,
        priority: TransferPriority = TransferPriority.BULK,
        on_complete: Optional[Callable[[Transfer], None]] = None,
        tag: str = "",
    ) -> Transfer:
        """Start a transfer of ``size_bytes`` from ``src`` to ``dst``."""
        for node in (src, dst):
            if node not in self._node_bandwidth:
                raise KeyError(f"unknown fabric node: {node!r}")
        transfer = Transfer(
            transfer_id=next(self._counter),
            src=src,
            dst=dst,
            size_bytes=size_bytes,
            priority=priority,
            on_complete=on_complete,
            tag=tag,
            submitted_at=self._loop.now,
        )
        transfer._last_update = self._loop.now
        if size_bytes <= 0:
            # Zero-byte transfers complete immediately (still asynchronously,
            # so callers see a uniform callback discipline).
            self._loop.schedule(0.0, lambda t=transfer: self._finish(t))
            return transfer
        self._active[transfer.transfer_id] = transfer
        self._recompute_rates()
        return transfer

    def cancel(self, transfer: Transfer) -> None:
        """Abort an in-flight transfer; its callback will not run."""
        if transfer.transfer_id not in self._active:
            return
        transfer.cancelled = True
        self._advance_progress()
        del self._active[transfer.transfer_id]
        self._recompute_rates()

    def active_transfers(self, node: Optional[str] = None) -> List[Transfer]:
        """Transfers currently in flight, optionally filtered to one node."""
        transfers = list(self._active.values())
        if node is None:
            return transfers
        return [t for t in transfers if t.src == node or t.dst == node]

    def estimate_transfer_time(
        self, src: str, dst: str, size_bytes: float, *, exclusive: bool = True
    ) -> float:
        """Lower-bound time to move ``size_bytes`` between two nodes.

        With ``exclusive=True`` the estimate assumes the transfer gets the
        whole link; otherwise it accounts for the currently active
        transfers' shares.
        """
        bandwidth = min(self._node_bandwidth[src], self._node_bandwidth[dst])
        if exclusive:
            return size_bytes / bandwidth
        contenders = 1 + len(
            {t.transfer_id for t in self.active_transfers(src)}
            | {t.transfer_id for t in self.active_transfers(dst)}
        )
        return size_bytes * contenders / bandwidth

    # ------------------------------------------------------------------
    # Internal fluid-flow machinery
    # ------------------------------------------------------------------
    def _advance_progress(self) -> None:
        """Apply the current rates to all active transfers up to `now`."""
        now = self._loop.now
        for transfer in self._active.values():
            elapsed = now - transfer._last_update
            if elapsed > 0:
                transfer.remaining_bytes = max(
                    0.0, transfer.remaining_bytes - transfer.current_rate * elapsed
                )
            transfer._last_update = now

    def _recompute_rates(self) -> None:
        """Recompute every active transfer's rate and completion event.

        Runs on every submit/complete/cancel with O(active) cost, so the
        two passes are kept tight: the endpoint counting is unrolled (no
        per-transfer tuple), and progress advancement is fused into the
        rate-assignment pass (each transfer's advance only reads its own
        pre-recompute rate, so fusing is result-identical to advancing all
        transfers first).
        """
        now = self._loop.now
        active = self._active
        # Count per-node demand at each priority level.  Per-node *share*
        # is then computed once per (node, priority) instead of once per
        # transfer endpoint.
        per_node_high: Dict[str, int] = {}
        per_node_total: Dict[str, int] = {}
        total_get = per_node_total.get
        high_get = per_node_high.get
        activation = TransferPriority.ACTIVATION
        for transfer in active.values():
            src = transfer.src
            dst = transfer.dst
            per_node_total[src] = total_get(src, 0) + 1
            per_node_total[dst] = total_get(dst, 0) + 1
            if transfer.priority == activation:
                per_node_high[src] = high_get(src, 0) + 1
                per_node_high[dst] = high_get(dst, 0) + 1

        high_share: Dict[str, float] = {}
        bulk_share: Dict[str, float] = {}
        node_bandwidth = self._node_bandwidth
        for node, total in per_node_total.items():
            bandwidth = node_bandwidth[node]
            high = high_get(node, 0)
            high_share[node] = bandwidth / max(1, high)
            # Bulk transfers share the bandwidth left over after the
            # high-priority class; we conservatively give the high class
            # 90% of the node while it is active.
            leftover = bandwidth * (0.1 if high > 0 else 1.0)
            bulk_share[node] = leftover / max(1, total - high)

        # Pick the transfer that completes earliest under the new rates and
        # keep a single completion event for it.  Ties resolve to the first
        # transfer in insertion order, matching the seq tie-break the heap
        # applied when every transfer carried its own event.
        next_transfer: Optional[Transfer] = None
        next_eta = 0.0
        for transfer in active.values():
            elapsed = now - transfer._last_update
            if elapsed > 0:
                remaining = transfer.remaining_bytes - transfer.current_rate * elapsed
                transfer.remaining_bytes = remaining if remaining > 0.0 else 0.0
            transfer._last_update = now
            share = high_share if transfer.priority == activation else bulk_share
            src_share = share[transfer.src]
            dst_share = share[transfer.dst]
            rate = src_share if src_share <= dst_share else dst_share
            transfer.current_rate = rate
            if rate <= 0:
                continue
            eta = transfer.remaining_bytes / rate
            if next_transfer is None or eta < next_eta:
                next_transfer = transfer
                next_eta = eta

        if self._next_completion is not None:
            self._next_completion.cancel()
            self._next_completion = None
        if next_transfer is not None:
            self._next_completion = self._loop.schedule(
                next_eta,
                lambda t=next_transfer: self._maybe_complete(t),
                name=f"xfer-{next_transfer.transfer_id}",
            )

    def _maybe_complete(self, transfer: Transfer) -> None:
        self._next_completion = None
        if transfer.transfer_id not in self._active:
            # Stale event (the transfer was cancelled); re-arm the chain for
            # the remaining transfers.
            self._recompute_rates()
            return
        self._advance_progress()
        remaining = transfer.remaining_bytes
        rate = transfer.current_rate
        now = self._loop.now
        if remaining > 1e-6 and rate > 0 and now + remaining / rate > now:
            # Floating-point residue the advance underestimated, and the
            # clock can still make progress on it: re-arm with a fresh
            # (tiny) completion event instead of finishing early.
            self._recompute_rates()
            return
        # Done — or a sub-ulp residue that could never advance the clock.
        del self._active[transfer.transfer_id]
        self._finish(transfer)
        self._recompute_rates()

    def _finish(self, transfer: Transfer) -> None:
        transfer.remaining_bytes = 0.0
        transfer.completed_at = self._loop.now
        self.completed_transfers.append(transfer)
        if self.tracer is not None:
            self.tracer.on_transfer(transfer)
        if transfer.on_complete is not None:
            transfer.on_complete(transfer)
