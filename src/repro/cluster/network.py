"""Bandwidth-shared network fabric with priority classes.

The fabric models each endpoint (a serving instance's NIC, or a server's
PCIe root for swap traffic) as a node with a fixed unidirectional bandwidth.
Transfers between two nodes progress at the minimum of their fair share at
the source and at the destination.  Two priority classes exist:

* ``ACTIVATION`` -- tiny, latency-critical pipeline activation transfers.
* ``BULK`` -- KV-cache exchange, migration, swap, and parameter restore
  traffic.

High-priority transfers take the whole link; bulk transfers share whatever
bandwidth is left.  This is the mechanism KunServe's coordinated exchange
(§4.2) relies on: KV chunks are submitted at BULK priority so activations
are never stalled behind them.

Rates are recomputed whenever the set of active transfers at any endpoint
changes (a fluid-flow approximation), and completion events are rescheduled
accordingly — standard progress-based network simulation.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.simulation.event_loop import Event, EventLoop


class TransferPriority(enum.IntEnum):
    """Priority classes for fabric transfers (lower value = higher priority)."""

    ACTIVATION = 0
    BULK = 1


@dataclass
class Transfer:
    """An in-flight data transfer between two fabric nodes."""

    transfer_id: int
    src: str
    dst: str
    size_bytes: float
    priority: TransferPriority
    on_complete: Optional[Callable[["Transfer"], None]] = None
    tag: str = ""

    remaining_bytes: float = field(init=False)
    submitted_at: float = field(default=0.0)
    completed_at: Optional[float] = field(default=None)
    current_rate: float = field(default=0.0)
    _last_update: float = field(default=0.0)
    _completion_event: Optional[Event] = field(default=None, repr=False)
    cancelled: bool = field(default=False)

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError(f"transfer size must be >= 0, got {self.size_bytes}")
        self.remaining_bytes = float(self.size_bytes)

    @property
    def done(self) -> bool:
        return self.completed_at is not None

    @property
    def duration(self) -> Optional[float]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at


class NetworkFabric:
    """Fluid-flow network model shared by all instances of a cluster."""

    def __init__(self, loop: EventLoop) -> None:
        self._loop = loop
        self._node_bandwidth: Dict[str, float] = {}
        self._active: Dict[int, Transfer] = {}
        self._counter = itertools.count()
        self.completed_transfers: List[Transfer] = []

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def add_node(self, name: str, bandwidth: float) -> None:
        """Register an endpoint with unidirectional ``bandwidth`` bytes/s."""
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        self._node_bandwidth[name] = float(bandwidth)

    def has_node(self, name: str) -> bool:
        return name in self._node_bandwidth

    def node_bandwidth(self, name: str) -> float:
        return self._node_bandwidth[name]

    # ------------------------------------------------------------------
    # Transfers
    # ------------------------------------------------------------------
    def submit(
        self,
        src: str,
        dst: str,
        size_bytes: float,
        *,
        priority: TransferPriority = TransferPriority.BULK,
        on_complete: Optional[Callable[[Transfer], None]] = None,
        tag: str = "",
    ) -> Transfer:
        """Start a transfer of ``size_bytes`` from ``src`` to ``dst``."""
        for node in (src, dst):
            if node not in self._node_bandwidth:
                raise KeyError(f"unknown fabric node: {node!r}")
        transfer = Transfer(
            transfer_id=next(self._counter),
            src=src,
            dst=dst,
            size_bytes=size_bytes,
            priority=priority,
            on_complete=on_complete,
            tag=tag,
            submitted_at=self._loop.now,
        )
        transfer._last_update = self._loop.now
        if size_bytes <= 0:
            # Zero-byte transfers complete immediately (still asynchronously,
            # so callers see a uniform callback discipline).
            self._loop.schedule(0.0, lambda t=transfer: self._finish(t))
            return transfer
        self._active[transfer.transfer_id] = transfer
        self._recompute_rates()
        return transfer

    def cancel(self, transfer: Transfer) -> None:
        """Abort an in-flight transfer; its callback will not run."""
        if transfer.transfer_id not in self._active:
            return
        transfer.cancelled = True
        self._advance_progress()
        del self._active[transfer.transfer_id]
        if transfer._completion_event is not None:
            transfer._completion_event.cancel()
        self._recompute_rates()

    def active_transfers(self, node: Optional[str] = None) -> List[Transfer]:
        """Transfers currently in flight, optionally filtered to one node."""
        transfers = list(self._active.values())
        if node is None:
            return transfers
        return [t for t in transfers if t.src == node or t.dst == node]

    def estimate_transfer_time(
        self, src: str, dst: str, size_bytes: float, *, exclusive: bool = True
    ) -> float:
        """Lower-bound time to move ``size_bytes`` between two nodes.

        With ``exclusive=True`` the estimate assumes the transfer gets the
        whole link; otherwise it accounts for the currently active
        transfers' shares.
        """
        bandwidth = min(self._node_bandwidth[src], self._node_bandwidth[dst])
        if exclusive:
            return size_bytes / bandwidth
        contenders = 1 + len(
            {t.transfer_id for t in self.active_transfers(src)}
            | {t.transfer_id for t in self.active_transfers(dst)}
        )
        return size_bytes * contenders / bandwidth

    # ------------------------------------------------------------------
    # Internal fluid-flow machinery
    # ------------------------------------------------------------------
    def _advance_progress(self) -> None:
        """Apply the current rates to all active transfers up to `now`."""
        now = self._loop.now
        for transfer in self._active.values():
            elapsed = now - transfer._last_update
            if elapsed > 0:
                transfer.remaining_bytes = max(
                    0.0, transfer.remaining_bytes - transfer.current_rate * elapsed
                )
            transfer._last_update = now

    def _recompute_rates(self) -> None:
        """Recompute every active transfer's rate and completion event."""
        self._advance_progress()
        # Count per-node demand at each priority level.
        per_node_high: Dict[str, int] = {}
        per_node_total: Dict[str, int] = {}
        for transfer in self._active.values():
            for node in (transfer.src, transfer.dst):
                per_node_total[node] = per_node_total.get(node, 0) + 1
                if transfer.priority == TransferPriority.ACTIVATION:
                    per_node_high[node] = per_node_high.get(node, 0) + 1

        for transfer in self._active.values():
            rate = float("inf")
            for node in (transfer.src, transfer.dst):
                bandwidth = self._node_bandwidth[node]
                high = per_node_high.get(node, 0)
                total = per_node_total.get(node, 0)
                if transfer.priority == TransferPriority.ACTIVATION:
                    share = bandwidth / max(1, high)
                else:
                    # Bulk transfers share the bandwidth left over after the
                    # high-priority class; we conservatively give the high
                    # class 90% of the node while it is active.
                    leftover = bandwidth * (0.1 if high > 0 else 1.0)
                    bulk = total - high
                    share = leftover / max(1, bulk)
                rate = min(rate, share)
            transfer.current_rate = rate

        # Reschedule completion events.
        now = self._loop.now
        for transfer in self._active.values():
            if transfer._completion_event is not None:
                transfer._completion_event.cancel()
                transfer._completion_event = None
            if transfer.current_rate <= 0:
                continue
            eta = transfer.remaining_bytes / transfer.current_rate
            transfer._completion_event = self._loop.schedule(
                eta,
                lambda t=transfer: self._maybe_complete(t),
                name=f"xfer-{transfer.transfer_id}",
            )

    def _maybe_complete(self, transfer: Transfer) -> None:
        if transfer.transfer_id not in self._active:
            return
        self._advance_progress()
        if transfer.remaining_bytes > 1e-6:
            # Rates changed since this event was scheduled; recompute will
            # have scheduled a fresh completion event already.
            return
        del self._active[transfer.transfer_id]
        self._finish(transfer)
        self._recompute_rates()

    def _finish(self, transfer: Transfer) -> None:
        transfer.remaining_bytes = 0.0
        transfer.completed_at = self._loop.now
        self.completed_transfers.append(transfer)
        if transfer.on_complete is not None:
            transfer.on_complete(transfer)
