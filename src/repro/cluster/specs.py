"""Hardware presets matching the paper's testbed (Table 2).

Cluster A: 8 servers x 1 A800-80GB, 200 Gbps RDMA scale-out, no NVLink.
Cluster B: 2 servers x 8 H800-80GB, 300 GB/s NVLink scale-up, 400 Gbps RDMA.
"""

from __future__ import annotations

from repro.cluster.cluster import ClusterSpec
from repro.cluster.gpu import GPUSpec

GB = 1024 ** 3

#: PCIe Gen4 x16 effective bandwidth used for KV swap to host DRAM.
PCIE_GEN4_BW = 25e9

A800_80GB = GPUSpec(
    name="A800-80GB",
    hbm_bytes=80 * GB,
    fp16_tflops=312.0,
    hbm_bandwidth=2.0e12,
    nvlink_bandwidth=0.0,
)

H800_80GB = GPUSpec(
    name="H800-80GB",
    hbm_bytes=80 * GB,
    fp16_tflops=989.0,
    hbm_bandwidth=3.35e12,
    nvlink_bandwidth=300e9,
)


def cluster_a_spec(num_servers: int = 8) -> ClusterSpec:
    """Paper cluster A: ``num_servers`` x 1 A800, 200 Gbps RDMA."""
    return ClusterSpec(
        name="cluster-A",
        gpu_spec=A800_80GB,
        num_servers=num_servers,
        gpus_per_server=1,
        nic_bandwidth=200e9 / 8,
        pcie_bandwidth=PCIE_GEN4_BW,
    )


def cluster_b_spec(num_servers: int = 2) -> ClusterSpec:
    """Paper cluster B: ``num_servers`` x 8 H800, NVLink + 400 Gbps RDMA."""
    return ClusterSpec(
        name="cluster-B",
        gpu_spec=H800_80GB,
        num_servers=num_servers,
        gpus_per_server=8,
        nic_bandwidth=400e9 / 8,
        pcie_bandwidth=PCIE_GEN4_BW,
    )
