"""Server (host) model.

A server groups GPUs that share an NVLink domain and a host NIC.  The host
also exposes DRAM that KV-cache swapping (the InferCept baseline) uses as
swap space, reachable over PCIe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.cluster.gpu import GPU, GPUSpec


@dataclass
class Server:
    """One physical server with ``len(gpus)`` GPUs.

    Attributes:
        server_id: index of the server in the cluster.
        gpus: GPUs hosted by this server.
        nic_bandwidth: unidirectional scale-out (RDMA) bandwidth in bytes/s.
        pcie_bandwidth: GPU<->host DRAM bandwidth in bytes/s, used by swap.
        host_dram_bytes: DRAM available for swapped-out KV cache.
    """

    server_id: int
    gpus: List[GPU] = field(default_factory=list)
    nic_bandwidth: float = 25e9
    pcie_bandwidth: float = 32e9
    host_dram_bytes: int = 1024 * 1024 ** 3

    def __post_init__(self) -> None:
        if self.nic_bandwidth <= 0:
            raise ValueError("nic_bandwidth must be positive")
        if self.pcie_bandwidth <= 0:
            raise ValueError("pcie_bandwidth must be positive")
        for gpu in self.gpus:
            gpu.server_id = self.server_id

    @property
    def num_gpus(self) -> int:
        return len(self.gpus)

    @property
    def total_hbm_bytes(self) -> int:
        return sum(gpu.hbm_bytes for gpu in self.gpus)

    def add_gpu(self, spec: GPUSpec, gpu_id: int) -> GPU:
        """Attach a new GPU of ``spec`` to this server."""
        gpu = GPU(gpu_id=gpu_id, spec=spec, server_id=self.server_id)
        self.gpus.append(gpu)
        return gpu

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Server(id={self.server_id}, gpus={self.num_gpus})"
