"""GPU hardware model.

A GPU is described by its HBM capacity, dense half-precision compute
throughput and HBM bandwidth.  The roofline latency model in
``repro.engine.latency_model`` uses these numbers to turn "execute this
batch of tokens through these layers" into seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class GPUSpec:
    """Static description of one GPU model.

    Attributes:
        name: human readable name, e.g. ``"A800-80GB"``.
        hbm_bytes: usable HBM capacity in bytes.
        fp16_tflops: dense half-precision tensor throughput in TFLOP/s.
        hbm_bandwidth: HBM bandwidth in bytes/s.
        nvlink_bandwidth: unidirectional scale-up bandwidth to peer GPUs in
            the same server, bytes/s (0 when the GPU has no NVLink peers).
    """

    name: str
    hbm_bytes: int
    fp16_tflops: float
    hbm_bandwidth: float
    nvlink_bandwidth: float = 0.0

    def __post_init__(self) -> None:
        if self.hbm_bytes <= 0:
            raise ValueError(f"hbm_bytes must be positive, got {self.hbm_bytes}")
        if self.fp16_tflops <= 0:
            raise ValueError(f"fp16_tflops must be positive, got {self.fp16_tflops}")
        if self.hbm_bandwidth <= 0:
            raise ValueError(f"hbm_bandwidth must be positive, got {self.hbm_bandwidth}")

    @property
    def flops(self) -> float:
        """Dense FP16 throughput in FLOP/s."""
        return self.fp16_tflops * 1e12


@dataclass
class GPU:
    """One physical GPU in the cluster.

    The GPU itself does not track allocations; memory book-keeping happens
    in :mod:`repro.memory` at instance granularity (an instance owns all the
    HBM of its GPUs).  The object exists so topology (which server a GPU
    sits in, NVLink domains) can be reasoned about explicitly.
    """

    gpu_id: int
    spec: GPUSpec
    server_id: int = field(default=-1)

    @property
    def hbm_bytes(self) -> int:
        return self.spec.hbm_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GPU(id={self.gpu_id}, spec={self.spec.name}, server={self.server_id})"
