"""Cluster hardware substrate: GPUs, servers, network fabric.

The paper evaluates on two clusters (Table 2): cluster A with 8 servers of
one A800-80GB each connected by 200 Gbps RDMA, and cluster B with 2 servers
of eight H800-80GB each with 300 GB/s NVLink inside a server and 400 Gbps
RDMA across servers.  This package models exactly those resources: HBM
capacity, roofline compute capability, and a bandwidth-shared network fabric
with priority classes so activation traffic can preempt bulk KV transfers.
"""

from repro.cluster.gpu import GPUSpec, GPU
from repro.cluster.server import Server
from repro.cluster.network import NetworkFabric, Transfer, TransferPriority
from repro.cluster.cluster import Cluster, ClusterSpec
from repro.cluster.specs import (
    A800_80GB,
    H800_80GB,
    PCIE_GEN4_BW,
    cluster_a_spec,
    cluster_b_spec,
)

__all__ = [
    "GPU",
    "GPUSpec",
    "Server",
    "NetworkFabric",
    "Transfer",
    "TransferPriority",
    "Cluster",
    "ClusterSpec",
    "A800_80GB",
    "H800_80GB",
    "PCIE_GEN4_BW",
    "cluster_a_spec",
    "cluster_b_spec",
]
