"""Differential doctor: cell-by-cell comparison of two result documents.

``python -m repro.obs diff A.json B.json`` joins the two documents'
``entries`` on their **cell key** — every string-valued entry field
(scenario, policy, migration, router, ...), which together identify the
swept configuration — and compares every numeric field, after stripping
wall-clock measurement noise (``wall_s``, ``profile`` blocks, cache
counters): those legitimately differ between runs of identical
simulations and must never count as a regression.

A *finding* is a numeric field whose relative change exceeds the
threshold (default 5%).  When **both** sides of a cell carry a
``stage_breakdown`` block (sweeps run with ``--trace``), each finding on
a latency field is augmented with a stage-level attribution via
:func:`repro.trace.attribution.diff_stage_breakdowns` — "serve p99
regressed 18%" becomes "decode mean_s +31%".

Determinism makes the null case exact: a document diffed against itself
reports **zero** findings (the CI smoke and ``tests/test_obs.py`` pin
this), so any finding is a real behaviour change, not noise.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.trace.attribution import diff_stage_breakdowns

#: Per-entry fields that measure the *host*, not the simulation; stripped
#: before comparison so wall-clock jitter never reads as a regression.
WALL_CLOCK_FIELDS = frozenset({"wall_s", "profile"})

#: Top-level document fields stripped for the same reason.
WALL_CLOCK_DOC_FIELDS = frozenset(
    {"wall_s_total", "cache_hits", "cache_misses", "entries"}
)

#: Relative change below which a numeric delta is not a finding.
DEFAULT_REL_THRESHOLD = 0.05

#: Absolute change below which a numeric delta is not a finding (guards
#: ratios hovering at zero from producing infinite relative changes).
DEFAULT_ABS_FLOOR = 1e-9

CellKey = Tuple[Tuple[str, str], ...]


def _cell_key(entry: Dict[str, Any]) -> CellKey:
    """The join key: every string-valued field, sorted by name."""
    return tuple(
        (name, value)
        for name, value in sorted(entry.items())
        if isinstance(value, str)
    )


def _index_entries(entries: Sequence[Dict[str, Any]]) -> Dict[CellKey, Dict[str, Any]]:
    """Entries by cell key; duplicate keys are disambiguated by position."""
    indexed: Dict[CellKey, Dict[str, Any]] = {}
    for position, entry in enumerate(entries):
        key = _cell_key(entry)
        if key in indexed:
            key = key + (("__position__", str(position)),)
        indexed[key] = entry
    return indexed


def _cell_label(key: CellKey) -> str:
    return " ".join(f"{name}={value}" for name, value in key) or "<unkeyed>"


def _finite(value: float) -> Optional[float]:
    """``value`` if representable in strict JSON, else ``None``."""
    return value if value == value and abs(value) != float("inf") else None


def diff_documents(
    base: Dict[str, Any],
    current: Dict[str, Any],
    *,
    rel_threshold: float = DEFAULT_REL_THRESHOLD,
    abs_floor: float = DEFAULT_ABS_FLOOR,
) -> Dict[str, Any]:
    """Compare two result documents; returns the diff report document.

    ``findings`` lists significant numeric deltas (with stage attribution
    where trace data allows); ``context`` lists top-level document
    mismatches (scale, seed, versions) that explain — rather than
    constitute — differences; ``only_in_base`` / ``only_in_current``
    list unmatched cells.
    """
    context: List[Dict[str, Any]] = []
    for field in sorted(set(base) | set(current)):
        if field in WALL_CLOCK_DOC_FIELDS:
            continue
        old, new = base.get(field), current.get(field)
        if old != new:
            context.append({"field": field, "base": old, "current": new})

    base_cells = _index_entries(base.get("entries") or [])
    current_cells = _index_entries(current.get("entries") or [])
    findings: List[Dict[str, Any]] = []
    compared = 0
    for key in sorted(set(base_cells) & set(current_cells)):
        compared += 1
        findings.extend(
            _diff_cell(
                key,
                base_cells[key],
                current_cells[key],
                rel_threshold=rel_threshold,
                abs_floor=abs_floor,
            )
        )
    findings.sort(
        key=lambda f: (
            -abs(f["rel"]) if f["rel"] is not None else float("-inf"),
            f["cell"],
            f["field"],
        )
    )
    return {
        "cells_compared": compared,
        "only_in_base": sorted(
            _cell_label(key) for key in set(base_cells) - set(current_cells)
        ),
        "only_in_current": sorted(
            _cell_label(key) for key in set(current_cells) - set(base_cells)
        ),
        "context": context,
        "findings": findings,
    }


def _diff_cell(
    key: CellKey,
    base: Dict[str, Any],
    current: Dict[str, Any],
    *,
    rel_threshold: float,
    abs_floor: float,
) -> List[Dict[str, Any]]:
    label = _cell_label(key)
    findings: List[Dict[str, Any]] = []
    base_stages = base.get("stage_breakdown")
    current_stages = current.get("stage_breakdown")
    stage_records: Optional[List[Dict[str, Any]]] = None
    if isinstance(base_stages, dict) and isinstance(current_stages, dict):
        stage_records = [
            {**record, "rel": _finite(record["rel"])}
            for record in diff_stage_breakdowns(
                base_stages, current_stages, rel_threshold=rel_threshold
            )
        ]
    attributed = False
    for field in sorted(set(base) | set(current)):
        if field in WALL_CLOCK_FIELDS or field == "stage_breakdown":
            continue
        old, new = base.get(field), current.get(field)
        if isinstance(old, bool) or isinstance(new, bool):
            continue
        if not isinstance(old, (int, float)) or not isinstance(new, (int, float)):
            continue
        delta = float(new) - float(old)
        if abs(delta) <= abs_floor:
            continue
        rel = delta / float(old) if old else float("inf")
        if abs(rel) <= rel_threshold:
            continue
        finding: Dict[str, Any] = {
            "cell": label,
            "field": field,
            "base": old,
            "current": new,
            "delta": delta,
            "rel": _finite(rel),
        }
        if stage_records and _is_latency_field(field) and not attributed:
            # One attribution per cell: the stage story explains every
            # latency field's movement, so repeating it is noise.
            finding["stage_attribution"] = stage_records
            attributed = True
        findings.append(finding)
    return findings


def _is_latency_field(field: str) -> bool:
    """Fields whose movement the stage breakdown can explain."""
    return any(
        field.startswith(prefix)
        for prefix in ("ttft_p", "tpot_p", "e2e_p", "client_ttft_p", "client_e2e_p")
    ) or field in ("slo_attainment", "slo_violation_ratio", "recovery_transient_s")


def load_document(path: Path) -> Dict[str, Any]:
    document = json.loads(Path(path).read_text())
    if not isinstance(document, dict):
        raise ValueError(f"{path}: not a result document (expected a JSON object)")
    return document


def format_diff_report(report: Dict[str, Any]) -> str:
    """Human-readable rendering of :func:`diff_documents` output."""
    lines = [f"{report['cells_compared']} cells compared"]
    for side, cells in (
        ("only in base", report["only_in_base"]),
        ("only in current", report["only_in_current"]),
    ):
        for cell in cells:
            lines.append(f"  {side}: {cell}")
    for item in report["context"]:
        lines.append(
            f"  context: {item['field']} {item['base']!r} -> {item['current']!r}"
        )
    findings = report["findings"]
    if not findings:
        lines.append("no findings: documents agree on every compared field")
        return "\n".join(lines) + "\n"
    lines.append(f"{len(findings)} findings:")
    for finding in findings:
        rel = finding["rel"]
        rel_text = f"{rel:+.1%}" if rel is not None else "new"
        lines.append(
            f"  {finding['cell']}: {finding['field']} "
            f"{finding['base']:g} -> {finding['current']:g} ({rel_text})"
        )
        for record in finding.get("stage_attribution") or []:
            stage_rel = record["rel"]
            stage_rel_text = f"{stage_rel:+.1%}" if stage_rel is not None else "new"
            lines.append(
                f"    stage {record['stage']} {record['metric']} "
                f"{record['base']:.6f}s -> {record['current']:.6f}s "
                f"({stage_rel_text})"
            )
    return "\n".join(lines) + "\n"
