"""Per-task resource profiler and cache-wide cost roll-up.

Every :class:`~repro.sweeps.task.SweepTask` execution is wrapped in a
:class:`TaskProfiler` by :func:`repro.sweeps.executor.execute_task`,
which attaches the measurement as a ``profile`` block on the runner's
payload — part of the cached *value*, never the cache key, so existing
cache entries stay valid and documents stay bit-identical (document
assemblers select explicit fields and ignore the block)::

    "profile": {
      "wall_s": 1.82, "cpu_s": 1.79, "peak_rss_kb": 141520,
      "events": 104233, "events_per_s": 57270.9
    }

``peak_rss_kb`` is ``ru_maxrss`` — the *process* high-watermark, not a
per-task delta (the kernel offers no per-slice reset), so within one
worker process it is monotone across tasks; it answers "how much memory
did executing up to and including this cell need", which is the
capacity-planning question.  ``events`` is the
:attr:`~repro.simulation.event_loop.EventLoop.lifetime_events` delta —
the simulated events this task dispatched in this process.

``python -m repro.obs profile`` rolls the blocks up across the on-disk
result cache (``.repro_cache/``): ranks cells by wall-clock cost and
flags cache-efficiency anomalies — cells whose simulated-event
throughput falls far below their task kind's median (they pay the same
cache entry price for much less simulation), and kinds dominating total
spend.  Entries cached before the profiler existed simply lack the
block and are reported as unprofiled, never an error.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

try:  # POSIX only; Windows falls back to zero RSS rather than failing.
    import resource
except ImportError:  # pragma: no cover - non-POSIX
    resource = None  # type: ignore[assignment]

from repro.simulation.event_loop import EventLoop

#: Anomaly flag: a cell slower than this fraction of its kind's median
#: events/s is reported (same spirit as bench_compare's events gate).
THROUGHPUT_ANOMALY_FRACTION = 0.5

#: Kinds need at least this many profiled cells before throughput
#: anomalies are meaningful (a median of one is just the cell itself).
MIN_KIND_SAMPLES = 3


def _peak_rss_kb() -> int:
    """Process peak RSS in kB (Linux ``ru_maxrss`` unit); 0 when unavailable."""
    if resource is None:  # pragma: no cover - non-POSIX
        return 0
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


class TaskProfiler:
    """Context manager measuring one runner execution.

    Wall time via ``perf_counter``, CPU time via ``process_time`` (user +
    system of this process), simulated events via the process-wide
    :class:`EventLoop` lifetime counters, and the RSS high-watermark at
    exit (see the module docstring for its semantics).
    """

    def __init__(self) -> None:
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self.peak_rss_kb = 0
        self.events = 0
        self.sim_s = 0.0

    def __enter__(self) -> "TaskProfiler":
        self._events_before = EventLoop.lifetime_events
        self._sim_before = EventLoop.lifetime_sim_s
        self._cpu_start = time.process_time()
        self._wall_start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.wall_s = time.perf_counter() - self._wall_start
        self.cpu_s = time.process_time() - self._cpu_start
        self.events = EventLoop.lifetime_events - self._events_before
        self.sim_s = EventLoop.lifetime_sim_s - self._sim_before
        self.peak_rss_kb = _peak_rss_kb()

    def block(self) -> Dict[str, float]:
        """The ``profile`` payload block."""
        return {
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "peak_rss_kb": self.peak_rss_kb,
            "events": self.events,
            "events_per_s": self.events / self.wall_s if self.wall_s > 0 else 0.0,
            "sim_s": self.sim_s,
        }


# ----------------------------------------------------------------------
# Cache roll-up
# ----------------------------------------------------------------------
def collect_profiles(cache_dir: Optional[Path] = None) -> List[Dict[str, Any]]:
    """Every cache entry's identity + profile block (``profile`` may be None).

    Rows are sorted by entry filename so the roll-up is deterministic for
    a given cache directory regardless of filesystem listing order.
    """
    from repro.sweeps.cache import default_cache_dir

    root = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    rows: List[Dict[str, Any]] = []
    if not root.is_dir():
        return rows
    for path in sorted(root.glob("*.json")):
        try:
            entry = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        task = entry.get("task") if isinstance(entry, dict) else None
        result = entry.get("result") if isinstance(entry, dict) else None
        if not isinstance(task, dict) or not isinstance(result, dict):
            continue
        key = task.get("key") if isinstance(task.get("key"), dict) else {}
        profile = result.get("profile")
        rows.append(
            {
                "entry": path.name,
                "kind": str(key.get("kind", "unknown")),
                "runner": str(task.get("runner", "unknown")),
                "seed": task.get("seed"),
                "profile": profile if isinstance(profile, dict) else None,
            }
        )
    return rows


def rank_cells(rows: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Profiled rows, costliest wall-clock first (ties by entry name)."""
    profiled = [row for row in rows if row["profile"] is not None]
    return sorted(
        profiled,
        key=lambda row: (-float(row["profile"].get("wall_s", 0.0)), row["entry"]),
    )


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def flag_anomalies(rows: List[Dict[str, Any]]) -> List[str]:
    """Cache-efficiency anomalies, as human-readable strings.

    A cell is anomalous when its events/s falls below
    :data:`THROUGHPUT_ANOMALY_FRACTION` of its kind's median with at
    least :data:`MIN_KIND_SAMPLES` profiled cells of that kind — it
    consumed far more host time per simulated event than its peers, so
    its cache entry was disproportionately expensive to earn.
    """
    by_kind: Dict[str, List[Dict[str, Any]]] = {}
    for row in rows:
        if row["profile"] is not None and row["profile"].get("events", 0) > 0:
            by_kind.setdefault(row["kind"], []).append(row)
    anomalies: List[str] = []
    for kind in sorted(by_kind):
        peers = by_kind[kind]
        if len(peers) < MIN_KIND_SAMPLES:
            continue
        median_eps = _median(
            [float(row["profile"]["events_per_s"]) for row in peers]
        )
        if median_eps <= 0:
            continue
        for row in sorted(peers, key=lambda r: r["entry"]):
            eps = float(row["profile"]["events_per_s"])
            if eps < THROUGHPUT_ANOMALY_FRACTION * median_eps:
                anomalies.append(
                    f"{kind} {row['entry']}: {eps:.0f} events/s vs kind median "
                    f"{median_eps:.0f} (<{THROUGHPUT_ANOMALY_FRACTION:.0%})"
                )
    return anomalies


def format_profile_report(
    rows: List[Dict[str, Any]], top: int = 20
) -> str:
    """The ``python -m repro.obs profile`` report."""
    profiled = rank_cells(rows)
    unprofiled = len(rows) - len(profiled)
    lines = [
        f"{len(rows)} cache entries, {len(profiled)} profiled"
        + (f" ({unprofiled} predate the profiler)" if unprofiled else ""),
    ]
    if profiled:
        total_wall = sum(float(r["profile"]["wall_s"]) for r in profiled)
        by_kind: Dict[str, float] = {}
        for row in profiled:
            by_kind[row["kind"]] = by_kind.get(row["kind"], 0.0) + float(
                row["profile"]["wall_s"]
            )
        kind_costs = ", ".join(
            f"{kind} {wall:.1f}s"
            for kind, wall in sorted(by_kind.items(), key=lambda kv: -kv[1])
        )
        lines.append(f"total compute banked: {total_wall:.1f}s ({kind_costs})")
        lines.append(
            f"{'kind':<18} {'wall_s':>8} {'cpu_s':>8} {'rss_MB':>8} "
            f"{'events':>10} {'events/s':>10}  entry"
        )
        for row in profiled[:top]:
            profile = row["profile"]
            lines.append(
                f"{row['kind']:<18} {float(profile['wall_s']):>8.2f} "
                f"{float(profile.get('cpu_s', 0.0)):>8.2f} "
                f"{float(profile.get('peak_rss_kb', 0)) / 1024:>8.1f} "
                f"{int(profile.get('events', 0)):>10d} "
                f"{float(profile.get('events_per_s', 0.0)):>10.0f}  "
                f"{row['entry']}"
            )
        if len(profiled) > top:
            lines.append(f"... {len(profiled) - top} cheaper cells not shown")
    anomalies = flag_anomalies(rows)
    if anomalies:
        lines.append(f"{len(anomalies)} cache-efficiency anomalies:")
        lines.extend(f"  {a}" for a in anomalies)
    else:
        lines.append("no cache-efficiency anomalies")
    return "\n".join(lines)
