"""Stable schemas of the ``alerts`` and ``profile`` blocks.

Mirrors the result-document schema modules (:mod:`repro.chaos.schema`,
...): keys may be *added* in later schema versions but the keys listed
here are never renamed or removed, and ``tests/test_obs.py`` pins them.

The **alerts block** is attached to sweep entries when the sweep runs
with ``--alerts`` (an opt-in axis — it enters the cell cache key, so
cells without it stay bit-identical)::

    "alerts": {
      "alerts_schema_version": 1,
      "rules": [str, ...],          # rule names evaluated, sorted
      "events": [AlertEvent, ...],  # the timeline, sorted by
                                    # (t_s, rule, series, state)
      "firing": int,                # timeline transitions into firing
      "resolved": int,              # timeline transitions out of firing
      "active_at_end": ["rule|series", ...]  # never-resolved alerts
    }

Each timeline event::

    {
      "rule": str,                  # rule name, e.g. "recovery_transient"
      "severity": str,              # "warning" | "page"
      "series": str,                # metric (with labels) that transitioned
      "state": str,                 # "firing" | "resolved"
      "t_s": float,                 # simulation time of the transition
      "value": float,               # the offending value (threshold rules:
                                    # the sample; burn/rate rules: the rate)
      "since_s": float              # (firing only) when the breach began
    }

The **profile block** is attached to every freshly executed task payload
by :func:`repro.sweeps.executor.execute_task` — part of the cached
value, never the cache key, and never part of the result-document
contracts (document assemblers select explicit fields)::

    "profile": {
      "wall_s": float,              # host wall-clock of the runner call
      "cpu_s": float,               # process CPU time (user + system)
      "peak_rss_kb": int,           # process RSS high-watermark at exit
      "events": int,                # simulated events dispatched
      "events_per_s": float,        # events / wall_s
      "sim_s": float                # simulated seconds advanced
    }

Determinism contract: for a fixed cell the alerts block is bit-identical
across reruns and worker counts (values come from the deterministic
simulation's metric stream).  The profile block measures the *host* and
is explicitly non-deterministic — it is what :func:`strip_profiles`
removes before document comparison.
"""

from __future__ import annotations

import copy
from typing import Dict, List

from repro.obs.engine import ALERTS_SCHEMA_VERSION

#: Keys every alerts block must carry.
ALERTS_BLOCK_KEYS = (
    "alerts_schema_version",
    "rules",
    "events",
    "firing",
    "resolved",
    "active_at_end",
)

#: Keys every timeline event must carry (``since_s`` is firing-only).
ALERT_EVENT_KEYS = ("rule", "severity", "series", "state", "t_s", "value")

#: Legal event states.
ALERT_STATES = ("firing", "resolved")

#: Keys every profile block must carry.
PROFILE_BLOCK_KEYS = (
    "wall_s",
    "cpu_s",
    "peak_rss_kb",
    "events",
    "events_per_s",
    "sim_s",
)


def validate_alerts_block(block: Dict) -> List[str]:
    """Schema violations of one ``alerts`` block (empty when valid)."""
    problems: List[str] = []
    if not isinstance(block, dict):
        return ["alerts block must be an object"]
    for key in ALERTS_BLOCK_KEYS:
        if key not in block:
            problems.append(f"missing alerts key {key!r}")
    if block.get("alerts_schema_version") != ALERTS_SCHEMA_VERSION:
        problems.append(
            f"alerts_schema_version is {block.get('alerts_schema_version')!r}, "
            f"expected {ALERTS_SCHEMA_VERSION}"
        )
    events = block.get("events", [])
    if not isinstance(events, list):
        problems.append("events must be a list")
        events = []
    previous = None
    for index, event in enumerate(events):
        for key in ALERT_EVENT_KEYS:
            if key not in event:
                problems.append(f"event {index} missing {key!r}")
        if event.get("state") not in ALERT_STATES:
            problems.append(
                f"event {index} state {event.get('state')!r} not in {ALERT_STATES}"
            )
        if event.get("state") == "firing" and "since_s" not in event:
            problems.append(f"event {index} firing without since_s")
        order = (
            event.get("t_s"),
            event.get("rule"),
            event.get("series"),
            event.get("state"),
        )
        if previous is not None and None not in order and order < previous:
            problems.append(f"event {index} out of timeline order")
        if None not in order:
            previous = order
    firing = sum(1 for e in events if e.get("state") == "firing")
    resolved = sum(1 for e in events if e.get("state") == "resolved")
    if block.get("firing") != firing:
        problems.append(f"firing count {block.get('firing')!r} != {firing} events")
    if block.get("resolved") != resolved:
        problems.append(
            f"resolved count {block.get('resolved')!r} != {resolved} events"
        )
    return problems


def validate_profile_block(block: Dict) -> List[str]:
    """Schema violations of one ``profile`` block (empty when valid)."""
    if not isinstance(block, dict):
        return ["profile block must be an object"]
    problems = [
        f"missing profile key {key!r}" for key in PROFILE_BLOCK_KEYS if key not in block
    ]
    for key in PROFILE_BLOCK_KEYS:
        value = block.get(key)
        if key in block and (not isinstance(value, (int, float)) or value < 0):
            problems.append(f"profile key {key!r} must be a non-negative number")
    return problems


def strip_profiles(document: Dict) -> Dict:
    """A deep copy of ``document`` with every ``profile`` block removed.

    Profiles measure the host; two runs of the same grid must compare
    equal after this (and the sweeps' own ``strip_wall_clock``).
    """
    stripped = copy.deepcopy(document)
    stripped.pop("profile", None)
    for entry in stripped.get("entries", []):
        if isinstance(entry, dict):
            entry.pop("profile", None)
    return stripped
