"""CLI for the observability layer.

Replay alert rules over a recorded scrape stream::

    python -m repro.obs alerts chaos_metrics.prom
    python -m repro.obs alerts chaos_metrics.prom --format json --output alerts.json

Roll up per-cell resource profiles across the result cache::

    python -m repro.obs profile
    python -m repro.obs profile --cache-dir /tmp/cache --format json

Diff two result documents, attributing latency deltas to stages::

    python -m repro.obs diff baseline.json current.json
    python -m repro.obs diff A.json A.json --fail-on-findings   # exit 0
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.obs.diff import (
    DEFAULT_REL_THRESHOLD,
    diff_documents,
    format_diff_report,
    load_document,
)
from repro.obs.engine import AlertEngine, alerts_block, format_timeline
from repro.obs.profile import collect_profiles, format_profile_report


def _emit(text: str, output: Optional[str]) -> None:
    if output:
        Path(output).write_text(text)
        print(f"wrote {output}")
    else:
        sys.stdout.write(text if text.endswith("\n") else text + "\n")


def _cmd_alerts(args: argparse.Namespace) -> int:
    engine = AlertEngine()
    events = engine.evaluate_stream_text(Path(args.stream).read_text())
    block = alerts_block(events, engine.rules)
    if args.format == "json":
        _emit(json.dumps(block, indent=2) + "\n", args.output)
    else:
        _emit(format_timeline(events), args.output)
    if args.fail_on_firing and block["firing"]:
        print(f"{block['firing']} alert(s) fired", file=sys.stderr)
        return 1
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    cache_dir = Path(args.cache_dir) if args.cache_dir else None
    rows = collect_profiles(cache_dir)
    if args.format == "json":
        _emit(json.dumps(rows, indent=2) + "\n", args.output)
    else:
        _emit(format_profile_report(rows, top=args.top) + "\n", args.output)
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    report = diff_documents(
        load_document(Path(args.base)),
        load_document(Path(args.current)),
        rel_threshold=args.threshold,
    )
    if args.format == "json":
        _emit(json.dumps(report, indent=2) + "\n", args.output)
    else:
        _emit(format_diff_report(report), args.output)
    if args.fail_on_findings and report["findings"]:
        print(f"{len(report['findings'])} finding(s)", file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Analyze recorded telemetry: alerts, profiles, diffs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    alerts = sub.add_parser(
        "alerts", help="evaluate the default rule pack over a scrape stream"
    )
    alerts.add_argument("stream", help="recorded --metrics-out stream file")
    alerts.add_argument("--format", choices=("text", "json"), default="text")
    alerts.add_argument("--output", help="write the timeline here instead of stdout")
    alerts.add_argument(
        "--fail-on-firing",
        action="store_true",
        help="exit 1 when any alert fires (for CI gates)",
    )
    alerts.set_defaults(func=_cmd_alerts)

    profile = sub.add_parser(
        "profile", help="rank cached cells by resource cost"
    )
    profile.add_argument("--cache-dir", help="cache root (default: .repro_cache)")
    profile.add_argument("--top", type=int, default=20, help="rows to show")
    profile.add_argument("--format", choices=("text", "json"), default="text")
    profile.add_argument("--output", help="write the report here instead of stdout")
    profile.set_defaults(func=_cmd_profile)

    diff = sub.add_parser(
        "diff", help="compare two result documents cell-by-cell"
    )
    diff.add_argument("base", help="baseline result document")
    diff.add_argument("current", help="candidate result document")
    diff.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_REL_THRESHOLD,
        help="relative change below which a delta is not a finding",
    )
    diff.add_argument("--format", choices=("text", "json"), default="text")
    diff.add_argument("--output", help="write the report here instead of stdout")
    diff.add_argument(
        "--fail-on-findings",
        action="store_true",
        help="exit 1 when any finding is reported (for CI gates)",
    )
    diff.set_defaults(func=_cmd_diff)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
