"""Declarative alert rules over recorded metric scrape streams.

Three rule shapes, mirroring what a production monitoring stack runs over
Prometheus series:

* :class:`ThresholdRule` — a comparison against one metric, optionally
  required to hold for a duration before firing (``for_s`` absolute
  seconds, or ``for_fraction`` of the observed stream span — the latter
  makes one rule meaningful across tiny test streams and full sweeps).
  Evaluated per labelled series, so a per-cluster gauge alerts per
  cluster.
* :class:`BurnRateRule` — multi-window SLO burn rate à la the SRE
  workbook: the bad-event/total-event ratio over a *short* and a *long*
  trailing window, each expressed as a multiple of the error budget
  (``1 - objective``); the rule fires only while **both** windows burn
  faster than ``burn_threshold`` — fast enough to matter, long enough to
  not be noise.  Counter series are summed across label sets first
  (fleet-wide semantics).
* :class:`RateOfChangeRule` — the per-second increase of a counter over
  a trailing window, summed across label sets; fires while the rate
  exceeds ``threshold_per_s``.

Rules are frozen dataclasses: JSON-able via :func:`rule_dict`, hashable,
and free of evaluation state — :mod:`repro.obs.engine` walks the series
and emits the firing/resolved timeline.

The :func:`default_rule_pack` encodes the repository's operator
questions: is TTFT out of SLO, is admission shedding abnormally, did a
fault's recovery transient outlast the budget, and is the WAN moving
migration traffic.  Thresholds are tuned against the committed
quick-scale sweep documents (see ``tests/test_obs.py``).
"""

from __future__ import annotations

import dataclasses
from typing import List, Tuple, Union

#: Comparison operators a :class:`ThresholdRule` may use.
THRESHOLD_OPS: Tuple[str, ...] = (">", ">=", "<", "<=")


@dataclasses.dataclass(frozen=True)
class ThresholdRule:
    """Fire while ``metric <op> threshold`` holds long enough.

    ``for_s`` and ``for_fraction`` combine as a maximum: the breach must
    persist for ``max(for_s, for_fraction * stream_span)`` seconds of
    simulated time before the rule fires.  Both zero means the first
    breaching sample fires.
    """

    name: str
    metric: str
    threshold: float
    op: str = ">"
    for_s: float = 0.0
    for_fraction: float = 0.0
    severity: str = "warning"

    def __post_init__(self) -> None:
        if self.op not in THRESHOLD_OPS:
            raise ValueError(
                f"unknown op {self.op!r}; known: {', '.join(THRESHOLD_OPS)}"
            )
        if self.for_s < 0 or not (0.0 <= self.for_fraction <= 1.0):
            raise ValueError(
                f"rule {self.name!r}: for_s must be >= 0 and for_fraction in [0, 1]"
            )

    def breaches(self, value: float) -> bool:
        if self.op == ">":
            return value > self.threshold
        if self.op == ">=":
            return value >= self.threshold
        if self.op == "<":
            return value < self.threshold
        return value <= self.threshold


@dataclasses.dataclass(frozen=True)
class BurnRateRule:
    """Fire while both trailing windows burn the error budget too fast.

    ``numerator`` and ``denominator`` name cumulative counters (bad
    events and total events); the burn rate over a window is
    ``(Δnumerator / Δdenominator) / (1 - objective)``.  Windows longer
    than the stream clamp to the stream span, so the rule degrades to a
    single-window check on short streams instead of never firing.
    """

    name: str
    numerator: str
    denominator: str
    objective: float = 0.99
    burn_threshold: float = 10.0
    short_window_s: float = 5.0
    long_window_s: float = 30.0
    severity: str = "page"

    def __post_init__(self) -> None:
        if not (0.0 < self.objective < 1.0):
            raise ValueError(f"rule {self.name!r}: objective must be in (0, 1)")
        if self.burn_threshold <= 0:
            raise ValueError(f"rule {self.name!r}: burn_threshold must be positive")
        if not (0 < self.short_window_s <= self.long_window_s):
            raise ValueError(
                f"rule {self.name!r}: need 0 < short_window_s <= long_window_s"
            )


@dataclasses.dataclass(frozen=True)
class RateOfChangeRule:
    """Fire while a counter's per-second increase exceeds the threshold."""

    name: str
    metric: str
    threshold_per_s: float
    window_s: float = 5.0
    severity: str = "warning"

    def __post_init__(self) -> None:
        if self.window_s <= 0:
            raise ValueError(f"rule {self.name!r}: window_s must be positive")
        if self.threshold_per_s <= 0:
            raise ValueError(
                f"rule {self.name!r}: threshold_per_s must be positive"
            )


#: Any rule the engine can evaluate.
AlertRule = Union[ThresholdRule, BurnRateRule, RateOfChangeRule]


def rule_dict(rule: AlertRule) -> dict:
    """A rule as a JSON-able dict, tagged with its evaluation type."""
    payload = dataclasses.asdict(rule)
    payload["type"] = type(rule).__name__
    return payload


def default_rule_pack() -> List[AlertRule]:
    """The stock rules the ``--alerts`` sweep axis evaluates per cell.

    * ``ttft_p99_breach`` — the running TTFT P99 gauge
      (:func:`repro.metrics.sources.fleet_metrics_source`) exceeds 10 s,
      held for a tenth of the run: the fleet is serving, but far out of
      interactive SLO.
    * ``shed_rate_spike`` — multi-window burn over shed vs. submitted
      requests against a 99% admission objective: more than 10x budget
      burn (>10% of arrivals shed) on both the 5 s and 30 s windows.
    * ``recovery_transient`` — fault-displaced requests still pending for
      over 70% of the run (``repro_displaced_pending``): the fault was
      absorbed so slowly the transient dominated the horizon.  Sticky
      session policies breach this on the quick chaos outage grid;
      migration keeps the transient short enough not to.
    * ``wan_saturation`` — the WAN moved more than 64 MiB/s over a 5 s
      window (``repro_cross_cluster_bytes_total``): a migration burst or
      rerouted dispatch storm is in flight.  Fires *and resolves* in the
      quick outage/migrate cell, which is what the CI smoke asserts.
    """
    return [
        ThresholdRule(
            name="ttft_p99_breach",
            metric="repro_ttft_p99_seconds",
            threshold=10.0,
            op=">",
            for_fraction=0.1,
            severity="page",
        ),
        BurnRateRule(
            name="shed_rate_spike",
            numerator="repro_requests_shed_total",
            denominator="repro_requests_submitted_total",
            objective=0.99,
            burn_threshold=10.0,
            short_window_s=5.0,
            long_window_s=30.0,
            severity="page",
        ),
        ThresholdRule(
            name="recovery_transient",
            metric="repro_displaced_pending",
            threshold=0.0,
            op=">",
            for_fraction=0.7,
            severity="warning",
        ),
        RateOfChangeRule(
            name="wan_saturation",
            metric="repro_cross_cluster_bytes_total",
            threshold_per_s=64.0 * 1024 * 1024,
            window_s=5.0,
            severity="warning",
        ),
    ]
