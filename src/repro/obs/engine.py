"""Alert engine: evaluate declarative rules over a recorded scrape stream.

The engine replays the per-series time series parsed by
:func:`repro.metrics.plot.parse_scrape_stream` (the ``--metrics-out``
format) through a list of :mod:`repro.obs.rules` and emits a
deterministic **alerts timeline**: one event per state transition, with
simulation-time stamps::

    {"rule": "recovery_transient", "severity": "warning",
     "series": "repro_displaced_pending", "state": "firing",
     "t_s": 12.0, "value": 133.0, "since_s": 8.0}

Events are sorted by ``(t_s, rule, series, state)`` and values come
straight from the deterministic simulation, so the timeline is
bit-identical across reruns and worker counts — the property
``tests/test_obs.py`` pins.  :func:`alerts_block` wraps a timeline in
the stable-schema block the ``--alerts`` sweep axis attaches to result
entries (see :mod:`repro.obs.schema`).

Because the sweep cells evaluate alerts *in the worker process* over an
in-memory monitor, :func:`scrape_stream_text` reconstructs the exact
file-sink byte stream (``# scrape <n> t=<sim_s>`` markers included) from
callback-sink chunks, so in-sweep evaluation and offline
``python -m repro.obs alerts`` replay see identical series.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.metrics.plot import Series, parse_scrape_stream
from repro.obs.rules import (
    AlertRule,
    BurnRateRule,
    RateOfChangeRule,
    ThresholdRule,
    default_rule_pack,
)

#: One firing/resolved transition in a timeline.
AlertEvent = Dict[str, object]

#: Schema version of the ``alerts`` block (see :mod:`repro.obs.schema`).
ALERTS_SCHEMA_VERSION = 1


def scrape_stream_text(chunks: Sequence[Tuple[str, float]]) -> str:
    """Rebuild the ``--metrics-out`` file stream from callback chunks.

    The :class:`~repro.metrics.monitor.MetricsMonitor` file sink writes a
    ``# scrape <n> t=<sim_s>`` marker before each exposition; the
    callback sink hands over ``(text, now)`` without it.  Reconstructing
    the marker here keeps in-memory evaluation byte-identical to
    replaying a recorded file.
    """
    parts: List[str] = []
    for index, (text, now) in enumerate(chunks, start=1):
        parts.append(f"# scrape {index} t={now:.3f}\n")
        parts.append(text)
    return "".join(parts)


def _prepare(points: Iterable[Tuple[float, float]]) -> List[Tuple[float, float]]:
    """Sample points in time order (stable on ties, last write wins later)."""
    return sorted(points, key=lambda p: p[0])


def _select(series: Series, metric: str) -> List[Tuple[str, List[Tuple[float, float]]]]:
    """All series of one metric (bare name or any label set), name-sorted."""
    prefix = metric + "{"
    return [
        (name, _prepare(series[name]))
        for name in sorted(series)
        if name == metric or name.startswith(prefix)
    ]


def _sum_series(
    selected: Sequence[Tuple[str, List[Tuple[float, float]]]]
) -> List[Tuple[float, float]]:
    """Label sets summed into one series over the union of sample times.

    Each component holds its last-seen value between samples (step
    interpolation); before its first sample it contributes its first
    value, so a counter that existed from the start does not fake a jump
    when another label set appears later.
    """
    if not selected:
        return []
    if len(selected) == 1:
        return list(selected[0][1])
    times = sorted({t for _, points in selected for t, _ in points})
    summed: List[Tuple[float, float]] = []
    for t in times:
        total = 0.0
        for _, points in selected:
            total += _value_at(points, t)
        summed.append((t, total))
    return summed


def _value_at(points: Sequence[Tuple[float, float]], t: float) -> float:
    """Step-interpolated value at time ``t`` (first value before the start)."""
    if not points:
        return 0.0
    times = [p[0] for p in points]
    index = bisect.bisect_right(times, t) - 1
    return points[max(index, 0)][1]


def _span(series: Series) -> Tuple[float, float]:
    """(t_start, t_end) over every sample in the stream (0, 0 when empty)."""
    t_lo: Optional[float] = None
    t_hi: Optional[float] = None
    for points in series.values():
        for t, _ in points:
            t_lo = t if t_lo is None else min(t_lo, t)
            t_hi = t if t_hi is None else max(t_hi, t)
    if t_lo is None:
        return 0.0, 0.0
    return t_lo, t_hi


class AlertEngine:
    """Evaluate a rule pack over a parsed scrape stream."""

    def __init__(self, rules: Optional[Sequence[AlertRule]] = None) -> None:
        self.rules = list(rules) if rules is not None else default_rule_pack()
        names = [rule.name for rule in self.rules]
        duplicates = {name for name in names if names.count(name) > 1}
        if duplicates:
            raise ValueError(f"duplicate rule names: {sorted(duplicates)}")

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, series: Series) -> List[AlertEvent]:
        """The full timeline, sorted by ``(t_s, rule, series, state)``."""
        events: List[AlertEvent] = []
        t_lo, t_hi = _span(series)
        span = max(t_hi - t_lo, 0.0)
        for rule in self.rules:
            if isinstance(rule, ThresholdRule):
                events.extend(self._evaluate_threshold(rule, series, span))
            elif isinstance(rule, BurnRateRule):
                events.extend(self._evaluate_burn_rate(rule, series))
            elif isinstance(rule, RateOfChangeRule):
                events.extend(self._evaluate_rate(rule, series))
            else:  # pragma: no cover - the AlertRule union is closed
                raise TypeError(f"unknown rule type {type(rule).__name__}")
        events.sort(
            key=lambda e: (e["t_s"], e["rule"], e["series"], e["state"])
        )
        return events

    def evaluate_stream_text(self, text: str) -> List[AlertEvent]:
        """Evaluate a raw ``--metrics-out`` stream (file contents)."""
        return self.evaluate(parse_scrape_stream(text))

    # ------------------------------------------------------------------
    # Rule evaluators
    # ------------------------------------------------------------------
    def _evaluate_threshold(
        self, rule: ThresholdRule, series: Series, span: float
    ) -> List[AlertEvent]:
        hold = max(rule.for_s, rule.for_fraction * span)
        events: List[AlertEvent] = []
        for name, points in _select(series, rule.metric):
            breach_start: Optional[float] = None
            firing = False
            for t, value in points:
                if rule.breaches(value):
                    if breach_start is None:
                        breach_start = t
                    if not firing and t - breach_start >= hold:
                        firing = True
                        events.append(
                            self._event(rule, name, "firing", t, value, breach_start)
                        )
                else:
                    if firing:
                        events.append(self._event(rule, name, "resolved", t, value))
                    firing = False
                    breach_start = None
        return events

    def _evaluate_burn_rate(
        self, rule: BurnRateRule, series: Series
    ) -> List[AlertEvent]:
        numerator = _sum_series(_select(series, rule.numerator))
        denominator = _sum_series(_select(series, rule.denominator))
        if not numerator or not denominator:
            return []
        budget = 1.0 - rule.objective

        def burn(t: float, window_s: float, t_start: float) -> float:
            window_start = max(t - window_s, t_start)
            bad = _value_at(numerator, t) - _value_at(numerator, window_start)
            total = _value_at(denominator, t) - _value_at(denominator, window_start)
            if total <= 0:
                return 0.0
            return (bad / total) / budget

        t_start = numerator[0][0]
        events: List[AlertEvent] = []
        firing = False
        breach_start: Optional[float] = None
        for t, _ in numerator:
            short = burn(t, rule.short_window_s, t_start)
            long = burn(t, rule.long_window_s, t_start)
            breaching = short > rule.burn_threshold and long > rule.burn_threshold
            if breaching and not firing:
                firing = True
                breach_start = t
                events.append(
                    self._event(rule, rule.numerator, "firing", t, short, breach_start)
                )
            elif not breaching and firing:
                firing = False
                events.append(self._event(rule, rule.numerator, "resolved", t, short))
        return events

    def _evaluate_rate(
        self, rule: RateOfChangeRule, series: Series
    ) -> List[AlertEvent]:
        summed = _sum_series(_select(series, rule.metric))
        if not summed:
            return []
        t_start = summed[0][0]
        events: List[AlertEvent] = []
        firing = False
        for t, value in summed:
            window_start = max(t - rule.window_s, t_start)
            elapsed = t - window_start
            if elapsed <= 0:
                continue
            rate = (value - _value_at(summed, window_start)) / elapsed
            if rate > rule.threshold_per_s and not firing:
                firing = True
                events.append(self._event(rule, rule.metric, "firing", t, rate, t))
            elif rate <= rule.threshold_per_s and firing:
                firing = False
                events.append(self._event(rule, rule.metric, "resolved", t, rate))
        return events

    @staticmethod
    def _event(
        rule: AlertRule,
        series_name: str,
        state: str,
        t_s: float,
        value: float,
        since_s: Optional[float] = None,
    ) -> AlertEvent:
        event: AlertEvent = {
            "rule": rule.name,
            "severity": rule.severity,
            "series": series_name,
            "state": state,
            "t_s": round(float(t_s), 6),
            "value": round(float(value), 6),
        }
        if since_s is not None:
            event["since_s"] = round(float(since_s), 6)
        return event


def alerts_block(
    events: Sequence[AlertEvent], rules: Optional[Sequence[AlertRule]] = None
) -> Dict[str, object]:
    """The stable-schema ``alerts`` block sweep entries carry.

    ``active_at_end`` lists ``"rule|series"`` pairs still firing after
    the last event — alerts that never resolved within the run.
    """
    rule_names = sorted(
        rule.name for rule in (rules if rules is not None else default_rule_pack())
    )
    active: Dict[Tuple[str, str], bool] = {}
    for event in events:
        active[(str(event["rule"]), str(event["series"]))] = (
            event["state"] == "firing"
        )
    return {
        "alerts_schema_version": ALERTS_SCHEMA_VERSION,
        "rules": rule_names,
        "events": list(events),
        "firing": sum(1 for e in events if e["state"] == "firing"),
        "resolved": sum(1 for e in events if e["state"] == "resolved"),
        "active_at_end": sorted(
            f"{rule}|{series}" for (rule, series), on in active.items() if on
        ),
    }


def evaluate_monitor_chunks(
    chunks: Sequence[Tuple[str, float]],
    rules: Optional[Sequence[AlertRule]] = None,
) -> Dict[str, object]:
    """One-call helper for sweep cells: callback chunks -> ``alerts`` block."""
    engine = AlertEngine(rules)
    events = engine.evaluate_stream_text(scrape_stream_text(chunks))
    return alerts_block(events, engine.rules)


def format_timeline(events: Sequence[AlertEvent]) -> str:
    """Human-readable timeline (one line per transition)."""
    if not events:
        return "no alerts\n"
    lines = []
    for event in events:
        since = (
            f" (since t={event['since_s']:.3f}s)" if "since_s" in event else ""
        )
        lines.append(
            f"t={float(event['t_s']):>9.3f}s  {event['state']:<8} "
            f"{event['rule']:<20} [{event['severity']}] "
            f"{event['series']} value={event['value']:g}{since}"
        )
    return "\n".join(lines) + "\n"
