"""repro.obs: analysis layer over the stack's emitted telemetry.

Three consumers of existing signals, none of which touches the
simulation itself:

* :mod:`repro.obs.rules` / :mod:`repro.obs.engine` — declarative alert
  rules (threshold, multi-window SLO burn rate, rate-of-change)
  evaluated over recorded ``--metrics-out`` scrape streams, producing a
  deterministic firing/resolved timeline per cell; the ``--alerts``
  sweep axis attaches the resulting block to result entries.
* :mod:`repro.obs.profile` — per-task resource accounting (wall/CPU
  time, RSS high-watermark, simulated events and events/s) attached to
  every cached payload, with a cache-wide cost roll-up.
* :mod:`repro.obs.diff` — the differential doctor: cell-by-cell
  comparison of two result documents with stage-level latency
  attribution via :mod:`repro.trace.attribution`.

CLI: ``python -m repro.obs {alerts,profile,diff}``.
"""

from repro.obs.engine import (
    ALERTS_SCHEMA_VERSION,
    AlertEngine,
    alerts_block,
    evaluate_monitor_chunks,
    format_timeline,
    scrape_stream_text,
)
from repro.obs.diff import diff_documents, format_diff_report, load_document
from repro.obs.profile import (
    TaskProfiler,
    collect_profiles,
    flag_anomalies,
    format_profile_report,
    rank_cells,
)
from repro.obs.rules import (
    AlertRule,
    BurnRateRule,
    RateOfChangeRule,
    ThresholdRule,
    default_rule_pack,
    rule_dict,
)
from repro.obs.schema import (
    ALERT_EVENT_KEYS,
    ALERT_STATES,
    ALERTS_BLOCK_KEYS,
    PROFILE_BLOCK_KEYS,
    strip_profiles,
    validate_alerts_block,
    validate_profile_block,
)

__all__ = [
    "ALERT_EVENT_KEYS",
    "ALERT_STATES",
    "ALERTS_BLOCK_KEYS",
    "ALERTS_SCHEMA_VERSION",
    "AlertEngine",
    "AlertRule",
    "BurnRateRule",
    "PROFILE_BLOCK_KEYS",
    "RateOfChangeRule",
    "TaskProfiler",
    "ThresholdRule",
    "alerts_block",
    "collect_profiles",
    "default_rule_pack",
    "diff_documents",
    "evaluate_monitor_chunks",
    "flag_anomalies",
    "format_diff_report",
    "format_profile_report",
    "format_timeline",
    "load_document",
    "rank_cells",
    "rule_dict",
    "scrape_stream_text",
    "strip_profiles",
    "validate_alerts_block",
    "validate_profile_block",
]
