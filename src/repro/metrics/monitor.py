"""MetricsMonitor: stream simulator counters as Prometheus scrapes.

A :class:`MetricsMonitor` owns a :class:`~repro.metrics.prometheus.MetricsRegistry`
and a :class:`~repro.simulation.process.PeriodicProcess` on the shared
event loop.  Every tick it runs the registered *sources* — callables that
read live simulator state into the registry — then renders one text-format
scrape stamped with the *simulation* time and hands it to every sink
(a callback, an append-mode file, or both).  ``stop()`` takes one final
scrape, so the last scrape in the stream always equals the registry's
final snapshot.

Scrapes in a file stream are separated by ``# scrape <n> t=<sim_s>``
comment lines; Prometheus parsers ignore unknown comments, and the
marker lets offline tooling (and the test-suite's parser fixture) split
the stream back into individual scrapes.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.metrics.prometheus import LabelKey, MetricsRegistry
from repro.simulation.event_loop import EventLoop
from repro.simulation.process import PeriodicProcess

#: A source reads live state into the registry at sample time.
MetricsSource = Callable[[MetricsRegistry, float], None]

#: A sink receives each rendered scrape (text) and the simulation time.
MetricsSink = Callable[[str, float], None]


class MetricsMonitor:
    """Periodic sampler that renders the registry to file/callback sinks."""

    def __init__(
        self,
        loop: EventLoop,
        *,
        interval_s: float = 1.0,
        registry: Optional[MetricsRegistry] = None,
        path: Optional[Union[str, Path]] = None,
        callback: Optional[MetricsSink] = None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.loop = loop
        self.registry = registry if registry is not None else MetricsRegistry()
        self.path = Path(path) if path is not None else None
        self.scrapes = 0
        self._sources: List[MetricsSource] = []
        self._sinks: List[MetricsSink] = []
        if callback is not None:
            self._sinks.append(callback)
        self._process = PeriodicProcess(
            loop, interval_s, self._tick, name="metrics-monitor"
        )
        if self.path is not None:
            # Truncate up front: one monitor lifetime owns one stream file.
            self.path.write_text("")

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def add_source(self, source: MetricsSource) -> None:
        """Register a sampler; sources run in registration order each tick."""
        self._sources.append(source)

    def add_sink(self, sink: MetricsSink) -> None:
        """Register an additional scrape consumer."""
        self._sinks.append(sink)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        self._process.start()

    def stop(self) -> None:
        """Stop sampling; emits one final scrape of the end state."""
        self._process.stop()
        self._tick(self.loop.now)

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def _tick(self, now: float) -> None:
        for source in self._sources:
            source(self.registry, now)
        text = self.registry.expose(timestamp_ms=int(round(now * 1000)))
        if not text:
            return
        self.scrapes += 1
        if self.path is not None:
            with self.path.open("a") as handle:
                handle.write(f"# scrape {self.scrapes} t={now:.3f}\n")
                handle.write(text)
        for sink in self._sinks:
            sink(text, now)

    def snapshot(self) -> Dict[str, Dict[LabelKey, float]]:
        """The registry's current samples (matches the last scrape after
        ``stop()``)."""
        return self.registry.snapshot()
