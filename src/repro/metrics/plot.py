"""Offline renderer for recorded metrics scrape streams.

``python -m repro.metrics.plot STREAM`` parses a file produced by
``--metrics-out`` (a sequence of Prometheus text-format scrapes separated
by ``# scrape <n> t=<sim_s>`` markers, as written by
:class:`~repro.metrics.monitor.MetricsMonitor`) back into per-series time
series and renders them three ways:

* ``--format ascii`` (default) — one sparkline row per series with
  first/last/min/max, a terminal-greppable run summary;
* ``--format svg`` — a standalone SVG with one polyline per series,
  viewable in any browser, no plotting dependency required;
* ``--format json`` — a machine-readable digest (per-series count and
  range) for dashboards and regression scripts.

The parser is intentionally forgiving: unknown comment lines are skipped
(Prometheus parsers must ignore them), and sample lines missing the
trailing timestamp fall back to the enclosing scrape's marker time.

Streams recorded from chaos cells can be overlaid with the fault windows
of the :class:`~repro.chaos.config.FaultSchedule` that shaped them:
``--faults PRESET`` materialises a chaos preset against the stream's time
range and shades each window in the SVG (``class="fault"`` rects), lists
it in the JSON digest (``fault_windows``), and appends a summary line per
window to the ASCII view.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

#: ``(t_seconds, value)`` points of one labelled series, scrape order.
Series = Dict[str, List[Tuple[float, float]]]

#: One shaded overlay window: ``{kind, target, t_start_s, t_end_s}``.
FaultWindow = Dict[str, object]

_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def parse_scrape_stream(text: str) -> Series:
    """Parse a recorded scrape stream into per-series time series.

    Series are keyed by the full sample name including its label set
    (e.g. ``repro_queue_depth{cluster="0"}``) — label sets render in
    sorted order upstream, so the key is stable across scrapes.  Sample
    timestamps (milliseconds) win over the scrape marker time when both
    are present.
    """
    series: Series = {}
    scrape_t = 0.0
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            # "# scrape <n> t=<sim_s>" markers carry the scrape time; all
            # other comments (HELP/TYPE) are skipped.
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "scrape" and parts[3].startswith("t="):
                try:
                    scrape_t = float(parts[3][2:])
                except ValueError:
                    pass
            continue
        # "name{label="v w"} value [timestamp_ms]" — label values may
        # contain spaces, so split from the right.
        name, value, t = _parse_sample(line, scrape_t)
        if name is None:
            continue
        series.setdefault(name, []).append((t, value))
    return series


def _parse_sample(
    line: str, scrape_t: float
) -> Tuple[Optional[str], float, float]:
    tail = line.rsplit(" ", 2)
    if len(tail) == 3 and not tail[0].endswith("}") and "}" in tail[0]:
        # A label value containing a space would break the 3-way split;
        # re-split on the closing brace instead.
        brace = line.rindex("}")
        fields = [line[: brace + 1]] + line[brace + 1 :].split()
        tail = fields if len(fields) in (2, 3) else tail
    try:
        if len(tail) == 3:
            name, value_text, ts_text = tail
            try:
                return name, float(value_text), float(ts_text) / 1000.0
            except ValueError:
                # Two tokens after the name (no timestamp): "name v"
                # with a spaced label value already consumed above.
                pass
        if len(tail) >= 2:
            name = " ".join(tail[:-1])
            return name, float(tail[-1]), scrape_t
    except ValueError:
        pass
    return None, 0.0, 0.0


def read_scrape_stream(path) -> Series:
    """Parse a ``--metrics-out`` file from disk."""
    return parse_scrape_stream(Path(path).read_text())


def fault_windows(schedule, *, t_end_s: float) -> List[FaultWindow]:
    """Convert a :class:`~repro.chaos.config.FaultSchedule` into overlay windows.

    Each window is ``{kind, target, t_start_s, t_end_s}``, sorted by
    start time (the schedule already sorts its events):

    * ``instance_kill`` — a zero-width window at the strike time (the
      renderer draws it as a thin marker); the shard recovers on its own.
    * ``cluster_outage`` — permanent, so the window runs to ``t_end_s``
      (the end of the recorded stream).
    * ``wan_degrade`` — ``duration_s`` wide; ``duration_s == 0`` means
      until the end of the run, i.e. ``t_end_s``.
    """
    windows: List[FaultWindow] = []
    for event in schedule.events:
        if event.kind == "instance_kill":
            target = f"cluster{event.cluster}/inst{event.instance}"
            end = event.at_s
        elif event.kind == "cluster_outage":
            target = f"cluster{event.cluster}"
            end = t_end_s
        else:  # wan_degrade hits every link
            target = "wan"
            end = event.at_s + event.duration_s if event.duration_s > 0 else t_end_s
        windows.append(
            {
                "kind": event.kind,
                "target": target,
                "t_start_s": event.at_s,
                "t_end_s": max(end, event.at_s),
            }
        )
    return windows


def digest(
    series: Series, fault_windows: Optional[List[FaultWindow]] = None
) -> Dict[str, object]:
    """Machine-readable summary of a parsed stream.

    ``fault_windows`` (when given) is embedded verbatim under the
    ``fault_windows`` key; streams rendered without an overlay keep the
    pre-overlay digest shape, so recorded digests stay bit-identical.
    """
    per_series = {}
    t_min: Optional[float] = None
    t_max: Optional[float] = None
    for name in sorted(series):
        points = series[name]
        values = [v for _, v in points]
        times = [t for t, _ in points]
        t_min = min(times) if t_min is None else min(t_min, min(times))
        t_max = max(times) if t_max is None else max(t_max, max(times))
        per_series[name] = {
            "points": len(points),
            "first": values[0],
            "last": values[-1],
            "min": min(values),
            "max": max(values),
        }
    summary: Dict[str, object] = {
        "series": per_series,
        "num_series": len(per_series),
        "t_start_s": t_min if t_min is not None else 0.0,
        "t_end_s": t_max if t_max is not None else 0.0,
    }
    if fault_windows is not None:
        summary["fault_windows"] = fault_windows
    return summary


def sparkline(values: List[float], width: int = 40) -> str:
    """Resample ``values`` to ``width`` columns of block characters."""
    if not values:
        return ""
    if len(values) > width:
        step = len(values) / width
        values = [values[int(i * step)] for i in range(width)]
    lo, hi = min(values), max(values)
    span = hi - lo
    if span <= 0:
        return _SPARK_BLOCKS[0] * len(values)
    top = len(_SPARK_BLOCKS) - 1
    return "".join(
        _SPARK_BLOCKS[min(top, int((v - lo) / span * top + 0.5))] for v in values
    )


def render_ascii(
    series: Series,
    width: int = 40,
    fault_windows: Optional[List[FaultWindow]] = None,
) -> str:
    """One sparkline row per series, aligned, sorted by series name."""
    if not series:
        return "(empty scrape stream)\n"
    name_width = max(len(name) for name in series)
    lines = []
    for name in sorted(series):
        values = [v for _, v in series[name]]
        lines.append(
            f"{name:<{name_width}}  {sparkline(values, width):<{width}}  "
            f"first={values[0]:g} last={values[-1]:g} "
            f"min={min(values):g} max={max(values):g}"
        )
    for window in fault_windows or ():
        lines.append(
            f"fault {window['kind']} on {window['target']}: "
            f"t={window['t_start_s']:g}s..{window['t_end_s']:g}s"
        )
    return "\n".join(lines) + "\n"


def render_svg(
    series: Series,
    width: int = 900,
    row_height: int = 60,
    fault_windows: Optional[List[FaultWindow]] = None,
) -> str:
    """A standalone SVG: one normalised polyline strip per series.

    ``fault_windows`` shade as full-height ``class="fault"`` rects behind
    the polylines, positioned on the union time range of every series —
    the same axis the per-row strips normalise against when the stream
    comes from a single recording (zero-width windows render as thin
    markers).
    """
    names = sorted(series)
    margin, label_h = 10, 14
    strip = row_height - label_h - margin
    height = max(row_height * len(names) + margin, row_height)
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="monospace" font-size="11">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    if fault_windows and series:
        all_times = [t for points in series.values() for t, _ in points]
        t_lo, t_hi = min(all_times), max(all_times)
        t_span = (t_hi - t_lo) or 1.0
        for window in fault_windows:
            x0 = margin + (float(window["t_start_s"]) - t_lo) / t_span * (
                width - 2 * margin
            )
            x1 = margin + (float(window["t_end_s"]) - t_lo) / t_span * (
                width - 2 * margin
            )
            parts.append(
                f'<rect class="fault" x="{x0:.1f}" y="0" '
                f'width="{max(x1 - x0, 2.0):.1f}" height="{height}" '
                f'fill="#d62728" fill-opacity="0.12">'
                f"<title>{_svg_escape(str(window['kind']))} "
                f"{_svg_escape(str(window['target']))}</title></rect>"
            )
    for row, name in enumerate(names):
        points = series[name]
        y0 = row * row_height + margin
        parts.append(
            f'<text x="{margin}" y="{y0 + label_h - 4}" fill="#333">'
            f"{_svg_escape(name)}</text>"
        )
        times = [t for t, _ in points]
        values = [v for _, v in points]
        t_lo, t_hi = min(times), max(times)
        v_lo, v_hi = min(values), max(values)
        t_span = (t_hi - t_lo) or 1.0
        v_span = (v_hi - v_lo) or 1.0
        coords = []
        for t, v in points:
            x = margin + (t - t_lo) / t_span * (width - 2 * margin)
            y = y0 + label_h + strip - (v - v_lo) / v_span * strip
            coords.append(f"{x:.1f},{y:.1f}")
        if len(coords) == 1:
            coords.append(coords[0])
        parts.append(
            f'<polyline points="{" ".join(coords)}" fill="none" '
            f'stroke="#1f77b4" stroke-width="1.5"/>'
        )
    parts.append("</svg>")
    return "\n".join(parts) + "\n"


def _svg_escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.metrics.plot",
        description="Render a --metrics-out scrape stream as ASCII, SVG or JSON.",
    )
    parser.add_argument("stream", help="scrape stream file written by --metrics-out")
    parser.add_argument(
        "--format",
        choices=("ascii", "svg", "json"),
        default="ascii",
        help="output format (default: ascii sparklines)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="only render series whose name contains this substring",
    )
    parser.add_argument(
        "--output", default=None, help="write to this file instead of stdout"
    )
    parser.add_argument(
        "--width", type=int, default=40, help="sparkline width / SVG scale hint"
    )
    parser.add_argument(
        "--faults",
        default=None,
        metavar="PRESET",
        help="overlay the fault windows of this chaos preset (see "
        "python -m repro.chaos --list-faults), materialised against the "
        "stream's time range",
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=42,
        metavar="SEED",
        help="seed the preset was materialised with (churn only; default: 42)",
    )
    parser.add_argument(
        "--fault-clusters",
        type=int,
        default=2,
        metavar="N",
        help="cluster count of the recorded topology (churn only; default: 2)",
    )
    parser.add_argument(
        "--fault-instances",
        type=int,
        default=2,
        metavar="N",
        help="instances per cluster of the recorded topology (churn only; "
        "default: 2)",
    )
    args = parser.parse_args(argv)

    series = read_scrape_stream(args.stream)
    if args.select:
        series = {k: v for k, v in series.items() if args.select in k}
    windows = None
    if args.faults is not None:
        from repro.chaos.config import fault_schedule_preset

        t_end_s = float(digest(series)["t_end_s"])
        try:
            schedule = fault_schedule_preset(
                args.faults,
                duration_s=max(t_end_s, 1e-9),
                num_clusters=args.fault_clusters,
                instances_per_cluster=args.fault_instances,
                seed=args.fault_seed,
            )
        except KeyError as error:
            print(f"error: {error.args[0]}", file=sys.stderr)
            return 2
        windows = fault_windows(schedule, t_end_s=t_end_s)
    if args.format == "ascii":
        text = render_ascii(series, width=args.width, fault_windows=windows)
    elif args.format == "svg":
        text = render_svg(
            series, width=max(300, args.width * 20), fault_windows=windows
        )
    else:
        text = json.dumps(digest(series, windows), indent=2, sort_keys=True) + "\n"
    if args.output:
        Path(args.output).write_text(text)
        print(f"wrote {args.format} summary of {len(series)} series to {args.output}")
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    raise SystemExit(main())
