"""Canonical metric sources: simulator state -> registry samples.

Sources are duck-typed closures so this module stays free of heavy
imports; :meth:`repro.multicluster.system.MultiClusterSystem.attach_metrics`
and :meth:`repro.serving.system.ClusterServingSystem.attach_metrics` wire
them up.  Metric names follow Prometheus conventions: ``_total`` suffix
on counters, base units (bytes, seconds) in names.
"""

from __future__ import annotations

from repro.metrics.prometheus import MetricsRegistry


def fleet_metrics_source(system, cluster: str = "0"):
    """Sampler for one :class:`~repro.serving.system.ClusterServingSystem`.

    Labels every series with the cluster index so the multicluster tier
    can reuse this per shard; queue depth and shed counts come from the
    fleet layer when one is configured and degrade to the dispatcher
    view otherwise.
    """

    def sample(registry: MetricsRegistry, now: float) -> None:
        fleet = system.fleet
        queue = registry.gauge(
            "repro_queue_depth", "Admission backlog plus scheduler waiting"
        )
        active = registry.gauge(
            "repro_active_instances", "Instances in routable serving groups"
        )
        spares = registry.gauge(
            "repro_spare_instances", "Instances held back by the autoscaler"
        )
        submitted = registry.counter(
            "repro_requests_submitted_total", "Requests submitted to the system"
        )
        finished = registry.counter(
            "repro_requests_finished_total", "Requests finished"
        )
        shed = registry.counter(
            "repro_requests_shed_total", "Requests shed by admission control"
        )
        if fleet is not None:
            queue.set(float(fleet.backlog()), cluster=cluster)
            groups = fleet.routable_groups()
            spares.set(float(len(fleet.autoscaler.spare_instances)), cluster=cluster)
            shed.set_total(float(fleet.admission.shed), cluster=cluster)
        else:
            groups = system.active_groups
            queue.set(
                float(sum(g.scheduler.num_waiting for g in groups)), cluster=cluster
            )
            spares.set(0.0, cluster=cluster)
            shed.set_total(0.0, cluster=cluster)
        active.set(float(sum(len(g.instances) for g in groups)), cluster=cluster)
        submitted.set_total(float(system._submitted), cluster=cluster)
        finished.set_total(float(system.metrics.finished_count()), cluster=cluster)
        # Running TTFT tail over everything finished so far: the SLO
        # signal the ttft_p99_breach alert rule watches (0.0 until the
        # first request finishes — percentile() on an empty set).
        registry.gauge(
            "repro_ttft_p99_seconds", "P99 time-to-first-token of finished requests"
        ).set(float(system.metrics.ttft_percentile(99)), cluster=cluster)

    return sample


def client_metrics_source(population, frontend: str = "clients"):
    """Sampler for a :class:`~repro.serve.clients.ClosedLoopPopulation`.

    Exposes the client-side view the fleet counters cannot see: how many
    closed-loop clients still have work, and how often they retried or
    abandoned intents.  ``python -m repro.serve --metrics-out`` adds this
    on top of :func:`fleet_metrics_source` for closed-loop cells.
    """

    def sample(registry: MetricsRegistry, now: float) -> None:
        registry.gauge(
            "repro_serve_active_clients",
            "Closed-loop clients that still have intents to run",
        ).set(float(population.active_clients), frontend=frontend)
        registry.gauge(
            "repro_serve_inflight_attempts",
            "Client attempts submitted but not yet finished or shed",
        ).set(float(population.in_flight), frontend=frontend)
        registry.counter(
            "repro_serve_retries_total",
            "Retry attempts submitted after an admission shed",
        ).set_total(float(population.retries), frontend=frontend)
        registry.counter(
            "repro_serve_give_ups_total",
            "Intents abandoned after exhausting their attempt budget",
        ).set_total(float(population.gave_up), frontend=frontend)
        registry.counter(
            "repro_serve_finished_intents_total",
            "Intents completed (client-observed goodput)",
        ).set_total(float(population.finished), frontend=frontend)

    return sample


def trace_metrics_source(tracer, buckets=None):
    """Sampler streaming per-stage latency histograms off a live tracer.

    Every scrape drains the stage spans the tracer closed since the last
    one into a ``repro_stage_duration_seconds`` histogram labelled by
    stage, so ``--metrics-out`` streams cumulative stage-latency
    distributions (``_bucket``/``_sum``/``_count``) as the run progresses.
    A cursor over :attr:`~repro.trace.Tracer.closed_stage_spans` keeps the
    sampler O(new spans) per scrape.
    """
    cursor = [0]

    def sample(registry: MetricsRegistry, now: float) -> None:
        family = registry.histogram(
            "repro_stage_duration_seconds",
            "Per-request stage durations from the span tracer",
            buckets=buckets,
        )
        spans = tracer.closed_stage_spans
        for span in spans[cursor[0]:]:
            duration = span.duration_s
            if duration is not None:
                family.observe(duration, stage=span.name)
        cursor[0] = len(spans)

    return sample


def tier_metrics_source(tier):
    """Sampler for a :class:`~repro.multicluster.system.MultiClusterSystem`.

    Adds the tier-level counters on top of one per-shard fleet view:
    requests lost to faults, injected faults, cross-cluster WAN bytes,
    and the recovery transient signal — how many fault-displaced
    requests are still unfinished right now.
    """
    shard_sources = [
        fleet_metrics_source(handle.system, cluster=str(handle.index))
        for handle in tier.handles
    ]

    def sample(registry: MetricsRegistry, now: float) -> None:
        for source in shard_sources:
            source(registry, now)
        alive = registry.gauge(
            "repro_cluster_alive", "1 while the cluster shard serves, 0 after an outage"
        )
        for handle in tier.handles:
            alive.set(1.0 if handle.alive else 0.0, cluster=str(handle.index))
        registry.counter(
            "repro_requests_lost_total",
            "Requests lost to faults (sticky outage displacement, dead fabric)",
        ).set_total(float(tier.lost_to_fault))
        registry.counter(
            "repro_faults_total", "Fault events injected so far"
        ).set_total(float(len(tier.fault_times)))
        registry.counter(
            "repro_cross_cluster_bytes_total", "Bytes moved over the WAN fabric"
        ).set_total(float(tier.fabric.bytes_sent))
        registry.gauge(
            "repro_displaced_pending",
            "Fault-displaced requests not yet finished (the recovery transient)",
        ).set(float(tier.displaced_pending()))

    return sample
