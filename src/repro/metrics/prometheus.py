"""Minimal Prometheus text-exposition registry (format version 0.0.4).

Stdlib-only implementation of the two metric types the simulator needs:

* **counter** — cumulative, monotonically non-decreasing.  Simulator
  counters are already cumulative (bytes sent, requests shed), so
  :meth:`CounterFamily.set_total` sets the running total directly and
  *enforces* monotonicity — a decreasing total is a bug in the sampler,
  not a value to silently expose.
* **gauge** — a value that can go up and down (queue depth, active
  instances).

Exposition follows the Prometheus text format: one ``# HELP`` and one
``# TYPE`` comment per family, then one ``name{label="value"} value
timestamp`` line per labelled sample.  Families render in registration
order and samples in sorted label order, so the output is deterministic
for a deterministic simulation.  Timestamps are *simulation* milliseconds
— the whole point of chaos observability is replaying what the simulated
fleet looked like over simulated time.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

#: A frozen label set: ``(("cluster", "0"), ...)`` sorted by label name.
LabelKey = Tuple[Tuple[str, str], ...]

_NAME_OK = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:")


def _check_name(name: str) -> str:
    if not name or name[0].isdigit() or any(c not in _NAME_OK for c in name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _label_key(labels: Mapping[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def escape_label_value(value: str) -> str:
    """Escape a label value per the text-format spec."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def format_value(value: float) -> str:
    """Canonical sample value: ``repr`` round-trips floats exactly."""
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class MetricFamily:
    """One named metric with labelled samples; base of counter and gauge."""

    metric_type = "untyped"

    def __init__(self, name: str, help_text: str) -> None:
        self.name = _check_name(name)
        self.help = help_text
        self._samples: Dict[LabelKey, float] = {}

    def value(self, **labels: str) -> float:
        """Current value of one labelled sample (0.0 when never set)."""
        return self._samples.get(_label_key(labels), 0.0)

    def samples(self) -> Dict[LabelKey, float]:
        """All samples, keyed by frozen label set."""
        return dict(self._samples)

    def render(self, timestamp_ms: Optional[int] = None) -> List[str]:
        """Exposition lines for this family (HELP, TYPE, then samples)."""
        lines = [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.metric_type}",
        ]
        suffix = f" {timestamp_ms}" if timestamp_ms is not None else ""
        for key in sorted(self._samples):
            if key:
                label_text = ",".join(
                    f'{name}="{escape_label_value(value)}"' for name, value in key
                )
                series = f"{self.name}{{{label_text}}}"
            else:
                series = self.name
            lines.append(f"{series} {format_value(self._samples[key])}{suffix}")
        return lines


class CounterFamily(MetricFamily):
    """A monotonically non-decreasing cumulative metric."""

    metric_type = "counter"

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` (>= 0) to a labelled sample."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        key = _label_key(labels)
        self._samples[key] = self._samples.get(key, 0.0) + float(amount)

    def set_total(self, value: float, **labels: str) -> None:
        """Set the cumulative total directly; refuses to go backwards.

        This is the natural bridge from simulator counters, which are
        already running totals — sampling them is a ``set``, not an
        ``inc``, but the monotonicity contract must still hold.
        """
        key = _label_key(labels)
        current = self._samples.get(key, 0.0)
        if value < current:
            raise ValueError(
                f"counter {self.name}{dict(key)} cannot decrease: "
                f"{current} -> {value}"
            )
        self._samples[key] = float(value)


class GaugeFamily(MetricFamily):
    """A metric that can go up and down."""

    metric_type = "gauge"

    def set(self, value: float, **labels: str) -> None:
        self._samples[_label_key(labels)] = float(value)


class MetricsRegistry:
    """An ordered collection of metric families with one exposition view."""

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}

    def counter(self, name: str, help_text: str = "") -> CounterFamily:
        """Get or create a counter family; a gauge of the same name errors."""
        return self._family(CounterFamily, name, help_text)

    def gauge(self, name: str, help_text: str = "") -> GaugeFamily:
        """Get or create a gauge family; a counter of the same name errors."""
        return self._family(GaugeFamily, name, help_text)

    def _family(self, cls, name: str, help_text: str) -> MetricFamily:
        family = self._families.get(name)
        if family is None:
            family = self._families[name] = cls(name, help_text)
        elif not isinstance(family, cls):
            raise ValueError(
                f"metric {name!r} already registered as {family.metric_type}"
            )
        return family

    def families(self) -> List[MetricFamily]:
        """Families in registration order."""
        return list(self._families.values())

    def expose(self, timestamp_ms: Optional[int] = None) -> str:
        """The whole registry in Prometheus text exposition format."""
        lines: List[str] = []
        for family in self._families.values():
            lines.extend(family.render(timestamp_ms))
        return "\n".join(lines) + "\n" if lines else ""

    def snapshot(self) -> Dict[str, Dict[LabelKey, float]]:
        """Every family's samples, keyed by metric name."""
        return {name: family.samples() for name, family in self._families.items()}
