"""Minimal Prometheus text-exposition registry (format version 0.0.4).

Stdlib-only implementation of the two metric types the simulator needs:

* **counter** — cumulative, monotonically non-decreasing.  Simulator
  counters are already cumulative (bytes sent, requests shed), so
  :meth:`CounterFamily.set_total` sets the running total directly and
  *enforces* monotonicity — a decreasing total is a bug in the sampler,
  not a value to silently expose.
* **gauge** — a value that can go up and down (queue depth, active
  instances).

Exposition follows the Prometheus text format: one ``# HELP`` and one
``# TYPE`` comment per family, then one ``name{label="value"} value
timestamp`` line per labelled sample.  Families render in registration
order and samples in sorted label order, so the output is deterministic
for a deterministic simulation.  Timestamps are *simulation* milliseconds
— the whole point of chaos observability is replaying what the simulated
fleet looked like over simulated time.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

#: A frozen label set: ``(("cluster", "0"), ...)`` sorted by label name.
LabelKey = Tuple[Tuple[str, str], ...]

_NAME_OK = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:")


def _check_name(name: str) -> str:
    if not name or name[0].isdigit() or any(c not in _NAME_OK for c in name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _label_key(labels: Mapping[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def escape_label_value(value: str) -> str:
    """Escape a label value per the text-format spec."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def format_value(value: float) -> str:
    """Canonical sample value: ``repr`` round-trips floats exactly."""
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class MetricFamily:
    """One named metric with labelled samples; base of counter and gauge."""

    metric_type = "untyped"

    def __init__(self, name: str, help_text: str) -> None:
        self.name = _check_name(name)
        self.help = help_text
        self._samples: Dict[LabelKey, float] = {}

    def value(self, **labels: str) -> float:
        """Current value of one labelled sample (0.0 when never set)."""
        return self._samples.get(_label_key(labels), 0.0)

    def samples(self) -> Dict[LabelKey, float]:
        """All samples, keyed by frozen label set."""
        return dict(self._samples)

    def render(self, timestamp_ms: Optional[int] = None) -> List[str]:
        """Exposition lines for this family (HELP, TYPE, then samples)."""
        lines = [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.metric_type}",
        ]
        suffix = f" {timestamp_ms}" if timestamp_ms is not None else ""
        for key in sorted(self._samples):
            if key:
                label_text = ",".join(
                    f'{name}="{escape_label_value(value)}"' for name, value in key
                )
                series = f"{self.name}{{{label_text}}}"
            else:
                series = self.name
            lines.append(f"{series} {format_value(self._samples[key])}{suffix}")
        return lines


class CounterFamily(MetricFamily):
    """A monotonically non-decreasing cumulative metric."""

    metric_type = "counter"

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` (>= 0) to a labelled sample."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        key = _label_key(labels)
        self._samples[key] = self._samples.get(key, 0.0) + float(amount)

    def set_total(self, value: float, **labels: str) -> None:
        """Set the cumulative total directly; refuses to go backwards.

        This is the natural bridge from simulator counters, which are
        already running totals — sampling them is a ``set``, not an
        ``inc``, but the monotonicity contract must still hold.
        """
        key = _label_key(labels)
        current = self._samples.get(key, 0.0)
        if value < current:
            raise ValueError(
                f"counter {self.name}{dict(key)} cannot decrease: "
                f"{current} -> {value}"
            )
        self._samples[key] = float(value)


class GaugeFamily(MetricFamily):
    """A metric that can go up and down."""

    metric_type = "gauge"

    def set(self, value: float, **labels: str) -> None:
        self._samples[_label_key(labels)] = float(value)


#: Default histogram buckets (seconds) — the Prometheus client defaults,
#: which bracket the latency range the simulator produces (sub-ms prefill
#: chunks up to multi-second queueing waits).
DEFAULT_BUCKETS = (0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)


class HistogramFamily(MetricFamily):
    """A cumulative-bucket histogram (``_bucket``/``_sum``/``_count``).

    Buckets are cumulative per the exposition format: every observation
    lands in all buckets whose upper bound is >= the value, plus the
    implicit ``+Inf`` bucket.  Rendering is deterministic — sorted label
    sets, fixed bucket order — so scrape streams diff cleanly across
    deterministic runs.  The base-class ``_samples`` mirror holds the
    observation count per label set, so ``snapshot()`` and ``value()``
    keep working (they see the count).
    """

    metric_type = "histogram"

    def __init__(self, name: str, help_text: str, buckets=None) -> None:
        super().__init__(name, help_text)
        bounds = tuple(float(b) for b in (buckets or DEFAULT_BUCKETS))
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(
                f"histogram {name!r} buckets must be strictly increasing"
            )
        self.buckets = bounds
        #: per label set: cumulative count per finite bucket bound.
        self._bucket_counts: Dict[LabelKey, List[int]] = {}
        self._sums: Dict[LabelKey, float] = {}

    def observe(self, value: float, **labels: str) -> None:
        """Record one observation into a labelled series."""
        key = _label_key(labels)
        counts = self._bucket_counts.get(key)
        if counts is None:
            counts = self._bucket_counts[key] = [0] * len(self.buckets)
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                counts[index] += 1
        self._sums[key] = self._sums.get(key, 0.0) + float(value)
        self._samples[key] = self._samples.get(key, 0.0) + 1.0

    def render(self, timestamp_ms: Optional[int] = None) -> List[str]:
        lines = [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.metric_type}",
        ]
        suffix = f" {timestamp_ms}" if timestamp_ms is not None else ""

        def series(base: str, key: LabelKey, extra: Optional[str] = None) -> str:
            parts = [
                f'{name}="{escape_label_value(value)}"' for name, value in key
            ]
            if extra is not None:
                parts.append(extra)
            return f"{base}{{{','.join(parts)}}}" if parts else base

        for key in sorted(self._bucket_counts):
            counts = self._bucket_counts[key]
            for bound, count in zip(self.buckets, counts):
                le = 'le="%s"' % format_value(bound)
                bucket = series(self.name + "_bucket", key, le)
                lines.append(f"{bucket} {count}{suffix}")
            total = int(self._samples.get(key, 0.0))
            inf_bucket = series(self.name + "_bucket", key, 'le="+Inf"')
            lines.append(f"{inf_bucket} {total}{suffix}")
            total_sum = format_value(self._sums.get(key, 0.0))
            lines.append(f"{series(self.name + '_sum', key)} {total_sum}{suffix}")
            lines.append(f"{series(self.name + '_count', key)} {total}{suffix}")
        return lines


class MetricsRegistry:
    """An ordered collection of metric families with one exposition view."""

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}

    def counter(self, name: str, help_text: str = "") -> CounterFamily:
        """Get or create a counter family; a gauge of the same name errors."""
        return self._family(CounterFamily, name, help_text)

    def gauge(self, name: str, help_text: str = "") -> GaugeFamily:
        """Get or create a gauge family; a counter of the same name errors."""
        return self._family(GaugeFamily, name, help_text)

    def histogram(self, name: str, help_text: str = "", buckets=None) -> HistogramFamily:
        """Get or create a histogram family; other types of the name error.

        ``buckets`` only applies on first creation; later calls return the
        existing family unchanged (bucket layout is part of its identity).
        """
        family = self._families.get(name)
        if family is None:
            family = self._families[name] = HistogramFamily(name, help_text, buckets)
        elif not isinstance(family, HistogramFamily):
            raise ValueError(
                f"metric {name!r} already registered as {family.metric_type}"
            )
        return family

    def _family(self, cls, name: str, help_text: str) -> MetricFamily:
        family = self._families.get(name)
        if family is None:
            family = self._families[name] = cls(name, help_text)
        elif not isinstance(family, cls):
            raise ValueError(
                f"metric {name!r} already registered as {family.metric_type}"
            )
        return family

    def families(self) -> List[MetricFamily]:
        """Families in registration order."""
        return list(self._families.values())

    def expose(self, timestamp_ms: Optional[int] = None) -> str:
        """The whole registry in Prometheus text exposition format."""
        lines: List[str] = []
        for family in self._families.values():
            lines.extend(family.render(timestamp_ms))
        return "\n".join(lines) + "\n" if lines else ""

    def snapshot(self) -> Dict[str, Dict[LabelKey, float]]:
        """Every family's samples, keyed by metric name."""
        return {name: family.samples() for name, family in self._families.items()}
