"""Live observability for simulation runs: Prometheus-style metrics.

:mod:`repro.metrics.prometheus` implements a minimal registry (counter +
gauge families) with deterministic text exposition;
:mod:`repro.metrics.monitor` streams scrapes of it from the event loop to
a file or callback while a run executes; :mod:`repro.metrics.sources`
holds the canonical samplers for the serving systems.  Attach one with
``system.attach_metrics(path=...)`` before ``run()``.
"""

from repro.metrics.monitor import MetricsMonitor
from repro.metrics.prometheus import (
    CounterFamily,
    GaugeFamily,
    MetricFamily,
    MetricsRegistry,
    escape_label_value,
    format_value,
)
from repro.metrics.sources import (
    client_metrics_source,
    fleet_metrics_source,
    tier_metrics_source,
)

__all__ = [
    "MetricsMonitor",
    "MetricsRegistry",
    "MetricFamily",
    "CounterFamily",
    "GaugeFamily",
    "escape_label_value",
    "format_value",
    "client_metrics_source",
    "fleet_metrics_source",
    "tier_metrics_source",
]
