"""Live observability for simulation runs: Prometheus-style metrics.

:mod:`repro.metrics.prometheus` implements a minimal registry (counter,
gauge and histogram families) with deterministic text exposition;
:mod:`repro.metrics.monitor` streams scrapes of it from the event loop to
a file or callback while a run executes; :mod:`repro.metrics.sources`
holds the canonical samplers for the serving systems.  Attach one with
``system.attach_metrics(path=...)`` before ``run()``.
:mod:`repro.metrics.plot` (``python -m repro.metrics.plot``) renders a
recorded scrape stream back into per-series time series.
"""

from repro.metrics.monitor import MetricsMonitor
from repro.metrics.prometheus import (
    DEFAULT_BUCKETS,
    CounterFamily,
    GaugeFamily,
    HistogramFamily,
    MetricFamily,
    MetricsRegistry,
    escape_label_value,
    format_value,
)
from repro.metrics.sources import (
    client_metrics_source,
    fleet_metrics_source,
    tier_metrics_source,
    trace_metrics_source,
)

__all__ = [
    "MetricsMonitor",
    "MetricsRegistry",
    "MetricFamily",
    "CounterFamily",
    "GaugeFamily",
    "HistogramFamily",
    "DEFAULT_BUCKETS",
    "escape_label_value",
    "format_value",
    "client_metrics_source",
    "fleet_metrics_source",
    "tier_metrics_source",
    "trace_metrics_source",
]
