"""CLI entry point: ``python -m repro.fleet``.

Sweeps a scenario across router strategies × autoscaler presets (the
elastic-fleet grid) through the unified sweep engine (:mod:`repro.sweeps`)
and writes ``FLEET_results.json`` to the repository root (see
``--output``).  Unchanged cells are served from the on-disk result cache
(``.repro_cache/``); disable with ``--no-cache``, inspect with
``--cache-stats``, purge with ``--clear-cache``.  ``--list-routers`` /
``--list-autoscalers`` / ``--list-faults`` show the registries, and
``--faults`` adds single-cluster fault presets (``none``,
``instance-kill``, ``churn``) as a grid axis.
"""

from __future__ import annotations

import argparse
import sys

from repro.fleet.config import AUTOSCALER_PRESETS, list_autoscaler_presets
from repro.fleet.routing import list_routers
from repro.fleet.schema import validate_document
from repro.fleet.sweep import (
    DEFAULT_FAULTS,
    DEFAULT_POLICIES,
    DEFAULT_SCENARIOS,
    FLEET_SCALES,
    format_results,
    list_fleet_fault_presets,
    run_fleet_sweep,
    stream_cell_metrics,
    write_results,
)
from repro.policies import make_policy
from repro.scenarios.registry import list_scenarios
from repro.sweeps import effective_worker_count
from repro.sweeps.cli import add_cache_arguments, clear_cache, print_cache_stats


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet",
        description="Sweep scenarios across router strategies and autoscaler "
        "presets in parallel and write FLEET_results.json.",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(FLEET_SCALES),
        default="quick",
        help="sweep scale (default: quick)",
    )
    parser.add_argument(
        "--scenarios",
        nargs="*",
        default=None,
        metavar="NAME",
        help=f"scenarios to sweep (default: {' '.join(DEFAULT_SCENARIOS)})",
    )
    parser.add_argument(
        "--policies",
        nargs="*",
        default=None,
        metavar="POLICY",
        help=f"overload-policy keys (default: {' '.join(DEFAULT_POLICIES)})",
    )
    parser.add_argument(
        "--routers",
        nargs="*",
        default=None,
        metavar="ROUTER",
        help="router strategies (default: all registered)",
    )
    parser.add_argument(
        "--autoscalers",
        nargs="*",
        default=None,
        metavar="PRESET",
        help="autoscaler presets (default: all presets)",
    )
    parser.add_argument(
        "--faults",
        nargs="*",
        default=None,
        metavar="PRESET",
        help=f"fault-schedule presets (default: {' '.join(DEFAULT_FAULTS)})",
    )
    parser.add_argument("--seed", type=int, default=42, help="sweep seed")
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes (default: min(grid size, CPU count))",
    )
    parser.add_argument(
        "--sequential",
        action="store_true",
        help="run every cell inline in this process (equivalent to --workers 1)",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="where to write FLEET_results.json (default: repository root)",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="additionally replay the first grid cell inline, streaming live "
        "Prometheus text scrapes to FILE",
    )
    parser.add_argument(
        "--alerts",
        action="store_true",
        help="replay the default alert-rule pack (repro.obs) over every cell's "
        "metric stream and add an alerts block (firing/resolved timeline) to "
        "each entry",
    )
    add_cache_arguments(parser)
    parser.add_argument(
        "--list-routers", action="store_true", help="list router strategies and exit"
    )
    parser.add_argument(
        "--list-autoscalers",
        action="store_true",
        help="list autoscaler presets and exit",
    )
    parser.add_argument(
        "--list-faults",
        action="store_true",
        help="list single-cluster fault presets and exit",
    )
    args = parser.parse_args(argv)

    if args.list_routers:
        for name in list_routers():
            print(name)
        return 0
    if args.list_autoscalers:
        for name in list_autoscaler_presets():
            preset = AUTOSCALER_PRESETS[name]
            state = "elastic" if preset.enabled else "fixed fleet"
            print(f"{name:<10} {state}")
        return 0
    if args.list_faults:
        for name in list_fleet_fault_presets():
            print(name)
        return 0
    if args.clear_cache:
        return clear_cache(args)

    try:
        for policy in args.policies or ():
            make_policy(policy)  # fail fast on typos before spawning workers
        max_workers = 1 if args.sequential else args.workers
        if max_workers is None:
            names = args.scenarios or list(DEFAULT_SCENARIOS)
            grid = (
                len([n for n in names if n in list_scenarios()])
                * len(args.policies or DEFAULT_POLICIES)
                * len(args.routers if args.routers is not None else list_routers())
                * len(
                    args.autoscalers
                    if args.autoscalers is not None
                    else list_autoscaler_presets()
                )
                * len(args.faults if args.faults is not None else DEFAULT_FAULTS)
            )
            max_workers = max(1, min(grid, effective_worker_count()))
        document = run_fleet_sweep(
            scenarios=args.scenarios,
            policies=args.policies,
            routers=args.routers,
            autoscalers=args.autoscalers,
            faults=args.faults,
            scale=FLEET_SCALES[args.scale],
            seed=args.seed,
            max_workers=max_workers,
            use_cache=not args.no_cache,
            cache_dir=args.cache_dir,
            alerts=args.alerts,
        )
    except (KeyError, ValueError) as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    problems = validate_document(document)
    if problems:
        print("schema violations:", *problems, sep="\n  ", file=sys.stderr)
        return 1
    path = write_results(document, args.output)
    print(format_results(document))
    if args.cache_stats:
        print_cache_stats(document, args)
    if args.metrics_out:
        from pathlib import Path

        scrapes = stream_cell_metrics(
            (args.scenarios or list(DEFAULT_SCENARIOS))[0],
            (args.policies or list(DEFAULT_POLICIES))[0],
            (args.routers if args.routers is not None else list_routers())[0],
            (
                args.autoscalers
                if args.autoscalers is not None
                else list_autoscaler_presets()
            )[0],
            FLEET_SCALES[args.scale],
            args.seed,
            Path(args.metrics_out),
            faults=(args.faults if args.faults is not None else list(DEFAULT_FAULTS))[0],
        )
        print(f"streamed {scrapes} metric scrapes to {args.metrics_out}")
    print(f"\nwrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
