"""Fleet controller: composes router, admission control and autoscaler.

One controller per :class:`~repro.serving.system.ClusterServingSystem`
(built when ``ServingConfig.fleet`` is set).  It owns the fleet-level
decision tick — a :class:`~repro.simulation.process.PeriodicProcess` on
the system's deterministic event loop — and is the single entry point the
serving system calls on request arrival, so routing, admission and
elasticity all observe a consistent view of the fleet.

The controller (not the raw group list) defines what is *routable*: a
group the autoscaler is draining stays active (it must finish its running
requests) but no longer receives new work.
"""

from __future__ import annotations

from typing import Dict, List, TYPE_CHECKING

from repro.engine.group import ServingGroup
from repro.engine.request import Request
from repro.fleet.admission import AdmissionController
from repro.fleet.autoscaler import Autoscaler
from repro.fleet.config import FleetConfig
from repro.fleet.routing import make_router
from repro.simulation.process import PeriodicProcess

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serving.system import ClusterServingSystem


class FleetController:
    """Routes, admits and autoscales on behalf of one serving system."""

    def __init__(self, config: FleetConfig, system: "ClusterServingSystem") -> None:
        self.config = config
        self.system = system
        self.router = make_router(config.router, seed=system.config.seed)
        self.admission = AdmissionController(
            config.admission, self.router, groups_provider=self.routable_groups
        )
        self.autoscaler = Autoscaler(config.autoscaler, self)
        self._process = PeriodicProcess(
            system.loop, config.tick_interval_s, self._tick, name="fleet-controller"
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        self._process.start()

    def stop(self) -> None:
        self._process.stop()

    def reserve_instances(self, num_instances: int) -> int:
        """How many instances to hold back as spare (≥1 must keep serving)."""
        if not self.config.autoscaler.enabled:
            return 0
        return min(self.config.autoscaler.reserve_instances, num_instances - 1)

    def on_group_created(self, group: ServingGroup) -> None:
        """Hook from the serving system: every new group drains the queue.

        Subscribing to the iteration loop keeps admission responsive —
        capacity typically frees when an iteration completes, not on the
        coarser controller tick.
        """
        group.iteration_listeners.append(self._on_group_iteration)

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def submit(self, request: Request) -> str:
        """Admit an arriving request; returns the admission outcome."""
        return self.admission.submit(request, self.system.loop.now)

    def routable_groups(self) -> List[ServingGroup]:
        """Active groups currently receiving new work (draining excluded)."""
        return [
            g
            for g in self.system.groups
            if g.active and not self.autoscaler.is_draining(g)
        ]

    # ------------------------------------------------------------------
    # Load view
    # ------------------------------------------------------------------
    # The single definition of cluster load, shared by the autoscaler's
    # triggers and the multicluster tier's routing/placement handles — so
    # local and cross-cluster decisions can never disagree about pressure.
    def backlog(self) -> int:
        """Queued admissions plus every routable group's scheduler backlog."""
        return self.admission.queued + sum(
            g.scheduler.num_waiting for g in self.routable_groups()
        )

    def kv_ratio(self) -> float:
        """Cluster KV demand / capacity over the routable groups."""
        groups = self.routable_groups()
        capacity = sum(g.kv_capacity_bytes() for g in groups)
        demand = sum(g.kv_demand_bytes() for g in groups)
        return demand / capacity if capacity > 0 else float("inf")

    # ------------------------------------------------------------------
    # Ticking
    # ------------------------------------------------------------------
    def _tick(self, now: float) -> None:
        self.admission.drain(now)
        self.autoscaler.tick(now)

    def _on_group_iteration(self, group: ServingGroup, batch, end_time: float) -> None:
        if self.admission.queued:
            self.admission.drain(end_time)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        """Counters for the ``FLEET_results.json`` entry of this run."""
        return {
            "admitted": float(self.admission.admitted),
            "shed": float(self.admission.shed),
            "queue_peak": float(self.admission.queue_peak),
            "scale_up_events": float(self.autoscaler.scale_up_events),
            "scale_down_events": float(self.autoscaler.scale_down_events),
            "spare_instances": float(len(self.autoscaler.spare_instances)),
            "final_groups": float(len(self.routable_groups())),
        }
