"""Stable schema of ``FLEET_results.json``.

The fleet sweep emits one JSON document per run, mirroring the
``BENCH_results.json`` / ``SCENARIO_results.json`` contracts: keys may be
*added* in later schema versions but the keys listed here are never
renamed or removed, and ``tests/test_fleet.py`` pins them.

Determinism contract: for a fixed (scenarios, policies, routers,
autoscalers, scale, seed) the document is bit-identical across runs —
including across parallel and sequential execution — *except* for the
wall-clock keys in :data:`WALL_CLOCK_ENTRY_KEYS` /
:data:`WALL_CLOCK_DOCUMENT_KEYS`; use :func:`strip_wall_clock` before
comparing documents.

Top-level document::

    {
      "schema_version": 1,        # int, bumped on any breaking change
      "repro_version": "1.0.0",   # repro package version that produced it
      "seed": int,                # sweep seed
      "scale": {                  # ExperimentScale the sweep ran at
        "name": str,
        "num_instances": int,
        "trace_duration_s": float,
        "drain_timeout_s": float
      },
      "scenarios": [str, ...],    # scenario names swept, in order
      "policies": [str, ...],     # overload-policy keys swept, in order
      "routers": [str, ...],      # router strategies swept, in order
      "autoscalers": [str, ...],  # autoscaler preset names swept, in order
      "faults": [str, ...],       # fault presets swept ("none" baseline)
      "entries": [FleetEntry, ...],
      "cache_hits": int,          # cells served from .repro_cache (additive
                                  # in schema v1; 0 when caching is off)
      "cache_misses": int,        # cells actually executed this run
      "wall_s_total": float       # host wall-clock of the whole sweep
    }

Each entry (one scenario × policy × router × autoscaler × faults cell)::

    {
      "scenario": str,            # registry name, e.g. "spike-train"
      "policy": str,              # overload-policy key, e.g. "vllm"
      "policy_name": str,         # display name, e.g. "vLLM (DP)"
      "router": str,              # router strategy, e.g. "power_of_two_choices"
      "autoscaler": str,          # preset name, "fixed" or "elastic"
      "faults": str,              # fault preset: "none", "instance-kill",
                                  # "churn" (single-cluster shapes only)
      "fault_events": int,        # materialised fault events in the cell
      "workload": str,            # materialised workload name
      "requests": int,            # requests submitted
      "admitted": int,            # requests dispatched to a serving group
      "shed": int,                # requests rejected by admission control
      "queue_peak": int,          # peak admission-queue occupancy
      "scale_up_events": int,     # autoscaler scale-up decisions
      "scale_down_events": int,   # autoscaler drain decisions
      "initial_groups": int,      # serving groups at t=0
      "final_groups": int,        # routable groups when the run ended
      "finished": int,            # requests finished before the horizon
      "completion_ratio": float,  # finished / requests (shed count against it)
      "ttft_p50": float, "ttft_p90": float, "ttft_p99": float,   # seconds
      "tpot_p50": float, "tpot_p90": float, "tpot_p99": float,   # seconds
      "throughput_tokens_per_s": float,
      "slo_scale": float,         # scenario SLO factor (x best-cell P50)
      "ttft_slo_s": float,        # absolute TTFT SLO derived for the cell
      "tpot_slo_s": float,        # absolute TPOT SLO derived for the cell
      "slo_violation_ratio": float,
      "slo_attainment": float,    # 1 - slo_violation_ratio
      "wall_s": float             # host wall-clock of this cell
    }
"""

from __future__ import annotations

import copy
from typing import Dict, List

#: Current schema version; bump only on breaking changes.
SCHEMA_VERSION = 1

#: Keys every top-level document must carry.
DOCUMENT_KEYS = (
    "schema_version",
    "repro_version",
    "seed",
    "scale",
    "scenarios",
    "policies",
    "routers",
    "autoscalers",
    "faults",
    "entries",
    "wall_s_total",
)

#: Additive schema-v1 keys: emitted by current sweeps but not required by
#: the validator, so documents written before they existed stay valid.
#: ``alerts`` records whether the sweep ran with ``--alerts``; alert
#: entries carry an optional ``alerts`` block (see :mod:`repro.obs.schema`).
OPTIONAL_DOCUMENT_KEYS = ("cache_hits", "cache_misses", "alerts")

#: Keys every entry must carry (the stable contract).
ENTRY_KEYS = (
    "scenario",
    "policy",
    "policy_name",
    "router",
    "autoscaler",
    "faults",
    "fault_events",
    "workload",
    "requests",
    "admitted",
    "shed",
    "queue_peak",
    "scale_up_events",
    "scale_down_events",
    "initial_groups",
    "final_groups",
    "finished",
    "completion_ratio",
    "ttft_p50",
    "ttft_p90",
    "ttft_p99",
    "tpot_p50",
    "tpot_p90",
    "tpot_p99",
    "throughput_tokens_per_s",
    "slo_scale",
    "ttft_slo_s",
    "tpot_slo_s",
    "slo_violation_ratio",
    "slo_attainment",
    "wall_s",
)

#: Keys of the scale block (same as the bench/scenario schemas').
SCALE_KEYS = ("name", "num_instances", "trace_duration_s", "drain_timeout_s")

#: Entry keys carrying host wall-clock (excluded from determinism checks).
WALL_CLOCK_ENTRY_KEYS = ("wall_s",)

#: Document keys carrying host-side execution accounting (wall-clock and
#: cache hit/miss counts) — excluded from determinism checks: a warm rerun
#: must compare equal to the cold run that populated its cache.
WALL_CLOCK_DOCUMENT_KEYS = ("wall_s_total", "cache_hits", "cache_misses")


def strip_wall_clock(document: Dict) -> Dict:
    """A deep copy of ``document`` with every wall-clock key removed.

    Two sweeps of the same grid and seed must compare equal after this.
    """
    stripped = copy.deepcopy(document)
    for key in WALL_CLOCK_DOCUMENT_KEYS:
        stripped.pop(key, None)
    for entry in stripped.get("entries", []):
        for key in WALL_CLOCK_ENTRY_KEYS:
            entry.pop(key, None)
    return stripped


def validate_document(document: Dict) -> List[str]:
    """Return a list of schema violations (empty when the document is valid)."""
    problems: List[str] = []
    for key in DOCUMENT_KEYS:
        if key not in document:
            problems.append(f"missing top-level key {key!r}")
    if document.get("schema_version") != SCHEMA_VERSION:
        problems.append(
            f"schema_version is {document.get('schema_version')!r}, expected {SCHEMA_VERSION}"
        )
    for key in SCALE_KEYS:
        if key not in document.get("scale", {}):
            problems.append(f"missing scale key {key!r}")
    for key in ("scenarios", "policies", "routers", "autoscalers", "faults"):
        if key in document and not isinstance(document[key], list):
            problems.append(f"{key} must be a list")
    entries = document.get("entries", [])
    if not isinstance(entries, list):
        problems.append("entries must be a list")
        entries = []
    for index, entry in enumerate(entries):
        for key in ENTRY_KEYS:
            if key not in entry:
                problems.append(
                    f"entry {index} ({entry.get('scenario')!r} x {entry.get('router')!r} "
                    f"x {entry.get('autoscaler')!r}) missing {key!r}"
                )
    return problems
