"""Elastic fleet layer (``python -m repro.fleet``).

Makes the fleet itself a simulated, policy-driven object in front of the
paper's memory-overload policies: a pluggable router registry
(:mod:`repro.fleet.routing`), an admission controller with bounded
queues, SLO-aware shedding and per-tenant fairness
(:mod:`repro.fleet.admission`), and an autoscaler that grows/drains
serving groups from spare cluster capacity with realistic cold-start
delays (:mod:`repro.fleet.autoscaler`) — all composed by
:class:`~repro.fleet.controller.FleetController` and driven through the
deterministic event loop.  The sweep runner
(:mod:`repro.fleet.sweep`) replays scenarios across the router ×
autoscaler grid and emits a stable-schema ``FLEET_results.json``.

Note: :mod:`repro.fleet.sweep` is intentionally *not* imported here — it
pulls in :mod:`repro.serving`, which itself resolves routers from this
package; import it directly where needed.
"""

from repro.fleet.admission import AdmissionController
from repro.fleet.autoscaler import Autoscaler
from repro.fleet.config import (
    AUTOSCALER_PRESETS,
    AdmissionConfig,
    AutoscalerConfig,
    FleetConfig,
    fleet_preset,
    list_autoscaler_presets,
    make_fleet_config,
)
from repro.fleet.controller import FleetController
from repro.fleet.routing import (
    LeastLoadedRouter,
    MemoryHeadroomRouter,
    PowerOfTwoChoicesRouter,
    RoundRobinRouter,
    Router,
    SessionAffinityRouter,
    list_routers,
    make_router,
    register_router,
)
from repro.fleet.schema import (
    DOCUMENT_KEYS,
    ENTRY_KEYS,
    SCALE_KEYS,
    SCHEMA_VERSION,
    WALL_CLOCK_DOCUMENT_KEYS,
    WALL_CLOCK_ENTRY_KEYS,
    strip_wall_clock,
    validate_document,
)

__all__ = [
    "AUTOSCALER_PRESETS",
    "AdmissionConfig",
    "AdmissionController",
    "Autoscaler",
    "AutoscalerConfig",
    "DOCUMENT_KEYS",
    "ENTRY_KEYS",
    "FleetConfig",
    "FleetController",
    "LeastLoadedRouter",
    "MemoryHeadroomRouter",
    "PowerOfTwoChoicesRouter",
    "RoundRobinRouter",
    "Router",
    "SCALE_KEYS",
    "SCHEMA_VERSION",
    "SessionAffinityRouter",
    "WALL_CLOCK_DOCUMENT_KEYS",
    "WALL_CLOCK_ENTRY_KEYS",
    "fleet_preset",
    "list_autoscaler_presets",
    "list_routers",
    "make_fleet_config",
    "make_router",
    "register_router",
    "strip_wall_clock",
    "validate_document",
]
