"""Autoscaler: grow and drain serving groups from spare cluster capacity.

The serving system holds back ``reserve_instances`` of the cluster's
instances as *spare capacity*: they exist (GPUs are provisioned) but hold
no model weights and serve nothing.  On a scale-up trigger the autoscaler
takes a spare, waits ``cold_start_s`` simulated seconds (weight loading —
elasticity is not free), then loads the full model onto it and creates a
fresh single-instance serving group that immediately joins the routable
set.  On sustained calm it *drains* the youngest single-instance group:
routing stops, queued requests are re-homed through the router, and once
the last running request finishes the group retires and its instance
returns to the spare pool.

Triggers are OR-ed and evaluated on the fleet controller's tick, entirely
inside the deterministic event loop:

* queue depth — (admission queue + group backlogs) per active group;
* memory pressure — cluster KV demand / capacity;
* tail latency — TTFT P99 over a sliding window of recent finishes.

Scale-down only touches single-instance groups, so groups a policy merged
into pipelines (KunServe drops) are never torn down underneath it.
"""

from __future__ import annotations

from typing import Callable, Deque, List, Optional, TYPE_CHECKING

from collections import deque

from repro.engine.group import ServingGroup
from repro.engine.instance import ServingInstance
from repro.engine.metrics import percentile
from repro.fleet.config import AutoscalerConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fleet.controller import FleetController


class Autoscaler:
    """Adds/drains serving groups on queue, latency and memory triggers."""

    def __init__(self, config: AutoscalerConfig, controller: "FleetController") -> None:
        self.config = config
        self.controller = controller
        self.spare_instances: List[ServingInstance] = []
        self.draining: List[ServingGroup] = []
        self._pending_scale_ups = 0
        self._last_action_time = float("-inf")
        self._calm_ticks = 0
        #: (finish_time, ttft) of recent finishes for the TTFT P99 trigger.
        self._recent_ttfts: Deque[tuple] = deque()
        self._record_cursor = 0

        self.scale_up_events = 0
        self.scale_down_events = 0

    # ------------------------------------------------------------------
    # Capacity bookkeeping
    # ------------------------------------------------------------------
    def adopt_spares(self, instances: List[ServingInstance]) -> None:
        """Take ownership of the instances held back as spare capacity."""
        self.spare_instances.extend(instances)

    def is_draining(self, group: ServingGroup) -> bool:
        return group in self.draining

    @property
    def pending_scale_ups(self) -> int:
        return self._pending_scale_ups

    @property
    def has_spare(self) -> bool:
        """Whether any cold instance is available to activate."""
        return bool(self.spare_instances)

    # ------------------------------------------------------------------
    # Tick
    # ------------------------------------------------------------------
    def tick(self, now: float) -> None:
        if not self.config.enabled:
            return
        self._finish_drains()
        inputs = self._pressure_inputs(now)
        if inputs is None:
            return
        num_groups, backlog, memory_ratio, ttft_p99 = inputs

        if self._should_scale_up(num_groups, backlog, memory_ratio, ttft_p99):
            if self._cooldown_passed(now):
                self._scale_up(now)
            return

        calm = (
            backlog == 0
            and memory_ratio <= self.config.scale_down_memory_ratio
        )
        self._calm_ticks = self._calm_ticks + 1 if calm else 0
        if (
            self._calm_ticks >= self.config.scale_down_idle_ticks
            and self._cooldown_passed(now)
        ):
            self._scale_down(now)

    # ------------------------------------------------------------------
    # Scale up
    # ------------------------------------------------------------------
    def _pressure_inputs(self, now: float):
        """The trigger inputs ``(num_groups, backlog, memory_ratio,
        ttft_p99)`` over the routable groups, or ``None`` with none.

        The single definition of "pressure" shared by the local tick and
        the multicluster placement tier (:meth:`wants_capacity`), so the
        two can never disagree about when a cluster is overloaded.
        """
        groups = self.controller.routable_groups()
        if not groups:
            return None
        backlog = self.controller.backlog()
        memory_ratio = self.controller.kv_ratio()
        ttft_p99 = self._ttft_p99(now, self.controller.system.metrics.records)
        return len(groups), backlog, memory_ratio, ttft_p99

    def _triggered(
        self, num_groups: int, backlog: int, memory_ratio: float, ttft_p99: Optional[float]
    ) -> bool:
        """Whether any scale-up trigger currently holds (triggers only)."""
        if backlog >= self.config.scale_up_queue_depth * num_groups:
            return True
        if memory_ratio >= self.config.scale_up_memory_ratio:
            return True
        if (
            self.config.scale_up_ttft_p99_s is not None
            and ttft_p99 is not None
            and ttft_p99 > self.config.scale_up_ttft_p99_s
        ):
            return True
        return False

    def _should_scale_up(
        self, num_groups: int, backlog: int, memory_ratio: float, ttft_p99: Optional[float]
    ) -> bool:
        if not self.spare_instances:
            return False
        target = num_groups + self._pending_scale_ups
        if self.config.max_groups is not None and target >= self.config.max_groups:
            return False
        return self._triggered(num_groups, backlog, memory_ratio, ttft_p99)

    def wants_capacity(self, now: float) -> bool:
        """Whether a scale-up trigger holds, spare availability aside.

        The multicluster placement tier polls this on clusters that have
        exhausted their local spares: a ``True`` here with ``has_spare``
        ``False`` is exactly the situation where a sibling cluster should
        absorb the scale-up.
        """
        if not self.config.enabled:
            return False
        inputs = self._pressure_inputs(now)
        if inputs is None:
            return False
        return self._triggered(*inputs)

    def force_scale_up(self, now: float) -> bool:
        """Externally-directed scale-up (the multicluster placement tier).

        Activates one spare regardless of this cluster's own triggers —
        the *caller* observed the pressure, possibly on a sibling cluster.
        Still respects the spare pool, ``max_groups`` and the cooldown, so
        placement cannot thrash a cluster faster than its own autoscaler
        could.  Returns whether a scale-up was started.
        """
        if not self.config.enabled or not self.spare_instances:
            return False
        target = len(self.controller.routable_groups()) + self._pending_scale_ups
        if self.config.max_groups is not None and target >= self.config.max_groups:
            return False
        if not self._cooldown_passed(now):
            return False
        self._scale_up(now)
        return True

    def _scale_up(self, now: float) -> None:
        instance = self.spare_instances.pop(0)
        self._pending_scale_ups += 1
        self._last_action_time = now
        self.scale_up_events += 1
        self._calm_ticks = 0
        system = self.controller.system
        system.metrics.mark_event(
            now, "fleet-scale-up", instance_id=instance.instance_id,
            cold_start_s=self.config.cold_start_s,
        )
        system.loop.schedule(
            self.config.cold_start_s,
            lambda: self._activate(instance),
            name="fleet-cold-start",
        )

    def _activate(self, instance: ServingInstance) -> None:
        """Cold start finished: load weights, join the fleet, absorb queue."""
        self._pending_scale_ups -= 1
        system = self.controller.system
        if instance.num_resident_layers < system.model.num_layers:
            instance.load_full_model()
        group = system.create_group([instance])
        system.metrics.mark_event(
            system.loop.now, "fleet-group-up",
            group_id=group.group_id, instance_id=instance.instance_id,
        )
        self.controller.admission.drain(system.loop.now)

    # ------------------------------------------------------------------
    # Scale down
    # ------------------------------------------------------------------
    def _scale_down(self, now: float) -> None:
        groups = self.controller.routable_groups()
        floor = max(self.config.min_groups, 1)
        if len(groups) <= floor:
            return
        candidates = [g for g in groups if len(g.instances) == 1]
        if not candidates:
            return
        victim = max(candidates, key=lambda g: g.group_id)
        self.draining.append(victim)
        self._last_action_time = now
        self.scale_down_events += 1
        self._calm_ticks = 0
        system = self.controller.system
        system.metrics.mark_event(now, "fleet-drain-start", group_id=victim.group_id)
        self._rehome_waiting(victim)
        self._finish_drains()

    def _rehome_waiting(self, group: ServingGroup) -> None:
        """Move a draining group's queued requests to the rest of the fleet."""
        admission = self.controller.admission
        scheduler = group.scheduler
        while scheduler.waiting:
            admission.readmit(scheduler.waiting.popleft())

    def _finish_drains(self) -> None:
        """Retire draining groups whose last request has finished."""
        system = self.controller.system
        still_draining: List[ServingGroup] = []
        for group in self.draining:
            scheduler = group.scheduler
            busy = scheduler.num_running + scheduler.num_waiting + scheduler.num_swapped
            if busy == 0 and group.active:
                instance = group.instances[0]
                system.retire_group(group)
                self.spare_instances.append(instance)
                system.metrics.mark_event(
                    system.loop.now, "fleet-group-down",
                    group_id=group.group_id, instance_id=instance.instance_id,
                )
            elif group.active:
                still_draining.append(group)
        self.draining = still_draining

    # ------------------------------------------------------------------
    # Triggers
    # ------------------------------------------------------------------
    def _ttft_p99(self, now: float, records) -> Optional[float]:
        """TTFT P99 over finishes in the last ~10 ticks (sliding window)."""
        window_s = 10.0 * self.controller.config.tick_interval_s
        for record in records[self._record_cursor:]:
            if record.ttft is not None and record.finish_time is not None:
                self._recent_ttfts.append((record.finish_time, record.ttft))
        self._record_cursor = len(records)
        horizon = now - window_s
        recent = self._recent_ttfts
        while recent and recent[0][0] < horizon:
            recent.popleft()
        if len(recent) < 5:
            return None
        return percentile([ttft for _, ttft in recent], 99)

    def _cooldown_passed(self, now: float) -> bool:
        return now - self._last_action_time >= self.config.cooldown_s
