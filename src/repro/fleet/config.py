"""Fleet-layer configuration: routing, admission control, autoscaling.

These dataclasses are deliberately import-light (stdlib only) so they can
be embedded in :class:`repro.serving.config.ServingConfig` and shipped to
sweep worker processes without dragging the serving stack along.

A :class:`FleetConfig` describes the elastic-fleet layer that sits *in
front of* the memory-overload policies the paper studies: which router
strategy dispatches requests (:mod:`repro.fleet.routing`), how the
admission controller bounds queues and sheds load
(:class:`AdmissionConfig`), and whether/how the autoscaler grows and
shrinks the set of serving groups (:class:`AutoscalerConfig`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class AdmissionConfig:
    """Admission control: bounded queues, SLO-aware shedding, fairness.

    The defaults are deliberately permissive (effectively pass-through) so
    a fleet run with an untouched ``AdmissionConfig`` behaves like the
    plain dispatcher; presets tighten them to study shedding.

    Attributes:
        max_queue_depth: per-tenant bound on the admission queue; an
            arriving request is shed (rejected) when its tenant's queue is
            full.  Tenants are keyed by the request's ``slo_class``.
        max_group_waiting: a serving group stops *accepting* new requests
            once its scheduler backlog reaches this many waiting requests;
            arrivals then wait in the admission queue until a group frees
            up (or are shed).
        ttft_shed_s: SLO-aware shedding — a queued request that has
            already waited this long is shed instead of dispatched (it
            would violate its TTFT budget anyway and only add load).
            ``None`` disables SLO shedding.
    """

    max_queue_depth: int = 100_000
    max_group_waiting: int = 100_000
    ttft_shed_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_queue_depth <= 0:
            raise ValueError("max_queue_depth must be positive")
        if self.max_group_waiting <= 0:
            raise ValueError("max_group_waiting must be positive")
        if self.ttft_shed_s is not None and self.ttft_shed_s <= 0:
            raise ValueError("ttft_shed_s must be positive when set")


@dataclass(frozen=True)
class AutoscalerConfig:
    """Elastic capacity: when to add or drain serving groups.

    Scale-up fires when *any* trigger holds (queue depth per group, memory
    pressure, or TTFT P99); a new group only starts serving after
    ``cold_start_s`` simulated seconds (model-load time), so elasticity
    has a realistic cost.  Scale-down requires ``scale_down_idle_ticks``
    consecutive calm ticks, drains the youngest single-instance group
    (stops routing to it, re-homes its queued requests) and retires it
    once its last running request finishes.

    Attributes:
        enabled: whether the autoscaler acts at all (``False`` = fixed
            fleet; the fleet tick still runs admission control).
        reserve_instances: instances held back from the initial deployment
            as spare capacity the autoscaler can activate (clamped so at
            least one instance serves from the start).
        min_groups: never drain below this many active groups.
        max_groups: cap on active groups (``None`` = bounded only by
            spare capacity).
        scale_up_queue_depth: scale up when (admission queue + per-group
            waiting) per active group reaches this.
        scale_up_memory_ratio: scale up when cluster KV demand/capacity
            reaches this.
        scale_up_ttft_p99_s: scale up when the TTFT P99 over the recent
            window exceeds this (``None`` disables the trigger).
        scale_down_memory_ratio: a tick is "calm" only when demand/capacity
            is at or below this and no requests are queued.
        scale_down_idle_ticks: consecutive calm ticks required before
            draining a group.
        cold_start_s: delay between the scale-up decision and the new
            group serving (weight loading / container start).
        cooldown_s: minimum time between scaling actions.
    """

    enabled: bool = False
    reserve_instances: int = 0
    min_groups: int = 1
    max_groups: Optional[int] = None
    scale_up_queue_depth: int = 8
    scale_up_memory_ratio: float = 0.90
    scale_up_ttft_p99_s: Optional[float] = None
    scale_down_memory_ratio: float = 0.30
    scale_down_idle_ticks: int = 4
    cold_start_s: float = 5.0
    cooldown_s: float = 8.0

    def __post_init__(self) -> None:
        if self.reserve_instances < 0:
            raise ValueError("reserve_instances must be >= 0")
        if self.min_groups < 1:
            raise ValueError("min_groups must be >= 1")
        if self.max_groups is not None and self.max_groups < self.min_groups:
            raise ValueError("max_groups must be >= min_groups")
        if self.scale_up_queue_depth <= 0:
            raise ValueError("scale_up_queue_depth must be positive")
        if not 0.0 < self.scale_up_memory_ratio:
            raise ValueError("scale_up_memory_ratio must be positive")
        if self.scale_up_ttft_p99_s is not None and self.scale_up_ttft_p99_s <= 0:
            raise ValueError("scale_up_ttft_p99_s must be positive when set")
        if self.scale_down_memory_ratio < 0:
            raise ValueError("scale_down_memory_ratio must be >= 0")
        if self.scale_down_idle_ticks < 1:
            raise ValueError("scale_down_idle_ticks must be >= 1")
        if self.cold_start_s < 0:
            raise ValueError("cold_start_s must be >= 0")
        if self.cooldown_s < 0:
            raise ValueError("cooldown_s must be >= 0")


@dataclass(frozen=True)
class FleetConfig:
    """The whole fleet layer: router + admission + autoscaler.

    Attributes:
        router: router strategy name (:func:`repro.fleet.routing.list_routers`).
        admission: admission-control parameters.
        autoscaler: elastic-capacity parameters.
        tick_interval_s: period of the fleet controller's decision tick.
    """

    router: str = "least_loaded"
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    autoscaler: AutoscalerConfig = field(default_factory=AutoscalerConfig)
    tick_interval_s: float = 1.0

    def __post_init__(self) -> None:
        if not self.router:
            raise ValueError("router must be non-empty")
        if self.tick_interval_s <= 0:
            raise ValueError("tick_interval_s must be positive")


# ----------------------------------------------------------------------
# Named autoscaler presets (the fleet sweep's elasticity axis)
# ----------------------------------------------------------------------
#: "fixed" pins the fleet (no elasticity, the paper's deployment);
#: "elastic" reserves one instance as spare capacity and scales on queue
#: depth / memory pressure with a 5 s cold start.
AUTOSCALER_PRESETS: Dict[str, AutoscalerConfig] = {
    "fixed": AutoscalerConfig(enabled=False),
    "elastic": AutoscalerConfig(
        enabled=True,
        reserve_instances=1,
        min_groups=1,
        scale_up_queue_depth=8,
        scale_up_memory_ratio=0.90,
        scale_down_memory_ratio=0.30,
        scale_down_idle_ticks=4,
        cold_start_s=5.0,
        cooldown_s=8.0,
    ),
}


def list_autoscaler_presets() -> List[str]:
    """Registered autoscaler preset names."""
    return list(AUTOSCALER_PRESETS)


def make_fleet_config(
    router: str = "least_loaded",
    autoscaler: str = "fixed",
    *,
    admission: Optional[AdmissionConfig] = None,
    tick_interval_s: float = 1.0,
) -> FleetConfig:
    """Build a :class:`FleetConfig` from a router name and a preset name."""
    # Local import: this module stays import-light for the sweep workers,
    # but router typos should still fail at configuration time.
    from repro.fleet.routing import list_routers

    if router not in list_routers():
        known = ", ".join(list_routers())
        raise KeyError(f"unknown router {router!r}; known routers: {known}")
    if autoscaler not in AUTOSCALER_PRESETS:
        known = ", ".join(AUTOSCALER_PRESETS)
        raise KeyError(f"unknown autoscaler preset {autoscaler!r}; known: {known}")
    return FleetConfig(
        router=router,
        admission=admission if admission is not None else AdmissionConfig(),
        autoscaler=AUTOSCALER_PRESETS[autoscaler],
        tick_interval_s=tick_interval_s,
    )


def fleet_preset(name: str) -> FleetConfig:
    """Resolve a compact ``"router/autoscaler"`` preset string.

    Either side may be omitted: ``"elastic"`` means the default router with
    the elastic preset; ``"power_of_two_choices/fixed"`` names both.  This
    is the format ``repro.scenarios``' ``--fleet`` axis accepts.
    """
    router, _, scaler = name.partition("/")
    if not _:
        # A single token: an autoscaler preset name, else a router name.
        if router in AUTOSCALER_PRESETS:
            return make_fleet_config(autoscaler=router)
        return make_fleet_config(router=router)
    return make_fleet_config(router=router, autoscaler=scaler)


def with_fleet(config, fleet: FleetConfig):
    """Return a copy of a ``ServingConfig``-like dataclass with ``fleet`` set."""
    return replace(config, fleet=fleet)


__all__: Tuple[str, ...] = (
    "AdmissionConfig",
    "AutoscalerConfig",
    "AUTOSCALER_PRESETS",
    "FleetConfig",
    "fleet_preset",
    "list_autoscaler_presets",
    "make_fleet_config",
    "with_fleet",
)
