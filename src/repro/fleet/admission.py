"""Admission control: bounded queues, SLO-aware shedding, tenant fairness.

Sits between request arrival and the router.  While at least one serving
group is *accepting* (its scheduler backlog is below the configured
watermark), arrivals route straight through.  Otherwise they wait in a
bounded per-tenant admission queue — tenants are keyed by the request's
``slo_class`` — and are drained round-robin across tenants (deficit-style
fairness: the tenant that goes first rotates every drain) whenever
capacity frees up.  Two shedding mechanisms bound the damage of sustained
overload:

* **queue bound** — an arrival whose tenant queue is full is rejected
  outright (``max_queue_depth``);
* **SLO shed** — a queued request that has already waited past
  ``ttft_shed_s`` is dropped at drain time: it would violate its TTFT
  budget anyway, and serving it would only push the requests behind it
  over their budgets too.

Shed requests are never dispatched; the serving system records them as
unfinished, so completion ratios and SLO attainment account for them.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence

from repro.engine.group import ServingGroup
from repro.engine.request import Request
from repro.fleet.config import AdmissionConfig
from repro.fleet.routing import Router

#: Provides the routable groups (active, non-draining) at call time.
GroupProvider = Callable[[], List[ServingGroup]]


class AdmissionController:
    """Bounded, tenant-fair admission in front of the router."""

    def __init__(
        self,
        config: AdmissionConfig,
        router: Router,
        groups_provider: GroupProvider,
    ) -> None:
        self.config = config
        self.router = router
        self._groups_provider = groups_provider
        self._queues: Dict[str, Deque[Request]] = {}
        #: tenants in first-seen order; the round-robin drain rotates over it.
        self._tenant_order: List[str] = []
        self._rr_offset = 0
        #: ids of re-homed requests: shed-exempt, not re-counted as admitted.
        self._readmitted: set = set()

        self.admitted = 0
        self.shed = 0
        self.queue_peak = 0
        self.shed_requests: List[Request] = []
        #: called with each shed request, synchronously at the shed decision
        #: — the online serving frontend's clients key retries off this.
        self.shed_listeners: List[Callable[[Request], None]] = []
        #: per-request span recorder (``repro.trace``); ``None`` when off.
        self.tracer = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def queued(self) -> int:
        """Requests currently waiting in the admission queues."""
        return sum(len(q) for q in self._queues.values())

    def queued_for(self, tenant: str) -> int:
        queue = self._queues.get(tenant)
        return len(queue) if queue is not None else 0

    # ------------------------------------------------------------------
    # Intake
    # ------------------------------------------------------------------
    def submit(self, request: Request, now: float) -> str:
        """Admit, queue, or shed an arriving request.

        Returns ``"dispatched"``, ``"queued"`` or ``"shed"``.  Older queued
        requests are drained first so per-tenant FIFO order is preserved.
        """
        self.drain(now)
        tenant = request.slo_class
        queue = self._queue(tenant)
        if not queue:
            group = self._accepting_group(request)
            if group is not None:
                self._dispatch(request, group)
                return "dispatched"
        if len(queue) >= self.config.max_queue_depth:
            self._shed(request)
            return "shed"
        queue.append(request)
        self.queue_peak = max(self.queue_peak, self.queued)
        return "queued"

    def readmit(self, request: Request) -> str:
        """Re-home a request evicted from a draining group.

        Dispatches immediately when some group accepts (the request keeps
        its original arrival time, so its queueing delay is preserved);
        otherwise it rejoins its tenant's admission queue — never shed,
        since it was already admitted once.
        """
        group = self._accepting_group(request)
        if group is not None:
            # Not counted in ``admitted`` again — it already was on arrival.
            group.adopt_waiting(request)
            return "dispatched"
        self._readmitted.add(request.request_id)
        self._queue(request.slo_class).append(request)
        self.queue_peak = max(self.queue_peak, self.queued)
        return "queued"

    def evict_all(self) -> List[Request]:
        """Empty every admission queue and return the evicted requests.

        Used by chaos cluster outages: a dead cluster cannot serve its
        queue, so the tier takes the waiting requests back and either
        re-homes them (``migrate``) or accounts them as lost to the fault
        (``sticky``).  Evicted requests are *not* counted as shed — they
        never reached a shedding decision; their fate is the tier's call.
        Returned in deterministic ``(arrival_time, request_id)`` order.
        """
        evicted: List[Request] = []
        for queue in self._queues.values():
            evicted.extend(queue)
            queue.clear()
        self._readmitted.clear()
        evicted.sort(key=lambda r: (r.arrival_time, r.request_id))
        return evicted

    # ------------------------------------------------------------------
    # Draining
    # ------------------------------------------------------------------
    def drain(self, now: float) -> int:
        """Dispatch queued requests while capacity lasts; returns the count.

        Tenants are visited round-robin, one request per tenant per round,
        and the tenant that goes first rotates every call so no tenant can
        starve the others during a long overload.
        """
        if self.config.ttft_shed_s is not None:
            self._shed_expired(now)
        if not self.queued:
            return 0
        dispatched = 0
        order = self._tenant_order
        self._rr_offset = (self._rr_offset + 1) % max(1, len(order))
        while True:
            progressed = False
            for index in range(len(order)):
                tenant = order[(self._rr_offset + index) % len(order)]
                queue = self._queues[tenant]
                if not queue:
                    continue
                group = self._accepting_group(queue[0])
                if group is None:
                    return dispatched
                self._dispatch(queue.popleft(), group)
                dispatched += 1
                progressed = True
            if not progressed:
                return dispatched

    def _shed_expired(self, now: float) -> None:
        budget = self.config.ttft_shed_s
        for tenant in self._tenant_order:
            queue = self._queues[tenant]
            while queue and now - queue[0].arrival_time > budget:
                # Re-homed requests keep readmit()'s never-shed guarantee;
                # a protected head also shields the (younger) tail, which
                # preserves FIFO order within the tenant.
                if queue[0].request_id in self._readmitted:
                    break
                self._shed(queue.popleft())

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _queue(self, tenant: str) -> Deque[Request]:
        queue = self._queues.get(tenant)
        if queue is None:
            queue = self._queues[tenant] = deque()
            self._tenant_order.append(tenant)
        return queue

    def _accepting(self, group: ServingGroup) -> bool:
        return (
            not group.scheduler.memory_blocked
            and group.scheduler.num_waiting < self.config.max_group_waiting
        )

    def _accepting_group(self, request: Request) -> Optional[ServingGroup]:
        candidates = [g for g in self._groups_provider() if self._accepting(g)]
        if not candidates:
            return None
        group = self.router.route(request, candidates)
        if group is not None and self.tracer is not None:
            self.tracer.on_route(
                request, f"group{group.group_id}", scope=self.router.name
            )
        return group

    def _dispatch(self, request: Request, group: ServingGroup) -> None:
        group.enqueue(request)
        if request.request_id in self._readmitted:
            # A re-homed request leaving the queue was admitted on arrival.
            self._readmitted.discard(request.request_id)
        else:
            self.admitted += 1

    def _shed(self, request: Request) -> None:
        self.shed += 1
        self.shed_requests.append(request)
        if self.tracer is not None:
            self.tracer.on_shed(request)
        for listener in self.shed_listeners:
            listener(request)
