"""Pluggable request routers behind a registry.

The router decides which serving group receives an arriving request.  The
paper fixes this layer to Llumnix-style least-loaded dispatch for every
evaluated system; this module makes it a first-class axis, mirroring the
``repro.scenarios`` registry pattern: strategies are registered by name
(:func:`register_router`), instantiated with :func:`make_router`, and the
dispatcher / fleet controller resolve them from the same registry.

Every router is deterministic for a fixed seed: the only stochastic
strategy (power-of-two-choices) samples from a :class:`SeededRNG` stream
derived from the system seed.
"""

from __future__ import annotations

import abc
import hashlib
from typing import Callable, Dict, List, Sequence, Type

from repro.engine.group import ServingGroup
from repro.engine.request import Request
from repro.simulation.rng import SeededRNG


def load_key(group: ServingGroup):
    """Llumnix-style load: memory demand/capacity, ties by queue then id."""
    capacity = group.kv_capacity_bytes()
    demand = group.kv_demand_bytes()
    ratio = demand / capacity if capacity > 0 else float("inf")
    return (ratio, group.scheduler.num_waiting, group.group_id)


def headroom_key(group: ServingGroup):
    """Free-KV-bytes view of load: most absolute headroom wins."""
    headroom = group.kv_capacity_bytes() - group.kv_demand_bytes()
    return (-headroom, group.scheduler.num_waiting, group.group_id)


class Router(abc.ABC):
    """Chooses a serving group for each request.

    ``route`` receives the routable candidates (active, non-draining,
    never empty) and must return one of them.  Routers may keep state
    (cursors, RNG streams) but must be deterministic for a fixed seed and
    call sequence.
    """

    #: registry name, set by ``register_router``.
    name: str = "base"

    def __init__(self, *, seed: int = 0) -> None:
        self.seed = seed

    @abc.abstractmethod
    def route(self, request: Request, groups: Sequence[ServingGroup]) -> ServingGroup:
        """Pick a group from ``groups`` (non-empty) for ``request``."""


class LeastLoadedRouter(Router):
    """The paper's default: lowest memory-demand-to-capacity ratio."""

    def route(self, request: Request, groups: Sequence[ServingGroup]) -> ServingGroup:
        return min(groups, key=load_key)


class RoundRobinRouter(Router):
    """Cycle through the groups in list order (controlled experiments)."""

    def __init__(self, *, seed: int = 0) -> None:
        super().__init__(seed=seed)
        self._cursor = 0

    def route(self, request: Request, groups: Sequence[ServingGroup]) -> ServingGroup:
        group = groups[self._cursor % len(groups)]
        self._cursor += 1
        return group


class PowerOfTwoChoicesRouter(Router):
    """Sample two random groups, send to the less loaded of the pair.

    The classic load-balancing result: two random choices gets most of the
    benefit of global least-loaded while only probing two queues.
    """

    def __init__(self, *, seed: int = 0) -> None:
        super().__init__(seed=seed)
        self._rng = SeededRNG(seed, "router/power-of-two")

    def route(self, request: Request, groups: Sequence[ServingGroup]) -> ServingGroup:
        if len(groups) <= 2:
            return min(groups, key=load_key)
        first = int(self._rng.integers(0, len(groups)))
        second = int(self._rng.integers(0, len(groups) - 1))
        if second >= first:
            second += 1
        return min((groups[first], groups[second]), key=load_key)


class MemoryHeadroomRouter(Router):
    """Send to the group with the most free KV bytes (absolute headroom).

    Differs from least-loaded on heterogeneous fleets (e.g. after a
    KunServe merge enlarged one group's cache): ratios normalise capacity
    away, headroom prefers the group that can absorb the longest context.
    """

    def route(self, request: Request, groups: Sequence[ServingGroup]) -> ServingGroup:
        return min(groups, key=headroom_key)


class SessionAffinityRouter(Router):
    """Stable-hash sessions onto groups (prefix-cache-affinity proxy).

    Requests carrying a ``session_id`` always map to the same group while
    the group set is stable, which is what makes KV prefix reuse possible
    in real serving stacks.  Requests without a session id fall back to a
    coarse key (SLO class + log2 prompt-length bucket), so requests of
    similar shape still co-locate.  When the mapped group is
    memory-blocked the router falls back to least-loaded — affinity is a
    preference, not a pin.
    """

    @staticmethod
    def session_key(request: Request) -> str:
        if request.session_id is not None:
            return request.session_id
        return f"{request.slo_class}:{request.prompt_tokens.bit_length()}"

    def route(self, request: Request, groups: Sequence[ServingGroup]) -> ServingGroup:
        ordered = sorted(groups, key=lambda g: g.group_id)
        digest = hashlib.sha256(self.session_key(request).encode("utf-8")).digest()
        preferred = ordered[int.from_bytes(digest[:8], "little") % len(ordered)]
        if preferred.scheduler.memory_blocked:
            return min(groups, key=load_key)
        return preferred


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_ROUTERS: Dict[str, Type[Router]] = {}


def register_router(
    name: str, router_class: Type[Router], *, overwrite: bool = False
) -> Type[Router]:
    """Add a router class to the registry; refuses duplicates unless told."""
    if not name:
        raise ValueError("router name must be non-empty")
    if name in _ROUTERS and not overwrite:
        raise ValueError(f"router {name!r} is already registered")
    router_class.name = name
    _ROUTERS[name] = router_class
    return router_class


def make_router(name: str, *, seed: int = 0) -> Router:
    """Instantiate a registered router by name."""
    if name not in _ROUTERS:
        known = ", ".join(list_routers())
        raise KeyError(f"unknown router {name!r}; known routers: {known}")
    return _ROUTERS[name](seed=seed)


def list_routers() -> List[str]:
    """Registered router names in registration order."""
    return list(_ROUTERS)


register_router("least_loaded", LeastLoadedRouter)
register_router("round_robin", RoundRobinRouter)
register_router("power_of_two_choices", PowerOfTwoChoicesRouter)
register_router("memory_headroom", MemoryHeadroomRouter)
register_router("session_affinity", SessionAffinityRouter)
