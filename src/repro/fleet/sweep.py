"""Fleet sweep (scenario × policy × router × autoscaler grid), executed by
the unified sweep engine.

Replays registered scenarios (:mod:`repro.scenarios.registry`) through
fleet-enabled serving systems, varying the router strategy, the
autoscaler preset and (optionally) a fault-schedule preset, and
aggregates the results into a stable-schema ``FLEET_results.json``
document (:mod:`repro.fleet.schema`).

The ``faults`` axis materialises :mod:`repro.chaos` presets against the
single-cluster topology — only the instance-kill shapes (``none``,
``instance-kill``, ``churn``) apply; cluster outages and WAN degradation
are tier-level faults that belong to the ``python -m repro.chaos`` sweep.
The default axis is ``("none",)`` so the baseline grid is unchanged.

Execution mirrors :mod:`repro.scenarios.sweep` exactly: every cell is a
:class:`~repro.sweeps.task.SweepTask` (content hash over the scenario
fingerprint, policy, router, autoscaler, admission settings, scale, seed
and ``repro`` version), cache hits skip recomputation entirely, and
misses fan out over the engine's shared warm worker pool.  Every cell is
seeded independently of execution order and results are JSON-normalised
and assembled in grid order — so output is bit-identical across runs,
across parallel vs. sequential execution, and across cold vs. warm
caches, modulo the ``wall_s*`` and cache-accounting fields.
"""

from __future__ import annotations

import dataclasses
import json
import time
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.chaos.config import fault_schedule_preset, schedule_fingerprint
from repro.experiments.runner import ExperimentScale
from repro.fleet.config import AdmissionConfig, list_autoscaler_presets, make_fleet_config
from repro.fleet.routing import list_routers
from repro.fleet.schema import SCHEMA_VERSION
from repro.policies import make_policy
from repro.scenarios.registry import ScenarioSpec, get_scenario, list_scenarios
from repro.scenarios.sweep import build_cell_config, spec_fingerprint
from repro.serving.system import ClusterServingSystem
from repro.sweeps import ResultCache, SweepTask, run_tasks
from repro.version import __version__
from repro.workloads.slo import LatencyRecord, baseline_p50, slo_violation_ratio

#: Default sweep scale; what the ``python -m repro.fleet`` acceptance run uses.
QUICK_FLEET_SCALE = ExperimentScale(
    name="fleet-quick",
    num_instances=2,
    trace_duration_s=30.0,
    drain_timeout_s=30.0,
)

FULL_FLEET_SCALE = ExperimentScale(
    name="fleet-full",
    num_instances=4,
    trace_duration_s=90.0,
    drain_timeout_s=90.0,
)

FLEET_SCALES: Dict[str, ExperimentScale] = {
    "quick": QUICK_FLEET_SCALE,
    "full": FULL_FLEET_SCALE,
}

#: Default grid axes: one bursty scenario, one policy, every router, both
#: elasticity presets, no faults.
DEFAULT_SCENARIOS: Tuple[str, ...] = ("spike-train",)
DEFAULT_POLICIES: Tuple[str, ...] = ("vllm",)
DEFAULT_FAULTS: Tuple[str, ...] = ("none",)

#: The :func:`repro.chaos.config.fault_schedule_preset` names a
#: single-cluster fleet can inject (instance kills only; outages and WAN
#: faults need the multicluster tier).
FLEET_FAULT_PRESETS: Tuple[str, ...] = ("none", "instance-kill", "churn")


def list_fleet_fault_presets() -> List[str]:
    """Fault presets the fleet sweep accepts on its ``faults`` axis."""
    return list(FLEET_FAULT_PRESETS)

#: Admission settings used by every sweep cell: tight enough that bounded
#: queues and SLO shedding are exercised under the burst scenarios, loose
#: enough that steady-state cells behave like the plain dispatcher.
SWEEP_ADMISSION = AdmissionConfig(
    max_queue_depth=512,
    max_group_waiting=64,
    ttft_shed_s=60.0,
)

#: Default output location: the repository root, next to BENCH_results.json.
DEFAULT_OUTPUT = Path(__file__).resolve().parents[3] / "FLEET_results.json"


@dataclasses.dataclass(frozen=True)
class FleetCellResult:
    """Raw outcome of one grid cell, before SLO aggregation.

    ``latencies`` holds one ``(ttft, mean_tpot)`` pair per request so the
    aggregator can derive cross-cell SLO baselines without shipping full
    records between processes (same trick as the scenario sweep).
    """

    scenario: str
    policy: str
    policy_name: str
    router: str
    autoscaler: str
    faults: str
    fault_events: int
    workload: str
    requests: int
    finished: int
    completion_ratio: float
    initial_groups: int
    summary: Dict[str, float]
    fleet_stats: Dict[str, float]
    latencies: Tuple[Tuple[Optional[float], Optional[float]], ...]
    wall_s: float
    #: alert timeline block (``--alerts`` cells only; see
    #: :mod:`repro.obs.schema`).
    alerts: Optional[Dict[str, Any]] = None


def fleet_fault_schedule(faults: str, scale: ExperimentScale, seed: int):
    """Materialise a fault preset against the single-cluster topology.

    Raises :class:`KeyError` for names outside
    :data:`FLEET_FAULT_PRESETS` — including valid chaos presets like
    ``cluster-outage`` that a standalone fleet cannot inject.
    """
    if faults not in FLEET_FAULT_PRESETS:
        raise KeyError(
            f"unknown fleet fault preset {faults!r}; "
            f"known: {', '.join(FLEET_FAULT_PRESETS)}"
        )
    return fault_schedule_preset(
        faults,
        duration_s=scale.trace_duration_s,
        num_clusters=1,
        instances_per_cluster=scale.num_instances,
        seed=seed,
    )


def run_fleet_cell(
    scenario: Union[str, ScenarioSpec],
    policy_key: str,
    router: str,
    autoscaler: str,
    scale: ExperimentScale,
    seed: int = 42,
    faults: str = "none",
    alerts: bool = False,
) -> FleetCellResult:
    """Run one scenario under one (policy, router, autoscaler, faults)
    combination; the in-process cell primitive.

    ``alerts=True`` attaches an in-memory metrics monitor, replays the
    :func:`repro.obs.default_rule_pack` over the recorded scrape stream,
    and fills the result's ``alerts`` block.
    """
    spec = scenario if isinstance(scenario, ScenarioSpec) else get_scenario(scenario)
    workload = spec.build_workload(scale, seed)
    policy = make_policy(policy_key)
    config = build_cell_config(spec, scale, seed=seed)
    config.fleet = make_fleet_config(
        router=router, autoscaler=autoscaler, admission=SWEEP_ADMISSION
    )
    schedule = fleet_fault_schedule(faults, scale, seed)
    config.chaos = schedule if schedule else None
    start = time.perf_counter()
    system = ClusterServingSystem(config, policy)
    chunks: List[Tuple[str, float]] = []
    if alerts:
        system.attach_metrics(callback=lambda text, now: chunks.append((text, now)))
    initial_groups = len(system.groups)
    result = system.run(workload)
    wall_s = time.perf_counter() - start
    alerts_block = None
    if alerts:
        from repro.obs import evaluate_monitor_chunks

        alerts_block = evaluate_monitor_chunks(chunks)
    return FleetCellResult(
        scenario=spec.name,
        policy=policy_key,
        policy_name=policy.name,
        router=router,
        autoscaler=autoscaler,
        faults=faults,
        fault_events=len(schedule.events),
        workload=workload.name,
        requests=result.submitted_requests,
        finished=result.finished_requests,
        completion_ratio=result.completion_ratio,
        initial_groups=initial_groups,
        summary=result.summary,
        fleet_stats=system.fleet.stats(),
        latencies=tuple((r.ttft, r.mean_tpot) for r in result.records),
        wall_s=wall_s,
        alerts=alerts_block,
    )


def stream_cell_metrics(
    scenario: Union[str, ScenarioSpec],
    policy_key: str,
    router: str,
    autoscaler: str,
    scale: ExperimentScale,
    seed: int,
    path,
    faults: str = "none",
) -> int:
    """Replay one cell inline with a live Prometheus metrics stream.

    Same construction as :func:`run_fleet_cell`, but with a
    :class:`repro.metrics.MetricsMonitor` attached, streaming text
    scrapes (queue depth, active/spare instances, shed counters) to
    ``path``; returns the number of scrapes written.  This is what
    ``python -m repro.fleet --metrics-out`` runs (uncached — the stream
    is the point, not the result document).
    """
    spec = scenario if isinstance(scenario, ScenarioSpec) else get_scenario(scenario)
    workload = spec.build_workload(scale, seed)
    config = build_cell_config(spec, scale, seed=seed)
    config.fleet = make_fleet_config(
        router=router, autoscaler=autoscaler, admission=SWEEP_ADMISSION
    )
    schedule = fleet_fault_schedule(faults, scale, seed)
    config.chaos = schedule if schedule else None
    system = ClusterServingSystem(config, make_policy(policy_key))
    monitor = system.attach_metrics(path=path)
    system.run(workload)
    return monitor.scrapes


# ----------------------------------------------------------------------
# Sweep-engine adapter
# ----------------------------------------------------------------------
def run_fleet_cell_payload(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """Sweep-engine runner: one fleet cell as a JSON-able payload."""
    cell = run_fleet_cell(
        params["scenario"],
        params["policy"],
        params["router"],
        params["autoscaler"],
        params["scale"],
        seed,
        params.get("faults", "none"),
        alerts=params.get("alerts", False),
    )
    return dataclasses.asdict(cell)


def fleet_cell_task(
    spec: ScenarioSpec,
    policy: str,
    router: str,
    autoscaler: str,
    scale: ExperimentScale,
    seed: int,
    faults: str = "none",
    alerts: bool = False,
) -> SweepTask:
    """Describe one fleet grid cell as a cacheable sweep task."""
    params: Dict[str, Any] = {
        "scenario": spec,
        "policy": policy,
        "router": router,
        "autoscaler": autoscaler,
        "scale": scale,
        "faults": faults,
    }
    key: Dict[str, Any] = {
        "kind": "fleet-cell",
        "schema_version": SCHEMA_VERSION,
        "scenario": spec_fingerprint(spec),
        "policy": policy,
        "router": router,
        "autoscaler": autoscaler,
        # The materialised schedule, not just the preset name: a
        # "churn" cell's cache entry must turn over when the hazard
        # rate or the sampled event times change.
        "faults": schedule_fingerprint(fleet_fault_schedule(faults, scale, seed)),
        "admission": dataclasses.asdict(SWEEP_ADMISSION),
        "scale": dataclasses.asdict(scale),
    }
    if alerts:
        # Opt-in axis: only alert cells key on it, so cells without it
        # keep their existing cache entries and stay bit-identical.
        params["alerts"] = True
        key["alerts"] = True
    return SweepTask(
        runner="repro.fleet.sweep:run_fleet_cell_payload",
        params=params,
        key=key,
        seed=seed,
        label=f"{spec.name}/{policy}/{router}/{autoscaler}/{faults}",
    )


def _scenario_entries(
    spec: ScenarioSpec, cells: Sequence[Dict[str, Any]]
) -> List[Dict]:
    """Turn one scenario's cell payloads into schema entries with derived SLOs.

    The SLO reference point is the best cell's P50 (TTFT and TPOT
    independently) *within this scenario* across the whole fleet grid,
    scaled by the scenario's ``slo_scale`` — the Figure 13 convention with
    fleet configurations standing in for policies.
    """
    records_by_cell = {
        index: [LatencyRecord(t, p) for t, p in cell["latencies"]]
        for index, cell in enumerate(cells)
    }
    best_ttft, best_tpot = baseline_p50(records_by_cell)
    ttft_slo_s = spec.slo_scale * best_ttft
    tpot_slo_s = spec.slo_scale * best_tpot
    entries = []
    for index, cell in enumerate(cells):
        violation = slo_violation_ratio(
            records_by_cell[index], ttft_slo_s=ttft_slo_s, tpot_slo_s=tpot_slo_s
        )
        stats = cell["fleet_stats"]
        summary = cell["summary"]
        entries.append(
            {
                "scenario": cell["scenario"],
                "policy": cell["policy"],
                "policy_name": cell["policy_name"],
                "router": cell["router"],
                "autoscaler": cell["autoscaler"],
                "faults": cell["faults"],
                "fault_events": cell["fault_events"],
                "workload": cell["workload"],
                "requests": cell["requests"],
                "admitted": int(stats["admitted"]),
                "shed": int(stats["shed"]),
                "queue_peak": int(stats["queue_peak"]),
                "scale_up_events": int(stats["scale_up_events"]),
                "scale_down_events": int(stats["scale_down_events"]),
                "initial_groups": cell["initial_groups"],
                "final_groups": int(stats["final_groups"]),
                "finished": cell["finished"],
                "completion_ratio": cell["completion_ratio"],
                "ttft_p50": summary["ttft_p50"],
                "ttft_p90": summary["ttft_p90"],
                "ttft_p99": summary["ttft_p99"],
                "tpot_p50": summary["tpot_p50"],
                "tpot_p90": summary["tpot_p90"],
                "tpot_p99": summary["tpot_p99"],
                "throughput_tokens_per_s": summary["throughput_tokens_per_s"],
                "slo_scale": spec.slo_scale,
                "ttft_slo_s": ttft_slo_s,
                "tpot_slo_s": tpot_slo_s,
                "slo_violation_ratio": violation,
                "slo_attainment": 1.0 - violation,
                "wall_s": cell["wall_s"],
            }
        )
        if cell.get("alerts"):
            entries[-1]["alerts"] = cell["alerts"]
    return entries


def run_fleet_sweep(
    *,
    scenarios: Optional[Sequence[str]] = None,
    policies: Optional[Sequence[str]] = None,
    routers: Optional[Sequence[str]] = None,
    autoscalers: Optional[Sequence[str]] = None,
    faults: Optional[Sequence[str]] = None,
    scale: ExperimentScale = QUICK_FLEET_SCALE,
    seed: int = 42,
    max_workers: Optional[int] = None,
    use_cache: bool = False,
    cache_dir: Optional[Path] = None,
    alerts: bool = False,
) -> Dict:
    """Sweep the scenario × policy × router × autoscaler × faults grid.

    Args:
        scenarios: scenario names (default: :data:`DEFAULT_SCENARIOS`).
        policies: overload-policy keys (default: :data:`DEFAULT_POLICIES`).
        routers: router strategies (default: every registered router).
        autoscalers: autoscaler preset names (default: every preset).
        faults: fault-schedule presets, a subset of
            :data:`FLEET_FAULT_PRESETS` (default: ``("none",)`` — the
            baseline grid without chaos).
        scale: cluster size / trace length of every cell.
        seed: sweep seed; every cell derives its randomness from it.
        max_workers: worker processes; ``1`` runs cells inline (no pool),
            ``None`` sizes the pool to the grid (capped by the CPUs this
            process may use, cgroup limits included).
        use_cache: serve unchanged cells from the on-disk result cache
            and store fresh ones (the CLI enables this by default; the
            Python API defaults to off).
        cache_dir: cache location override (default ``.repro_cache/`` at
            the repository root, or ``$REPRO_CACHE_DIR``).
        alerts: replay the default alert-rule pack (:mod:`repro.obs`)
            over every cell's metric stream and attach an ``alerts``
            timeline block to each entry.  Opt-in axis: cells without it
            keep their existing cache entries and stay bit-identical.
    """
    names = list(scenarios) if scenarios is not None else list(DEFAULT_SCENARIOS)
    policy_keys = list(policies) if policies is not None else list(DEFAULT_POLICIES)
    router_names = list(routers) if routers is not None else list_routers()
    scaler_names = (
        list(autoscalers) if autoscalers is not None else list_autoscaler_presets()
    )
    fault_names = list(faults) if faults is not None else list(DEFAULT_FAULTS)
    unknown = [n for n in names if n not in list_scenarios()]
    if unknown:
        raise KeyError(f"unknown scenarios {unknown}; known: {', '.join(list_scenarios())}")
    unknown = [r for r in router_names if r not in list_routers()]
    if unknown:
        raise KeyError(f"unknown routers {unknown}; known: {', '.join(list_routers())}")
    unknown = [a for a in scaler_names if a not in list_autoscaler_presets()]
    if unknown:
        raise KeyError(
            f"unknown autoscaler presets {unknown}; "
            f"known: {', '.join(list_autoscaler_presets())}"
        )
    unknown = [f for f in fault_names if f not in FLEET_FAULT_PRESETS]
    if unknown:
        raise KeyError(
            f"unknown fleet fault presets {unknown}; "
            f"known: {', '.join(FLEET_FAULT_PRESETS)} "
            f"(tier-level presets belong to python -m repro.chaos)"
        )
    if not names or not policy_keys or not router_names or not scaler_names:
        raise ValueError("the fleet sweep needs at least one value on every axis")
    if not fault_names:
        raise ValueError("the fleet sweep needs at least one value on every axis")
    if max_workers is not None and max_workers < 1:
        raise ValueError("max_workers must be >= 1")
    specs = [get_scenario(name) for name in names]
    tasks = [
        fleet_cell_task(spec, policy, router, scaler, scale, seed, preset, alerts=alerts)
        for spec in specs
        for policy in policy_keys
        for router in router_names
        for scaler in scaler_names
        for preset in fault_names
    ]

    cache = ResultCache(cache_dir) if use_cache else None
    start = time.perf_counter()
    outcome = run_tasks(tasks, max_workers=max_workers, cache=cache)
    wall_s_total = time.perf_counter() - start

    by_scenario: Dict[str, List[Dict[str, Any]]] = {name: [] for name in names}
    for cell in outcome.results:
        by_scenario[cell["scenario"]].append(cell)
    entries: List[Dict] = []
    for spec in specs:
        entries.extend(_scenario_entries(spec, by_scenario[spec.name]))

    return {
        "schema_version": SCHEMA_VERSION,
        "repro_version": __version__,
        "seed": seed,
        "scale": {
            "name": scale.name,
            "num_instances": scale.num_instances,
            "trace_duration_s": scale.trace_duration_s,
            "drain_timeout_s": scale.drain_timeout_s,
        },
        "scenarios": names,
        "policies": policy_keys,
        "routers": router_names,
        "autoscalers": scaler_names,
        "faults": fault_names,
        # Only present when the opt-in axis was enabled: plain documents
        # keep their pre-alerts byte shape (no schema version bump).
        **({"alerts": True} if alerts else {}),
        "entries": entries,
        "cache_hits": outcome.cache_hits,
        "cache_misses": outcome.cache_misses,
        "wall_s_total": wall_s_total,
    }


def write_results(document: Dict, path: Optional[Path] = None) -> Path:
    """Write the document to ``FLEET_results.json`` (repo root by default)."""
    target = Path(path) if path is not None else DEFAULT_OUTPUT
    target.write_text(json.dumps(document, indent=2, sort_keys=False) + "\n")
    return target


def format_results(document: Dict) -> str:
    """Human-readable table of a fleet sweep document."""
    scale = document["scale"]
    lines = [
        f"repro {document['repro_version']} · scale {scale['name']} "
        f"({scale['num_instances']} instances, {scale['trace_duration_s']:.0f}s trace) "
        f"· seed {document['seed']} · {len(document['entries'])} cells "
        f"in {document['wall_s_total']:.1f}s",
        f"{'scenario':<16} {'policy':<9} {'router':<21} {'scaler':<8} "
        f"{'faults':<13} {'reqs':>5} {'fin':>5} {'shed':>5} {'up':>3} {'dn':>3} "
        f"{'ttft_p50':>9} {'slo_att':>8}",
    ]
    for entry in document["entries"]:
        lines.append(
            f"{entry['scenario']:<16} {entry['policy']:<9} {entry['router']:<21} "
            f"{entry['autoscaler']:<8} {entry['faults']:<13} "
            f"{entry['requests']:>5d} {entry['finished']:>5d} "
            f"{entry['shed']:>5d} {entry['scale_up_events']:>3d} "
            f"{entry['scale_down_events']:>3d} {entry['ttft_p50']:>9.3f} "
            f"{entry['slo_attainment']:>8.2f}"
        )
    return "\n".join(lines)
