"""Figure 14: ablation study of KunServe's techniques.

Runs the LongBench x 14B workload with the techniques enabled
incrementally: vLLM (DP), vLLM (PP), + dynamic parameter drop,
+ coordinated KV exchange, + lookahead batch formulation.  Reports TTFT /
TPOT percentiles and the mean pipeline bubble time.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.kunserve import KunServeConfig
from repro.experiments.runner import (
    ExperimentScale,
    QUICK_SCALE,
    WORKLOAD_PRESETS,
    build_preset_workload,
    run_policy_on_workload,
)
from repro.experiments.report import format_table
from repro.policies import KunServePolicy, VLLMPolicy


def _ablation_policies():
    return [
        ("vLLM (DP)", VLLMPolicy()),
        ("vLLM (PP)", VLLMPolicy(pp_degree=2)),
        (
            "+Dynamic drop",
            KunServePolicy(
                KunServeConfig(coordinated_exchange=False, use_lookahead=False),
                label="+Dynamic drop",
            ),
        ),
        (
            "+Coordinated ex.",
            KunServePolicy(
                KunServeConfig(coordinated_exchange=True, use_lookahead=False),
                label="+Coordinated ex.",
            ),
        ),
        (
            "+Lookahead",
            KunServePolicy(
                KunServeConfig(coordinated_exchange=True, use_lookahead=True),
                label="+Lookahead",
            ),
        ),
    ]


def run_figure14(
    scale: ExperimentScale = QUICK_SCALE,
    *,
    seed: int = 42,
    workload_key: str = "longbench-14b",
) -> List[Dict[str, object]]:
    """Incremental-technique ablation on the LongBench workload."""
    preset = WORKLOAD_PRESETS[workload_key]
    workload = build_preset_workload(preset, scale, seed=seed)
    rows: List[Dict[str, object]] = []
    for label, policy in _ablation_policies():
        result = run_policy_on_workload(policy, preset, scale, seed=seed, workload=workload)
        metrics = result.metrics
        rows.append(
            {
                "config": label,
                "ttft_p50": metrics.ttft_percentile(50),
                "ttft_p90": metrics.ttft_percentile(90),
                "ttft_p99": metrics.ttft_percentile(99),
                "ttft_p999": metrics.ttft_percentile(99.9),
                "tpot_p50": metrics.tpot_percentile(50),
                "tpot_p99": metrics.tpot_percentile(99),
                "mean_bubble_pct": 100.0 * metrics.mean_bubble_fraction(),
                "throughput_tok_s": result.summary["throughput_tokens_per_s"],
                "drops": len([e for e in metrics.events if e["kind"] == "drop"]),
            }
        )
    return rows


def format_figure14(rows: Optional[List[Dict[str, object]]] = None) -> str:
    if rows is None:
        rows = run_figure14()
    return format_table(rows)


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(format_figure14())
