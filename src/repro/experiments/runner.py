"""Shared experiment machinery: scales, workload presets, policy sets.

The paper's evaluation combines the BurstGPT arrival trace with three
datasets on two clusters.  The presets below pin, per workload, the request
rates at which the simulated cluster sits at a moderate average memory load
(the paper provisions KV memory at ~2x the average demand) and overloads
during the burst — the regime §5 studies.  ``ExperimentScale`` lets every
experiment run either at full scale (paper-like instance counts and trace
lengths) or at a quick scale used by the benchmark suite.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from repro.cluster.cluster import ClusterSpec
from repro.cluster.specs import cluster_a_spec, cluster_b_spec
from repro.core.kunserve import KunServeConfig
from repro.models.catalog import QWEN_2_5_14B, QWEN_2_5_72B
from repro.models.spec import ModelSpec
from repro.policies import (
    InferCeptPolicy,
    KunServePolicy,
    LlumnixPolicy,
    OverloadPolicy,
    VLLMPolicy,
)
from repro.serving.config import ServingConfig
from repro.serving.system import ClusterServingSystem, SimulationResult
from repro.workloads.burstgpt import burstgpt_arrival_trace
from repro.workloads.datasets import (
    BURSTGPT_DATASET,
    DatasetSpec,
    LONGBENCH_DATASET,
    SHAREGPT_DATASET,
    build_workload,
)
from repro.workloads.trace import Workload


@dataclass(frozen=True)
class ExperimentScale:
    """How big an experiment run is.

    Attributes:
        name: "quick" (benchmark suite) or "full" (paper-like).
        num_instances: serving instances in the cluster.
        trace_duration_s: arrival-trace length in seconds.
        drain_timeout_s: extra simulated time to let requests finish.
        rate_fraction: multiplier on the preset per-instance request rates
            (quick runs use a slightly lower load so they stay fast).
    """

    name: str
    num_instances: int
    trace_duration_s: float
    drain_timeout_s: float
    rate_fraction: float = 1.0


QUICK_SCALE = ExperimentScale(
    name="quick",
    num_instances=2,
    trace_duration_s=60.0,
    drain_timeout_s=60.0,
    rate_fraction=1.0,
)

FULL_SCALE = ExperimentScale(
    name="full",
    num_instances=8,
    trace_duration_s=130.0,
    drain_timeout_s=120.0,
    rate_fraction=1.0,
)


@dataclass(frozen=True)
class WorkloadPreset:
    """Per-workload experiment parameters (rates tuned for the overload regime)."""

    key: str
    dataset: DatasetSpec
    model: ModelSpec
    gpus_per_instance: int
    base_rate_per_instance: float
    burst_factor: float
    token_budget: int
    uses_cluster_b: bool = False

    @property
    def label(self) -> str:
        suffix = "72B" if self.model is QWEN_2_5_72B else "14B"
        return f"{self.dataset.name} x {suffix}"


WORKLOAD_PRESETS: Dict[str, WorkloadPreset] = {
    "burstgpt-14b": WorkloadPreset(
        key="burstgpt-14b",
        dataset=BURSTGPT_DATASET,
        model=QWEN_2_5_14B,
        gpus_per_instance=1,
        base_rate_per_instance=8.0,
        burst_factor=2.4,
        token_budget=2048,
    ),
    "sharegpt-14b": WorkloadPreset(
        key="sharegpt-14b",
        dataset=SHAREGPT_DATASET,
        model=QWEN_2_5_14B,
        gpus_per_instance=1,
        base_rate_per_instance=2.2,
        burst_factor=2.4,
        token_budget=2048,
    ),
    "longbench-14b": WorkloadPreset(
        key="longbench-14b",
        dataset=LONGBENCH_DATASET,
        model=QWEN_2_5_14B,
        gpus_per_instance=1,
        base_rate_per_instance=0.50,
        burst_factor=2.4,
        token_budget=1024,
    ),
    "longbench-72b": WorkloadPreset(
        key="longbench-72b",
        dataset=LONGBENCH_DATASET,
        model=QWEN_2_5_72B,
        gpus_per_instance=4,
        base_rate_per_instance=0.55,
        burst_factor=2.4,
        token_budget=1024,
        uses_cluster_b=True,
    ),
}


def build_cluster_spec(preset: WorkloadPreset, scale: ExperimentScale) -> ClusterSpec:
    """Cluster for the preset: cluster A for 14B runs, cluster B for 72B."""
    if preset.uses_cluster_b:
        # Cluster B has 8 GPUs per server; each 72B instance takes 4 GPUs.
        instances_per_server = 8 // preset.gpus_per_instance
        servers = max(1, -(-scale.num_instances // instances_per_server))
        return cluster_b_spec(num_servers=servers)
    return cluster_a_spec(num_servers=scale.num_instances)


def build_system_config(
    preset: WorkloadPreset,
    scale: ExperimentScale,
    *,
    seed: int = 42,
) -> ServingConfig:
    """ServingConfig for one preset at one scale."""
    return ServingConfig(
        model=preset.model,
        cluster=build_cluster_spec(preset, scale),
        gpus_per_instance=preset.gpus_per_instance,
        token_budget=preset.token_budget,
        drain_timeout_s=scale.drain_timeout_s,
        seed=seed,
    )


def build_preset_workload(
    preset: WorkloadPreset,
    scale: ExperimentScale,
    *,
    seed: int = 42,
    burst_factor: Optional[float] = None,
) -> Workload:
    """Generate the preset's workload at the requested scale."""
    total_rate = preset.base_rate_per_instance * scale.num_instances * scale.rate_fraction
    trace = burstgpt_arrival_trace(
        duration_s=scale.trace_duration_s,
        base_rate=total_rate,
        burst_factor=burst_factor if burst_factor is not None else preset.burst_factor,
        seed=seed,
    )
    return build_workload(trace, preset.dataset, seed=seed, name=preset.label)


def make_policies(
    *,
    include_pp: bool = True,
    kunserve_config: Optional[KunServeConfig] = None,
) -> List[OverloadPolicy]:
    """The five systems of Figure 12/13 in the paper's order."""
    policies: List[OverloadPolicy] = [VLLMPolicy()]
    if include_pp:
        policies.append(VLLMPolicy(pp_degree=2))
    policies.append(InferCeptPolicy())
    policies.append(LlumnixPolicy())
    policies.append(KunServePolicy(kunserve_config))
    return policies


def run_policy_on_workload(
    policy: OverloadPolicy,
    preset: WorkloadPreset,
    scale: ExperimentScale,
    *,
    seed: int = 42,
    workload: Optional[Workload] = None,
) -> SimulationResult:
    """Build a fresh system for ``policy`` and replay the preset workload."""
    config = build_system_config(preset, scale, seed=seed)
    system = ClusterServingSystem(config, policy)
    if workload is None:
        workload = build_preset_workload(preset, scale, seed=seed)
    return system.run(workload)
