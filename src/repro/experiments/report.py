"""Plain-text report helpers shared by the experiment modules."""

from __future__ import annotations

from typing import Dict, List, Sequence


def format_value(value) -> str:
    """Render a cell: floats get sensible precision, others go through str()."""
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        if abs(value) >= 0.01:
            return f"{value:.3f}"
        return f"{value:.2e}"
    return str(value)


def format_table(rows: Sequence[Dict[str, object]], columns: Sequence[str] = ()) -> str:
    """Format a list of dict rows as an aligned text table."""
    if not rows:
        return "(no rows)"
    if not columns:
        columns = list(rows[0].keys())
    rendered: List[List[str]] = [[str(c) for c in columns]]
    for row in rows:
        rendered.append([format_value(row.get(column, "")) for column in columns])
    widths = [max(len(line[i]) for line in rendered) for i in range(len(columns))]
    lines = []
    for index, line in enumerate(rendered):
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)))
        if index == 0:
            lines.append("  ".join("-" * widths[i] for i in range(len(columns))))
    return "\n".join(lines)


def format_series(series: Sequence[tuple], label_x: str = "time", label_y: str = "value") -> str:
    """Format an (x, y) series compactly (used for figure timelines)."""
    if not series:
        return "(empty series)"
    parts = [f"{label_x}={x:g}:{label_y}={format_value(y)}" for x, y in series]
    return "  ".join(parts)
