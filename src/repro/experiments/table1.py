"""Table 1: parameter memory usage ratio of popular models.

For every catalogued model: parameter memory, GPUs per serving instance,
and the fraction of the instance's HBM the parameters occupy — the headroom
KunServe can reclaim by dropping replicas.
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.report import format_table
from repro.models.catalog import MODEL_CATALOG, TABLE1_GPUS_PER_INSTANCE
from repro.models.memory import param_bytes, parameter_memory_ratio

#: Table 1 reports ratios against the marketing capacity (80 GB decimal).
GPU_HBM_BYTES_DECIMAL = 80 * 10 ** 9

#: The ratios Table 1 reports, for comparison in EXPERIMENTS.md / tests.
PAPER_RATIOS = {
    "Qwen-2.5-14B": 34.4,
    "Qwen-2.5-72B": 42.3,
    "Llama-3.1-405B": 59.1,
    "Qwen-3-235B": 74.8,
    "DeepSeek-V3-671B": 61.4,
}


def run_table1(gpu_hbm_bytes: int = GPU_HBM_BYTES_DECIMAL) -> List[Dict[str, object]]:
    """Compute the Table 1 rows from the model catalog."""
    rows = []
    for name, spec in MODEL_CATALOG.items():
        gpus = TABLE1_GPUS_PER_INSTANCE[name]
        ratio = parameter_memory_ratio(spec, gpu_hbm_bytes, gpus)
        rows.append(
            {
                "model": name,
                "model_size_gb": param_bytes(spec) / 1e9,
                "gpus_per_instance": gpus,
                "instance_hbm_gb": gpus * gpu_hbm_bytes / 1e9,
                "param_ratio_pct": 100.0 * ratio,
                "paper_ratio_pct": PAPER_RATIOS[name],
            }
        )
    return rows


def format_table1(rows=None) -> str:
    if rows is None:
        rows = run_table1()
    return format_table(
        rows,
        columns=[
            "model",
            "model_size_gb",
            "gpus_per_instance",
            "instance_hbm_gb",
            "param_ratio_pct",
            "paper_ratio_pct",
        ],
    )


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(format_table1())
