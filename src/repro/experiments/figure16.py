"""Figure 16: effectiveness of dynamic parameter restoration.

Long-run BurstGPT trace with multiple burst waves, comparing vLLM (DP),
KunServe without restoration (parameters stay dropped after the first
overload) and full KunServe (drop + restore).  Restoration matters because
pipelined execution has lower throughput during normal periods, which makes
the *next* wave worse.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.kunserve import KunServeConfig
from repro.experiments.runner import (
    ExperimentScale,
    QUICK_SCALE,
    WORKLOAD_PRESETS,
    build_system_config,
    run_policy_on_workload,
)
from repro.experiments.report import format_table
from repro.policies import KunServePolicy, VLLMPolicy
from repro.serving.system import ClusterServingSystem
from repro.workloads.burstgpt import long_run_arrival_trace
from repro.workloads.datasets import build_workload


def run_figure16(
    scale: ExperimentScale = QUICK_SCALE,
    *,
    seed: int = 42,
    duration_s: Optional[float] = None,
    num_waves: int = 2,
) -> List[Dict[str, object]]:
    """Long-run comparison: vLLM, KunServe w/o restore, KunServe."""
    preset = WORKLOAD_PRESETS["burstgpt-14b"]
    if duration_s is None:
        duration_s = max(4 * scale.trace_duration_s, 240.0)
    total_rate = preset.base_rate_per_instance * scale.num_instances * scale.rate_fraction
    trace = long_run_arrival_trace(
        duration_s=duration_s,
        base_rate=total_rate,
        burst_factor=preset.burst_factor,
        num_waves=num_waves,
        seed=seed,
    )
    workload = build_workload(trace, preset.dataset, seed=seed, name="BurstGPT long run")

    # "w/o restore" keeps the drop path but never restores (threshold 0 would
    # be rejected, so use a threshold so low it never triggers).
    no_restore_config = KunServeConfig(restore_threshold=1e-6)
    systems = [
        ("vLLM (DP)", VLLMPolicy()),
        ("KunServe w/o restore", KunServePolicy(no_restore_config, label="KunServe w/o restore")),
        ("KunServe", KunServePolicy()),
    ]
    rows: List[Dict[str, object]] = []
    for label, policy in systems:
        config = build_system_config(preset, scale, seed=seed)
        config = type(config)(**{**config.__dict__, "drain_timeout_s": scale.drain_timeout_s})
        system = ClusterServingSystem(config, policy)
        result = system.run(workload)
        metrics = result.metrics
        rows.append(
            {
                "system": label,
                "ttft_p50": metrics.ttft_percentile(50),
                "ttft_p99": metrics.ttft_percentile(99),
                "tpot_p50": metrics.tpot_percentile(50),
                "tpot_p99": metrics.tpot_percentile(99),
                "throughput_tok_s": result.summary["throughput_tokens_per_s"],
                "drops": len([e for e in metrics.events if e["kind"] == "drop"]),
                "restores": len([e for e in metrics.events if e["kind"] == "restore_end"]),
                "finished": result.finished_requests,
                "submitted": result.submitted_requests,
            }
        )
    return rows


def format_figure16(rows: Optional[List[Dict[str, object]]] = None) -> str:
    if rows is None:
        rows = run_figure16()
    return format_table(rows)


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(format_figure16())
