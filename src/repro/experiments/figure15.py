"""Figure 15: accuracy of the batch-formulation cost model.

Compares, against the ground-truth latency model, (a) KunServe's fitted
cost model (Eq. 1-3) and (b) the prior-work baseline that ignores attention
cost, for prefill chunks without a prefix (left panel) and with a prefix
(right panel), across prompt lengths.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.cluster.specs import A800_80GB
from repro.core.cost_model import (
    BatchCostModel,
    NoAttentionCostModel,
    fit_cost_model,
    generate_profiling_samples,
)
from repro.engine.batch import ScheduledChunk
from repro.engine.latency_model import LatencyModel
from repro.engine.request import Request
from repro.experiments.report import format_table
from repro.models.catalog import QWEN_2_5_14B

DEFAULT_PROMPT_LENGTHS = (512, 1024, 2048, 4096, 6144, 8192)


def _chunk(prefix: int, tokens: int) -> ScheduledChunk:
    request = Request(arrival_time=0.0, prompt_tokens=prefix + tokens, max_output_tokens=1)
    return ScheduledChunk(request=request, prefix_tokens=prefix, new_tokens=tokens)


def run_figure15(
    *,
    prompt_lengths: Sequence[int] = DEFAULT_PROMPT_LENGTHS,
    prefix_for_right_panel: int = 2048,
) -> Dict[str, List[Dict[str, object]]]:
    """Estimated-vs-actual latency with and without prefix attention."""
    latency = LatencyModel(A800_80GB, QWEN_2_5_14B)
    samples = generate_profiling_samples(latency)
    params = fit_cost_model(samples)
    ours = BatchCostModel(params)
    no_attention = NoAttentionCostModel(params)

    def rows_for(prefix: int) -> List[Dict[str, object]]:
        rows = []
        for prompt in prompt_lengths:
            chunk = _chunk(prefix, prompt)
            actual = latency.batch_time([chunk])
            est_ours = ours.microbatch_cost([chunk])
            est_no_attn = no_attention.microbatch_cost([chunk])
            rows.append(
                {
                    "prompt_tokens": prompt,
                    "prefix_tokens": prefix,
                    "actual_ms": 1000 * actual,
                    "ours_ms": 1000 * est_ours,
                    "no_attn_ms": 1000 * est_no_attn,
                    "ours_error_pct": 100 * abs(est_ours - actual) / actual,
                    "no_attn_error_pct": 100 * abs(est_no_attn - actual) / actual,
                }
            )
        return rows

    return {
        "prefill_without_prefix": rows_for(0),
        "prefill_with_prefix": rows_for(prefix_for_right_panel),
        "params": [
            {
                "alpha": params.alpha,
                "beta": params.beta,
                "gamma": params.gamma,
                "lam": params.lam,
            }
        ],
    }


def max_errors(results: Dict[str, List[Dict[str, object]]]) -> Dict[str, float]:
    """Maximum relative error of each estimator over both panels."""
    rows = results["prefill_without_prefix"] + results["prefill_with_prefix"]
    return {
        "ours_max_error_pct": max(r["ours_error_pct"] for r in rows),
        "no_attn_max_error_pct": max(r["no_attn_error_pct"] for r in rows),
    }


def format_figure15(results: Optional[Dict[str, List[Dict[str, object]]]] = None) -> str:
    if results is None:
        results = run_figure15()
    parts = ["Figure 15 — prefill without prefix", format_table(results["prefill_without_prefix"])]
    parts += ["", "Figure 15 — prefill with prefix", format_table(results["prefill_with_prefix"])]
    return "\n".join(parts)


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(format_figure15())
