"""Figure 12: end-to-end serving timelines (memory, mean TTFT, throughput).

For each workload (BurstGPT / ShareGPT / LongBench x 14B and LongBench x
72B) and each of the five systems, record the memory-usage timeline, the
mean-TTFT timeline and the throughput timeline, plus the drop/restore
events KunServe performed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.runner import (
    ExperimentScale,
    QUICK_SCALE,
    WORKLOAD_PRESETS,
    build_preset_workload,
    make_policies,
    run_policy_on_workload,
)
from repro.experiments.report import format_table

DEFAULT_WORKLOADS = ("burstgpt-14b", "sharegpt-14b", "longbench-14b", "longbench-72b")


def run_figure12(
    scale: ExperimentScale = QUICK_SCALE,
    *,
    workload_keys: Sequence[str] = DEFAULT_WORKLOADS,
    seed: int = 42,
    timeline_window_s: float = 5.0,
    include_pp: bool = True,
) -> Dict[str, Dict[str, object]]:
    """Run every system on every requested workload; return the panels."""
    panels: Dict[str, Dict[str, object]] = {}
    for key in workload_keys:
        preset = WORKLOAD_PRESETS[key]
        workload = build_preset_workload(preset, scale, seed=seed)
        systems: Dict[str, object] = {}
        for policy in make_policies(include_pp=include_pp):
            result = run_policy_on_workload(policy, preset, scale, seed=seed, workload=workload)
            metrics = result.metrics
            systems[policy.name] = {
                "memory_used_timeline": [(p.time, p.value) for p in metrics.memory_used.points()],
                "memory_capacity_timeline": [
                    (p.time, p.value) for p in metrics.memory_capacity.points()
                ],
                "mean_ttft_timeline": [
                    (p.time, p.value) for p in metrics.mean_ttft_timeline(timeline_window_s)
                ],
                "throughput_timeline": [(p.time, p.value) for p in metrics.throughput.points()],
                "mean_ttft": (
                    sum(metrics.ttft_values()) / max(1, len(metrics.ttft_values()))
                ),
                "ttft_p99": metrics.ttft_percentile(99),
                "throughput_tokens_per_s": result.summary["throughput_tokens_per_s"],
                "drop_events": [e for e in metrics.events if e["kind"] == "drop"],
                "restore_events": [e for e in metrics.events if e["kind"] == "restore_end"],
                "finished": result.finished_requests,
                "submitted": result.submitted_requests,
            }
        panels[preset.label] = {"workload_key": key, "num_requests": len(workload), "systems": systems}
    return panels


def summary_rows(panels: Dict[str, Dict[str, object]]) -> List[Dict[str, object]]:
    """Flatten the panels into one row per (workload, system)."""
    rows = []
    for workload_label, panel in panels.items():
        for system, data in panel["systems"].items():
            rows.append(
                {
                    "workload": workload_label,
                    "system": system,
                    "mean_ttft_s": data["mean_ttft"],
                    "ttft_p99_s": data["ttft_p99"],
                    "throughput_tok_s": data["throughput_tokens_per_s"],
                    "drops": len(data["drop_events"]),
                    "restores": len(data["restore_events"]),
                }
            )
    return rows


def format_figure12(panels: Optional[Dict[str, Dict[str, object]]] = None) -> str:
    if panels is None:
        panels = run_figure12()
    return format_table(summary_rows(panels))


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(format_figure12())
