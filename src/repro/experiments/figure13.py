"""Figure 13: end-to-end latency percentiles and SLO violations.

P50/P99 TTFT, P50/P99 TPOT for every workload x system pair, plus the SLO
violation ratio as a function of the SLO scale factor (the paper marks 5x
for chat and 10x for summarisation).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.engine.metrics import RequestRecord
from repro.experiments.runner import (
    ExperimentScale,
    QUICK_SCALE,
    WORKLOAD_PRESETS,
    build_preset_workload,
    make_policies,
    run_policy_on_workload,
)
from repro.experiments.report import format_table
from repro.workloads.slo import slo_violation_curve

DEFAULT_WORKLOADS = ("burstgpt-14b", "sharegpt-14b", "longbench-14b", "longbench-72b")
DEFAULT_SLO_SCALES = (2, 4, 6, 8, 10)


def run_figure13(
    scale: ExperimentScale = QUICK_SCALE,
    *,
    workload_keys: Sequence[str] = DEFAULT_WORKLOADS,
    slo_scales: Sequence[float] = DEFAULT_SLO_SCALES,
    seed: int = 42,
    include_pp: bool = True,
) -> Dict[str, object]:
    """Latency percentiles + SLO violation curves for every workload."""
    latency_rows: List[Dict[str, object]] = []
    slo_rows: List[Dict[str, object]] = []
    for key in workload_keys:
        preset = WORKLOAD_PRESETS[key]
        workload = build_preset_workload(preset, scale, seed=seed)
        records_by_system: Dict[str, List[RequestRecord]] = {}
        for policy in make_policies(include_pp=include_pp):
            result = run_policy_on_workload(policy, preset, scale, seed=seed, workload=workload)
            records_by_system[policy.name] = result.records
            metrics = result.metrics
            latency_rows.append(
                {
                    "workload": preset.label,
                    "system": policy.name,
                    "ttft_p50": metrics.ttft_percentile(50),
                    "ttft_p99": metrics.ttft_percentile(99),
                    "tpot_p50": metrics.tpot_percentile(50),
                    "tpot_p99": metrics.tpot_percentile(99),
                }
            )
        for slo in slo_violation_curve(records_by_system, scales=slo_scales):
            slo_rows.append(
                {
                    "workload": preset.label,
                    "system": slo.system,
                    "slo_scale": slo.scale,
                    "violation_ratio_pct": 100.0 * slo.violation_ratio,
                }
            )
    return {"latency": latency_rows, "slo": slo_rows}


def kunserve_speedup(latency_rows: List[Dict[str, object]], metric: str = "ttft_p99") -> Dict[str, float]:
    """Per-workload ratio of the worst baseline's metric to KunServe's."""
    speedups: Dict[str, float] = {}
    workloads = {row["workload"] for row in latency_rows}
    for workload in workloads:
        rows = [r for r in latency_rows if r["workload"] == workload]
        kunserve = next((r[metric] for r in rows if r["system"] == "KunServe"), None)
        baselines = [r[metric] for r in rows if r["system"] != "KunServe"]
        if kunserve and kunserve > 0 and baselines:
            speedups[workload] = max(baselines) / kunserve
    return speedups


def format_figure13(results: Optional[Dict[str, object]] = None) -> str:
    if results is None:
        results = run_figure13()
    parts = ["Figure 13 — latency percentiles", format_table(results["latency"])]
    parts.append("")
    parts.append("Figure 13 — SLO violations")
    parts.append(format_table(results["slo"]))
    return "\n".join(parts)


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(format_figure13())
