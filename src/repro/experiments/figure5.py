"""Figure 5: latency of different degrees of parameter dropping.

Compares full data parallelism against statically dropping 50 % / 75 % /
88 % of each instance's layers (i.e. pipeline groups of 2, 4 and 8 stages)
on the BurstGPT dataset: the more parameters dropped, the more pipeline
stages a request crosses and the higher its TTFT/TPOT — the trade-off the
drop-plan generator minimises by merging as few instances as possible.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.engine.metrics import percentile
from repro.experiments.runner import (
    ExperimentScale,
    WORKLOAD_PRESETS,
    build_preset_workload,
    run_policy_on_workload,
)
from repro.experiments.report import format_table
from repro.policies import VLLMPolicy

#: (label, pipeline degree, fraction of parameters dropped per instance)
DROP_CONFIGS = [
    ("DP (full params)", 1, 0.0),
    ("Drop 50% layers", 2, 0.50),
    ("Drop 75% layers", 4, 0.75),
    ("Drop 88% layers", 8, 0.875),
]


def run_figure5(
    scale: Optional[ExperimentScale] = None,
    *,
    seed: int = 42,
    max_degree: int = 4,
) -> List[Dict[str, object]]:
    """TTFT / TPOT percentiles for increasing parameter-drop degrees."""
    if scale is None:
        scale = ExperimentScale(
            name="figure5", num_instances=4, trace_duration_s=60.0, drain_timeout_s=60.0
        )
    preset = WORKLOAD_PRESETS["burstgpt-14b"]
    workload = build_preset_workload(preset, scale, seed=seed)
    rows: List[Dict[str, object]] = []
    for label, degree, dropped_fraction in DROP_CONFIGS:
        if degree > max_degree or degree > scale.num_instances:
            continue
        policy = VLLMPolicy(pp_degree=degree)
        result = run_policy_on_workload(policy, preset, scale, seed=seed, workload=workload)
        ttfts = result.metrics.ttft_values()
        tpots = result.metrics.tpot_values()
        rows.append(
            {
                "config": label,
                "pipeline_stages": degree,
                "params_dropped_pct": 100 * dropped_fraction,
                "ttft_p50": percentile(ttfts, 50),
                "ttft_p99": percentile(ttfts, 99),
                "tpot_p50": percentile(tpots, 50),
                "tpot_p99": percentile(tpots, 99),
                "throughput_tokens_per_s": result.summary["throughput_tokens_per_s"],
            }
        )
    return rows


def format_figure5(rows=None) -> str:
    if rows is None:
        rows = run_figure5()
    return format_table(rows)


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(format_figure5())
