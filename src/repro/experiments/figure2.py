"""Figure 2: TTFT spikes caused by memory overloading.

(a) the BurstGPT request-rate timeline, (b) the KV memory demand against
the cluster's capacity, and (c)-(e) the mean-TTFT timelines of the three
KV-centric ways to handle overloading: drop/recompute (vLLM), swap
(InferCept) and migrate (Llumnix).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.runner import (
    ExperimentScale,
    QUICK_SCALE,
    WORKLOAD_PRESETS,
    build_preset_workload,
    run_policy_on_workload,
)
from repro.policies import InferCeptPolicy, LlumnixPolicy, VLLMPolicy


def run_figure2(
    scale: ExperimentScale = QUICK_SCALE,
    *,
    seed: int = 42,
    timeline_window_s: float = 5.0,
) -> Dict[str, object]:
    """Reproduce Figure 2's panels on the BurstGPT x 14B workload."""
    preset = WORKLOAD_PRESETS["burstgpt-14b"]
    workload = build_preset_workload(preset, scale, seed=seed)
    rate_timeline = workload.arrival_trace().rate_timeline(timeline_window_s)

    panels: Dict[str, object] = {
        "workload": workload.name,
        "num_requests": len(workload),
        "request_rate_timeline": rate_timeline,
        "systems": {},
    }
    policies = {
        "Drop KVCache (vLLM)": VLLMPolicy(),
        "Swap KVCache (InferCept)": InferCeptPolicy(),
        "Migrate KVCache (Llumnix)": LlumnixPolicy(),
    }
    for label, policy in policies.items():
        result = run_policy_on_workload(policy, preset, scale, seed=seed, workload=workload)
        metrics = result.metrics
        capacity = metrics.memory_capacity.points()
        demand = metrics.memory_demand.points()
        panels["systems"][label] = {
            "mean_ttft_timeline": [(p.time, p.value) for p in metrics.mean_ttft_timeline(timeline_window_s)],
            "memory_demand_timeline": [(p.time, p.value) for p in demand],
            "memory_capacity_gb": capacity[0].value / 1e9 if capacity else 0.0,
            "ttft_p50": metrics.ttft_percentile(50),
            "ttft_p99": metrics.ttft_percentile(99),
            "overload_ratio_peak": (
                max((p.value for p in demand), default=0.0) / capacity[0].value
                if capacity and capacity[0].value > 0
                else 0.0
            ),
        }
    return panels


def format_figure2(panels: Optional[Dict[str, object]] = None) -> str:
    if panels is None:
        panels = run_figure2()
    lines = [f"Figure 2 — {panels['workload']} ({panels['num_requests']} requests)"]
    for label, data in panels["systems"].items():
        lines.append(
            f"  {label}: peak demand/capacity = {data['overload_ratio_peak']:.2f}, "
            f"P50 TTFT = {data['ttft_p50']:.2f}s, P99 TTFT = {data['ttft_p99']:.2f}s"
        )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(format_figure2())
