"""Figure 17: behaviour under an extreme, unending burst (Qwen-2.5-72B).

The burst is replayed until every system runs out of memory.  KunServe
stands longer because each drop frees another replica's worth of parameter
memory, and it keeps SLO-compliant TTFT until its (larger) limit is hit.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.runner import (
    ExperimentScale,
    QUICK_SCALE,
    WORKLOAD_PRESETS,
    build_system_config,
)
from repro.experiments.report import format_table
from repro.policies import KunServePolicy, VLLMPolicy
from repro.serving.system import ClusterServingSystem
from repro.workloads.burstgpt import extreme_burst_trace
from repro.workloads.datasets import build_workload


def _time_to_exhaustion(metrics, threshold: float = 0.98) -> Optional[float]:
    """First time the used KV memory reaches ``threshold`` of capacity."""
    capacity = {p.time: p.value for p in metrics.memory_capacity.points()}
    for point in metrics.memory_used.points():
        cap = capacity.get(point.time, 0.0)
        if cap > 0 and point.value >= threshold * cap:
            return point.time
    return None


def run_figure17(
    scale: ExperimentScale = QUICK_SCALE,
    *,
    seed: int = 42,
    workload_key: str = "longbench-72b",
    burst_start_fraction: float = 0.35,
) -> List[Dict[str, object]]:
    """Extreme-burst comparison of vLLM (DP) and KunServe."""
    preset = WORKLOAD_PRESETS[workload_key]
    total_rate = preset.base_rate_per_instance * scale.num_instances * scale.rate_fraction
    duration = scale.trace_duration_s * 1.4
    trace = extreme_burst_trace(
        duration_s=duration,
        base_rate=total_rate,
        burst_factor=2.6,
        burst_start_s=burst_start_fraction * duration,
        seed=seed,
    )
    workload = build_workload(trace, preset.dataset, seed=seed, name="extreme burst")
    rows: List[Dict[str, object]] = []
    for policy in (VLLMPolicy(), KunServePolicy()):
        config = build_system_config(preset, scale, seed=seed)
        system = ClusterServingSystem(config, policy)
        result = system.run(workload)
        metrics = result.metrics
        exhaustion = _time_to_exhaustion(metrics)
        rows.append(
            {
                "system": policy.name,
                "memory_exhausted_at_s": exhaustion if exhaustion is not None else float("nan"),
                "stood_until_end": exhaustion is None,
                "capacity_peak_gb": metrics.memory_capacity.max() / 1e9,
                "ttft_p50": metrics.ttft_percentile(50),
                "ttft_p99": metrics.ttft_percentile(99),
                "drops": len([e for e in metrics.events if e["kind"] == "drop"]),
                "finished": result.finished_requests,
                "submitted": result.submitted_requests,
            }
        )
    return rows


def format_figure17(rows: Optional[List[Dict[str, object]]] = None) -> str:
    if rows is None:
        rows = run_figure17()
    return format_table(rows)


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(format_figure17())
