"""Experiment reproductions: one module per paper table / figure.

Every module exposes a ``run_*`` function returning plain data structures
(dicts / lists) with the same rows or series the paper reports, plus a
``format_*`` helper that renders them as text tables.  All experiments
accept a :class:`~repro.experiments.runner.ExperimentScale` so the
benchmark suite can run a scaled-down (but structurally identical) version
in seconds while the full-scale version reproduces the paper's setup.
"""

from repro.experiments.runner import (
    ExperimentScale,
    QUICK_SCALE,
    FULL_SCALE,
    WorkloadPreset,
    WORKLOAD_PRESETS,
    build_preset_workload,
    build_system_config,
    make_policies,
    run_policy_on_workload,
)
from repro.experiments.report import format_table

__all__ = [
    "ExperimentScale",
    "QUICK_SCALE",
    "FULL_SCALE",
    "WorkloadPreset",
    "WORKLOAD_PRESETS",
    "build_preset_workload",
    "build_system_config",
    "make_policies",
    "run_policy_on_workload",
    "format_table",
]
