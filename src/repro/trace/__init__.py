"""Per-request span tracing for the serving stack (``repro.trace``).

Attach a tracer to any serving system and every request records a span
tree over the shared event loop::

    tracer = system.attach_tracer()          # default-off unless attached
    system.run(workload)
    tracer.spans()                           # all spans, export order
    write_chrome_trace(tracer.spans(), "trace.json")   # Perfetto-loadable
    write_spans_jsonl(tracer.spans(), "spans.jsonl")   # stable schema
    LatencyAttribution.from_tracer(tracer).stage_breakdown()

See :mod:`repro.trace.spans` for the span model, :mod:`repro.trace.tracer`
for the recording hooks, :mod:`repro.trace.export` for the two export
formats and :mod:`repro.trace.attribution` for per-stage latency
decomposition.
"""

from repro.trace.attribution import LatencyAttribution
from repro.trace.export import (
    chrome_trace,
    read_spans_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_spans_jsonl,
)
from repro.trace.spans import (
    DETAIL_NAMES,
    REQUEST_TRACK,
    STAGE_ORDER,
    TTFT_STAGES,
    Span,
)
from repro.trace.tracer import Tracer

__all__ = [
    "DETAIL_NAMES",
    "LatencyAttribution",
    "REQUEST_TRACK",
    "STAGE_ORDER",
    "Span",
    "TTFT_STAGES",
    "Tracer",
    "chrome_trace",
    "read_spans_jsonl",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_spans_jsonl",
]
