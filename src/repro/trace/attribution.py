"""Latency attribution: fold stage spans into per-stage time decomposition.

:class:`LatencyAttribution` consumes spans (from a live
:class:`~repro.trace.tracer.Tracer` or a spans JSONL file) and answers
"which stage ate the time": per finished request a ``{stage: seconds}``
decomposition whose TTFT stages sum to the recorded TTFT and whose full
sum is the recorded E2E latency, and per population the aggregated
p50/p90/p99 per stage — the ``stage_breakdown`` block the serve and chaos
sweeps embed when run with ``--trace``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence

from repro.trace.spans import STAGE_DECODE, STAGE_ORDER, TTFT_STAGES, Span

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.trace.tracer import Tracer


def _percentile(values: Sequence[float], q: float) -> Optional[float]:
    """Nearest-rank percentile (same convention as the sweep summaries)."""
    if not values:
        return None
    ordered = sorted(values)
    rank = max(1, int(round(q / 100.0 * len(ordered))))
    return ordered[min(rank, len(ordered)) - 1]


class LatencyAttribution:
    """Per-stage time decomposition over a set of spans."""

    def __init__(self, spans: Iterable[Span]) -> None:
        self._roots: Dict[int, Span] = {}
        self._stages: Dict[int, List[Span]] = {}
        for span in spans:
            if span.kind == "root":
                self._roots[span.request_id] = span
            elif span.kind == "stage":
                self._stages.setdefault(span.request_id, []).append(span)

    @classmethod
    def from_tracer(cls, tracer: "Tracer") -> "LatencyAttribution":
        return cls(tracer.spans())

    @classmethod
    def from_jsonl(cls, path) -> "LatencyAttribution":
        from repro.trace.export import read_spans_jsonl

        return cls(read_spans_jsonl(path))

    # ------------------------------------------------------------------
    # Per-request decomposition
    # ------------------------------------------------------------------
    def finished_request_ids(self) -> List[int]:
        return sorted(
            rid
            for rid, root in self._roots.items()
            if root.meta.get("status") == "finished"
        )

    def per_request(self) -> Dict[int, Dict[str, float]]:
        """``{request_id: {stage: seconds, "ttft_s": ..., "e2e_s": ...}}``.

        Stage keys follow :data:`repro.trace.spans.STAGE_ORDER`; stages a
        request never entered are absent.  ``ttft_s`` / ``e2e_s`` are the
        *recorded* request latencies carried on the root span, which the
        stage sums reconcile against.
        """
        decomposition: Dict[int, Dict[str, float]] = {}
        for rid in self.finished_request_ids():
            root = self._roots[rid]
            stages: Dict[str, float] = {}
            for span in self._stages.get(rid, ()):
                stages[span.name] = stages.get(span.name, 0.0) + (span.end_s - span.start_s)
            entry = {name: stages[name] for name in STAGE_ORDER if name in stages}
            entry.update(
                {name: value for name, value in stages.items() if name not in STAGE_ORDER}
            )
            entry["ttft_s"] = float(root.meta.get("ttft_s", 0.0))
            entry["e2e_s"] = float(root.meta.get("e2e_s", 0.0))
            decomposition[rid] = entry
        return decomposition

    def reconcile(self, *, rel_tol: float = 1e-9, abs_tol: float = 1e-6) -> List[str]:
        """Check stage sums against recorded TTFT / E2E per finished request.

        Returns human-readable problems; empty means every finished request
        reconciles (the tentpole acceptance criterion).
        """
        problems: List[str] = []
        for rid, entry in self.per_request().items():
            stage_sum = sum(
                value for name, value in entry.items() if name in STAGE_ORDER
            )
            ttft_sum = sum(
                entry.get(name, 0.0) for name in TTFT_STAGES
            )
            for label, total, expected in (
                ("e2e", stage_sum, entry["e2e_s"]),
                ("ttft", ttft_sum, entry["ttft_s"]),
            ):
                tolerance = abs_tol + rel_tol * max(1.0, abs(expected))
                if abs(total - expected) > tolerance:
                    problems.append(
                        f"request {rid}: stage {label} sum {total!r} != recorded "
                        f"{expected!r}"
                    )
        return problems

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def aggregate(self) -> Dict[str, Dict[str, float]]:
        """Per-stage ``{count, total_s, mean_s, p50_s, p90_s, p99_s}``."""
        by_stage: Dict[str, List[float]] = {}
        for entry in self.per_request().values():
            for name in STAGE_ORDER:
                if name in entry:
                    by_stage.setdefault(name, []).append(entry[name])
        aggregated: Dict[str, Dict[str, float]] = {}
        for name in STAGE_ORDER:
            values = by_stage.get(name)
            if not values:
                continue
            aggregated[name] = {
                "count": len(values),
                "total_s": sum(values),
                "mean_s": sum(values) / len(values),
                "p50_s": _percentile(values, 50.0),
                "p90_s": _percentile(values, 90.0),
                "p99_s": _percentile(values, 99.0),
            }
        return aggregated

    def stage_breakdown(self) -> Dict:
        """The JSON block embedded in traced sweep entries."""
        per_request = self.per_request()
        ttft_values = [entry["ttft_s"] for entry in per_request.values()]
        e2e_values = [entry["e2e_s"] for entry in per_request.values()]
        return {
            "requests": len(per_request),
            "reconciled": len(per_request) - len(self.reconcile()),
            "ttft_p50": _percentile(ttft_values, 50.0),
            "ttft_p99": _percentile(ttft_values, 99.0),
            "e2e_p50": _percentile(e2e_values, 50.0),
            "e2e_p99": _percentile(e2e_values, 99.0),
            "stages": self.aggregate(),
        }


def diff_stage_breakdowns(
    base: Dict, current: Dict, *, rel_threshold: float = 0.05, abs_floor_s: float = 1e-4
) -> List[Dict[str, float]]:
    """Attribute a latency delta between two ``stage_breakdown`` blocks.

    Compares ``mean_s`` and ``p99_s`` per stage in :data:`STAGE_ORDER`
    (then any extra stages, name-sorted) and returns one record per stage
    metric whose relative change exceeds ``rel_threshold`` and whose
    absolute change exceeds ``abs_floor_s`` — the attribution the diff
    doctor (:mod:`repro.obs.diff`) prints as, e.g., "decode mean_s +31%".
    Stages present on only one side are reported with the missing side's
    value as 0.  Records are sorted by absolute relative change,
    largest first.
    """
    base_stages = base.get("stages") or {}
    current_stages = current.get("stages") or {}
    ordered = [name for name in STAGE_ORDER if name in base_stages or name in current_stages]
    ordered += sorted(
        name
        for name in set(base_stages) | set(current_stages)
        if name not in STAGE_ORDER
    )
    records: List[Dict[str, float]] = []
    for name in ordered:
        before = base_stages.get(name) or {}
        after = current_stages.get(name) or {}
        for metric in ("mean_s", "p99_s"):
            old = float(before.get(metric) or 0.0)
            new = float(after.get(metric) or 0.0)
            delta = new - old
            if abs(delta) <= abs_floor_s:
                continue
            rel = delta / old if old > 0 else float("inf")
            if abs(rel) <= rel_threshold:
                continue
            records.append(
                {
                    "stage": name,
                    "metric": metric,
                    "base": old,
                    "current": new,
                    "delta_s": delta,
                    "rel": rel,
                }
            )
    records.sort(key=lambda r: (-abs(r["rel"]), r["stage"], r["metric"]))
    return records
