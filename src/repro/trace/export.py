"""Span export: Chrome trace-event JSON and stable-schema spans JSONL.

Chrome export targets the trace-event format that Perfetto and
``chrome://tracing`` load: a ``{"traceEvents": [...]}`` object of complete
events (``"ph": "X"``, microsecond ``ts``/``dur``) plus ``"M"`` metadata
events naming the tracks.  Request-scoped spans (roots, stages, retry /
route details) land in a ``requests`` process with one thread per request,
so each request renders as a lane showing its stage decomposition; engine
spans land in one process per cluster with one thread per group
("instances as tracks"), and fabric transfers in a ``network`` process
with one thread per link.

JSONL export writes one :meth:`repro.trace.spans.Span.to_dict` object per
line in deterministic order — the stable schema
:class:`repro.trace.attribution.LatencyAttribution` consumes.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Tuple, Union

from repro.trace.spans import REQUEST_TRACK, Span, span_from_dict, span_sort_key

_PathLike = Union[str, Path]


def _track_process(span: Span) -> Tuple[str, str]:
    """Map a span to its ``(process, thread)`` display pair."""
    if span.track == REQUEST_TRACK or (
        span.kind in ("root", "stage") and span.request_id >= 0
    ):
        return REQUEST_TRACK, f"request {span.request_id}"
    if "/" in span.track:
        process, thread = span.track.split("/", 1)
        return process, thread
    return "engine", span.track


def chrome_trace(spans: Iterable[Span]) -> Dict:
    """Fold spans into a Chrome trace-event document (JSON-able dict)."""
    ordered = sorted((s for s in spans if s.closed), key=span_sort_key)
    processes: Dict[str, int] = {}
    threads: Dict[Tuple[str, str], int] = {}
    pairs = [_track_process(span) for span in ordered]
    for process, thread in pairs:
        if process not in processes:
            processes[process] = len(processes) + 1
        key = (process, thread)
        if key not in threads:
            threads[key] = sum(1 for p, _ in threads if p == process) + 1
    events: List[Dict] = []
    for process, pid in sorted(processes.items(), key=lambda item: item[1]):
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": process},
            }
        )
    for (process, thread), tid in sorted(threads.items(), key=lambda item: item[1]):
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": processes[process],
                "tid": tid,
                "args": {"name": thread},
            }
        )
    for span, (process, thread) in zip(ordered, pairs):
        args = {key: value for key, value in span.meta.items()}
        if span.request_id >= 0:
            args.setdefault("request_id", span.request_id)
        events.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": span.kind,
                "ts": round(span.start_s * 1e6, 3),
                "dur": round((span.end_s - span.start_s) * 1e6, 3),
                "pid": processes[process],
                "tid": threads[(process, thread)],
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(spans: Iterable[Span], path: _PathLike) -> Path:
    """Write a Perfetto/``chrome://tracing``-loadable trace file."""
    target = Path(path)
    document = chrome_trace(spans)
    target.write_text(json.dumps(document, sort_keys=True) + "\n")
    return target


def write_spans_jsonl(spans: Iterable[Span], path: _PathLike) -> Path:
    """Write one stable-schema JSON object per span, one per line."""
    target = Path(path)
    ordered = sorted(spans, key=span_sort_key)
    lines = [json.dumps(span.to_dict(), sort_keys=True) for span in ordered]
    target.write_text("\n".join(lines) + ("\n" if lines else ""))
    return target


def read_spans_jsonl(path: _PathLike) -> List[Span]:
    """Read spans back from a JSONL file written by :func:`write_spans_jsonl`."""
    spans: List[Span] = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            spans.append(span_from_dict(json.loads(line)))
    return spans


def validate_chrome_trace(document: Dict) -> List[str]:
    """Schema-check a Chrome trace document; returns problems (empty = valid)."""
    problems: List[str] = []
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {index} is not an object")
            continue
        phase = event.get("ph")
        if phase not in ("X", "M"):
            problems.append(f"event {index} has unsupported phase {phase!r}")
            continue
        for key in ("name", "pid", "tid"):
            if key not in event:
                problems.append(f"event {index} missing {key!r}")
        if phase == "X":
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, (int, float)):
                    problems.append(f"event {index} {key} must be a number")
                elif key == "dur" and value < 0:
                    problems.append(f"event {index} has negative duration")
    return problems
