"""The :class:`Tracer`: per-request span recording on the shared event loop.

The tracer is attached with ``system.attach_tracer(...)`` (single-cluster
and multicluster systems both expose it) and is **off by default**: an
unattached system keeps every ``tracer`` attribute ``None`` and each hook
site is a single ``is not None`` check, so the untraced hot path pays one
pointer comparison per lifecycle event and nothing else.  An attached
tracer constructed with ``enabled=False`` stays visible on the system but
is **not wired into the hot per-iteration hooks** (``attach_tracer``
skips them), so a disabled tracer costs the same bare ``is None`` checks
as an untraced run — that near-zero configuration is what the
``trace_overhead`` bench row pins.  Every hook also early-returns when
``enabled`` is false, so the per-request hooks that do still fire record
nothing.

Recording model: hooks append lifecycle *boundaries* per request (submit,
WAN delivery, dispatch, first execution, first token, terminal state).
When a request reaches a terminal state the boundary list is folded into
stage spans that partition ``[arrival, end]`` — which is what makes the
span-conservation invariant (stage durations sum to E2E) hold by
construction rather than by luck.  Detail spans (chunk execution, fabric
transfers, migrations, retries) are appended as they complete and may
overlap the stage partition freely.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.trace.spans import (
    DETAIL_GATEWAY_PULL,
    DETAIL_ITERATION,
    DETAIL_KV_MIGRATION,
    DETAIL_NETWORK_DELIVERY,
    DETAIL_PREFILL_CHUNK,
    DETAIL_RETRY_BACKOFF,
    DETAIL_ROUTE_DECISION,
    REQUEST_TRACK,
    STAGE_ADMISSION_QUEUE,
    STAGE_DECODE,
    STAGE_GATEWAY_WAIT,
    STAGE_PREFILL,
    STAGE_SCHEDULER_QUEUE,
    STAGE_WAN_TRANSFER,
    Span,
    span_sort_key,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.network import Transfer
    from repro.engine.batch import IterationBatch
    from repro.engine.request import Request
    from repro.simulation.event_loop import EventLoop

_TRAILING_ID = re.compile(r"(\d+)$")


def _request_id_from_tag(tag: str) -> int:
    """Best-effort request id from a transfer tag (``swap-out-7`` -> 7)."""
    match = _TRAILING_ID.search(tag)
    return int(match.group(1)) if match else -1


class _RequestState:
    """Mutable per-request recording state (folded into spans at close)."""

    __slots__ = (
        "request_id",
        "root_start",
        "boundaries",
        "root_end",
        "status",
        "first_exec",
        "meta",
    )

    def __init__(self, request_id: int, root_start: float) -> None:
        self.request_id = request_id
        self.root_start = root_start
        #: ``(stage, end_time)`` pairs; segment *k* runs from the previous
        #: boundary (or ``root_start``) to its own end time.
        self.boundaries: List[Tuple[str, float]] = []
        self.root_end: Optional[float] = None
        self.status: Optional[str] = None  # "finished" | "shed" | "lost"
        self.first_exec: Optional[float] = None
        self.meta: Dict[str, object] = {}


class Tracer:
    """Records a span tree per request from instrumented hook points."""

    def __init__(self, loop: "EventLoop", *, enabled: bool = True) -> None:
        self.loop = loop
        self.enabled = enabled
        self._states: Dict[int, _RequestState] = {}
        self._details: List[Span] = []
        self._pending_wan: Dict[int, float] = {}
        self._pending_migrations: Dict[int, Tuple[float, str, str]] = {}
        #: Stage spans of closed requests, in close order — consumed
        #: incrementally by :func:`repro.metrics.sources.trace_metrics_source`.
        self.closed_stage_spans: List[Span] = []
        self._stage_spans: Dict[int, List[Span]] = {}
        self.requests_traced = 0
        self.requests_finished = 0
        self.requests_shed = 0
        self.requests_lost = 0

    # ------------------------------------------------------------------
    # Lifecycle hooks (called from instrumented sites, all None-guarded)
    # ------------------------------------------------------------------
    def on_gateway(self, request: "Request") -> None:
        """A gateway pulled ``request`` from its stream (pre-submission)."""
        if not self.enabled:
            return
        now = self.loop.now
        self._details.append(
            Span(
                DETAIL_GATEWAY_PULL,
                "detail",
                now,
                max(now, float(request.arrival_time)),
                request.request_id,
                REQUEST_TRACK,
                {"lookahead_s": max(0.0, float(request.arrival_time) - now)},
            )
        )

    def on_submit(self, request: "Request") -> None:
        """``request`` entered a serving system (root span opens)."""
        if not self.enabled:
            return
        rid = request.request_id
        if rid in self._states:
            # Re-submission of a WAN-delivered request at its target shard;
            # the root is already open at the tier.
            return
        now = self.loop.now
        state = _RequestState(rid, root_start=min(float(request.arrival_time), now))
        state.boundaries.append((STAGE_GATEWAY_WAIT, now))
        self._states[rid] = state
        self.requests_traced += 1

    def on_route(self, request: "Request", target: object, scope: str = "fleet") -> None:
        """A router picked ``target`` — an instantaneous decision span."""
        if not self.enabled:
            return
        now = self.loop.now
        self._details.append(
            Span(
                DETAIL_ROUTE_DECISION,
                "detail",
                now,
                now,
                request.request_id,
                REQUEST_TRACK,
                {"target": str(target), "scope": scope},
            )
        )

    def on_wan_start(self, request: "Request", source: int, target: int) -> None:
        """Per-request context left on the inter-cluster fabric."""
        if not self.enabled:
            return
        self._pending_wan[request.request_id] = self.loop.now

    def on_wan_end(self, request: "Request") -> None:
        """The WAN transfer delivered; the in-flight segment closes.

        Pre-execution deliveries (cross-cluster dispatch, or a queued
        request re-homed off a dead shard) are a lifecycle stage: the
        request was in flight on the WAN between submission and serving.
        Post-execution deliveries are session *migrations* — the request
        already started (possibly already streamed tokens), so the move
        overlaps prefill/decode and recording it as a stage boundary
        would break the TTFT partition; it becomes a detail span instead.
        """
        if not self.enabled:
            return
        started = self._pending_wan.pop(request.request_id, None)
        state = self._states.get(request.request_id)
        if state is None or state.status is not None:
            return
        if state.first_exec is None:
            state.boundaries.append((STAGE_WAN_TRANSFER, self.loop.now))
        elif started is not None:
            self._details.append(
                Span(
                    DETAIL_KV_MIGRATION,
                    "detail",
                    started,
                    self.loop.now,
                    request.request_id,
                    REQUEST_TRACK,
                    {"wan": True},
                )
            )

    def on_enqueued(self, request: "Request", group_id: int) -> None:
        """``request`` was dispatched to a serving group's scheduler queue."""
        if not self.enabled:
            return
        state = self._states.get(request.request_id)
        if state is None or state.status is not None:
            return
        if any(name == STAGE_ADMISSION_QUEUE for name, _ in state.boundaries):
            return  # re-adoption after a fault keeps the original dispatch
        state.meta["group"] = group_id
        state.boundaries.append((STAGE_ADMISSION_QUEUE, self.loop.now))

    def on_iteration(
        self, group: object, batch: "IterationBatch", start_s: float, end_s: float
    ) -> None:
        """A group completed an iteration executing ``batch`` over the window."""
        if not self.enabled:
            return
        track = getattr(group, "trace_track", "engine")
        prefill_tokens = 0
        decode_tokens = 0
        for chunk in batch.chunks:
            state = self._states.get(chunk.request.request_id)
            if chunk.is_decode:
                decode_tokens += 1
            else:
                prefill_tokens += chunk.new_tokens
                if state is not None:
                    self._details.append(
                        Span(
                            DETAIL_PREFILL_CHUNK,
                            "detail",
                            start_s,
                            end_s,
                            chunk.request.request_id,
                            track,
                            {
                                "tokens": chunk.new_tokens,
                                "prefix_tokens": chunk.prefix_tokens,
                            },
                        )
                    )
            if state is not None and state.status is None and state.first_exec is None:
                state.first_exec = start_s
                state.boundaries.append((STAGE_SCHEDULER_QUEUE, start_s))
        self._details.append(
            Span(
                DETAIL_ITERATION,
                "detail",
                start_s,
                end_s,
                -1,
                track,
                {
                    "requests": batch.num_requests,
                    "prefill_tokens": prefill_tokens,
                    "decode_tokens": decode_tokens,
                },
            )
        )

    def on_finished(self, request: "Request") -> None:
        """``request`` produced its last token; fold boundaries into stages."""
        if not self.enabled:
            return
        state = self._states.get(request.request_id)
        if state is None or state.status is not None:
            return
        finish = float(request.finish_time)
        first_token = float(request.first_token_time)
        state.boundaries.append((STAGE_PREFILL, first_token))
        state.boundaries.append((STAGE_DECODE, finish))
        state.meta.update(
            {
                "first_token_s": first_token,
                "ttft_s": request.ttft,
                "e2e_s": request.e2e_latency,
                "prompt_tokens": request.prompt_tokens,
                "output_tokens": request.output_tokens,
                "preemptions": request.preemption_count,
                "migrations": request.migration_count,
            }
        )
        self.requests_finished += 1
        self._close(state, "finished", finish)

    def on_shed(self, request: "Request") -> None:
        """Admission rejected ``request``; the root closes unfinished."""
        if not self.enabled:
            return
        state = self._states.get(request.request_id)
        if state is None or state.status is not None:
            return
        now = self.loop.now
        state.boundaries.append((STAGE_ADMISSION_QUEUE, now))
        self.requests_shed += 1
        self._close(state, "shed", now)

    def on_lost(self, request: "Request") -> None:
        """A fault dropped ``request`` (e.g. its WAN target died in flight)."""
        if not self.enabled:
            return
        state = self._states.get(request.request_id)
        if state is None or state.status is not None:
            return
        now = self.loop.now
        if request.request_id in self._pending_wan:
            self._pending_wan.pop(request.request_id, None)
            state.boundaries.append((STAGE_WAN_TRANSFER, now))
        self.requests_lost += 1
        self._close(state, "lost", now)

    def on_retry_backoff(self, request: "Request", delay_s: float) -> None:
        """A shed attempt scheduled its retry ``delay_s`` from now."""
        if not self.enabled:
            return
        now = self.loop.now
        self._details.append(
            Span(
                DETAIL_RETRY_BACKOFF,
                "detail",
                now,
                now + delay_s,
                request.request_id,
                REQUEST_TRACK,
                {"delay_s": delay_s},
            )
        )

    def on_migration_start(
        self, request: "Request", src_track: str, dst_track: str
    ) -> None:
        """A running request's KV started moving to another group."""
        if not self.enabled:
            return
        self._pending_migrations[request.request_id] = (
            self.loop.now,
            src_track,
            dst_track,
        )

    def on_migration_end(self, request: "Request") -> None:
        """The KV migration transfer completed."""
        if not self.enabled:
            return
        pending = self._pending_migrations.pop(request.request_id, None)
        if pending is None:
            return
        start, src_track, dst_track = pending
        self._details.append(
            Span(
                DETAIL_KV_MIGRATION,
                "detail",
                start,
                self.loop.now,
                request.request_id,
                src_track,
                {"src": src_track, "dst": dst_track},
            )
        )

    def on_transfer(self, transfer: "Transfer") -> None:
        """A fabric transfer finished (swap / migrate / WAN delivery)."""
        if not self.enabled:
            return
        self._details.append(
            Span(
                DETAIL_NETWORK_DELIVERY,
                "detail",
                transfer.submitted_at,
                transfer.completed_at,
                _request_id_from_tag(transfer.tag),
                f"network/{transfer.src}->{transfer.dst}",
                {
                    "tag": transfer.tag,
                    "bytes": transfer.size_bytes,
                    "src": transfer.src,
                    "dst": transfer.dst,
                },
            )
        )

    # ------------------------------------------------------------------
    # Close / readout
    # ------------------------------------------------------------------
    def _close(self, state: _RequestState, status: str, end: float) -> None:
        state.status = status
        state.root_end = end
        spans: List[Span] = []
        prev = state.root_start
        for name, boundary in state.boundaries:
            boundary = min(max(boundary, prev), end)
            spans.append(Span(name, "stage", prev, boundary, state.request_id))
            prev = boundary
        self._stage_spans[state.request_id] = spans
        self.closed_stage_spans.extend(spans)

    def _root_span(self, state: _RequestState) -> Span:
        meta = {"status": state.status or "open", **state.meta}
        return Span(
            "request",
            "root",
            state.root_start,
            state.root_end,
            state.request_id,
            REQUEST_TRACK,
            meta,
        )

    def stage_spans(self, request_id: int) -> List[Span]:
        """Stage spans of one closed request (empty while still open)."""
        return list(self._stage_spans.get(request_id, ()))

    def spans(self) -> List[Span]:
        """Every recorded span in deterministic export order."""
        spans: List[Span] = []
        for rid in sorted(self._states):
            state = self._states[rid]
            spans.append(self._root_span(state))
            spans.extend(self._stage_spans.get(rid, ()))
        spans.extend(self._details)
        spans.sort(key=span_sort_key)
        return spans

    def open_requests(self) -> int:
        """Traced requests still without a terminal state."""
        return sum(1 for state in self._states.values() if state.status is None)
