"""Span model for per-request tracing.

A *span* is a named, timestamped interval on the simulation clock.  The
tracer records three kinds:

* ``root`` — one per traced request, covering arrival to terminal state
  (finished / shed / lost).  Its ``meta`` carries the terminal status and
  the recorded TTFT / E2E so analyzers can reconcile against the engine's
  own accounting.
* ``stage`` — the children of a root span.  Stage spans *partition* the
  root interval: consecutive lifecycle boundaries (submit, WAN delivery,
  dispatch, first execution, first token, finish) cut the request's
  lifetime into non-overlapping segments, so stage durations sum to the
  end-to-end latency by construction (``tests/invariants.py`` pins this).
* ``detail`` — everything that overlaps the stage partition instead of
  refining it: per-chunk prefill execution, engine iterations, fabric
  transfers, KV migrations, route decisions, and retry backoff windows.

Stage names are fixed (:data:`STAGE_ORDER`); detail names are open-ended
but the common ones are listed in :data:`DETAIL_NAMES` and pinned by
``tests/test_trace.py``.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Mapping, Optional, Tuple

#: Stage names in lifecycle order.  A request's stage spans appear in this
#: order (stages that do not apply are simply absent) and tile the root.
STAGE_GATEWAY_WAIT = "gateway_wait"
STAGE_WAN_TRANSFER = "wan_transfer"
STAGE_ADMISSION_QUEUE = "admission_queue"
STAGE_SCHEDULER_QUEUE = "scheduler_queue"
STAGE_PREFILL = "prefill"
STAGE_DECODE = "decode"

STAGE_ORDER: Tuple[str, ...] = (
    STAGE_GATEWAY_WAIT,
    STAGE_WAN_TRANSFER,
    STAGE_ADMISSION_QUEUE,
    STAGE_SCHEDULER_QUEUE,
    STAGE_PREFILL,
    STAGE_DECODE,
)

#: Stages that make up TTFT; ``decode`` is everything after the first token.
TTFT_STAGES: Tuple[str, ...] = tuple(s for s in STAGE_ORDER if s != STAGE_DECODE)

#: Common detail-span names (an open set; these are the instrumented ones).
DETAIL_ROUTE_DECISION = "route_decision"
DETAIL_PREFILL_CHUNK = "prefill_chunk"
DETAIL_ITERATION = "iteration"
DETAIL_NETWORK_DELIVERY = "network_delivery"
DETAIL_KV_MIGRATION = "kv_migration"
DETAIL_RETRY_BACKOFF = "retry_backoff"
DETAIL_GATEWAY_PULL = "gateway_pull"

DETAIL_NAMES: Tuple[str, ...] = (
    DETAIL_ROUTE_DECISION,
    DETAIL_PREFILL_CHUNK,
    DETAIL_ITERATION,
    DETAIL_NETWORK_DELIVERY,
    DETAIL_KV_MIGRATION,
    DETAIL_RETRY_BACKOFF,
    DETAIL_GATEWAY_PULL,
)

#: Track name of request-scoped spans (roots, stages, request details).
REQUEST_TRACK = "requests"


@dataclasses.dataclass(frozen=True)
class Span:
    """One named interval on the simulation clock.

    ``end_s`` is ``None`` only for root spans of requests still in flight
    when the tracer was read out; closed spans always carry both ends.
    """

    name: str
    kind: str  # "root" | "stage" | "detail"
    start_s: float
    end_s: Optional[float]
    request_id: int = -1
    track: str = REQUEST_TRACK
    meta: Mapping[str, Any] = dataclasses.field(default_factory=dict)

    @property
    def duration_s(self) -> Optional[float]:
        if self.end_s is None:
            return None
        return self.end_s - self.start_s

    @property
    def closed(self) -> bool:
        return self.end_s is not None

    def to_dict(self) -> Dict[str, Any]:
        """Stable JSON shape of one span (one JSONL line)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "request_id": self.request_id,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "duration_s": self.duration_s,
            "track": self.track,
            "meta": dict(self.meta),
        }


def span_from_dict(payload: Mapping[str, Any]) -> Span:
    """Inverse of :meth:`Span.to_dict` (used by the JSONL reader)."""
    return Span(
        name=payload["name"],
        kind=payload["kind"],
        start_s=payload["start_s"],
        end_s=payload["end_s"],
        request_id=payload.get("request_id", -1),
        track=payload.get("track", REQUEST_TRACK),
        meta=dict(payload.get("meta", {})),
    )


def span_sort_key(span: Span) -> Tuple:
    """Deterministic ordering for export: by time, then identity."""
    return (
        span.start_s,
        span.end_s if span.end_s is not None else float("inf"),
        span.request_id,
        span.kind,
        span.name,
        span.track,
    )
