"""Base class for memory-overload handling policies."""

from __future__ import annotations

import abc
from typing import Dict, List, TYPE_CHECKING

from repro.engine.scheduler import SchedulerConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serving.system import ClusterServingSystem


class OverloadPolicy(abc.ABC):
    """How a serving system is laid out and reacts to memory overload.

    **When selected:** never directly — this is the abstract contract.  A
    concrete policy is chosen per experiment run (one fresh
    :class:`~repro.serving.system.ClusterServingSystem` per policy), via
    :func:`repro.policies.make_policy` or the experiment runners'
    ``make_policies`` helper which yields the paper's five systems.

    **What it models:** the *mechanism/policy split* of the serving stack.
    The engine (scheduler, groups, KV cache, network) provides mechanisms;
    the policy decides how the cluster uses them.  A policy influences
    three layers:

    1. **Deployment** — :meth:`initial_groups` partitions the cluster's
       instances into serving groups and :meth:`initial_layer_assignment`
       says which layers each instance of a group loads (all layers for
       data-parallel groups, a slice for static pipeline parallelism).
    2. **Scheduler** — :meth:`scheduler_config` selects the preemption mode
       (recompute vs. swap) and any budget overrides.
    3. **Cluster reaction** — :meth:`on_monitor_tick` is invoked by the
       global monitor with per-group load snapshots and may migrate
       requests, drop parameters, etc.
    """

    #: Human-readable name used in experiment tables.
    name: str = "base"

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------
    def initial_groups(self, num_instances: int) -> List[List[int]]:
        """Partition instance indices into serving groups (default: DP)."""
        return [[index] for index in range(num_instances)]

    def initial_layer_assignment(
        self, group_instance_indices: List[int], num_layers: int
    ) -> List[List[int]]:
        """Layers each instance of one group loads (default: full replica)."""
        return [list(range(num_layers)) for _ in group_instance_indices]

    # ------------------------------------------------------------------
    # Scheduler
    # ------------------------------------------------------------------
    def scheduler_config(self, base: SchedulerConfig) -> SchedulerConfig:
        """Adjust the scheduler configuration (default: unchanged)."""
        return base

    # ------------------------------------------------------------------
    # Cluster-level hooks
    # ------------------------------------------------------------------
    def attach(self, system: "ClusterServingSystem") -> None:
        """Called once after the system is built; override to wire state."""

    def on_monitor_tick(
        self,
        system: "ClusterServingSystem",
        snapshots: List[Dict[str, float]],
        now: float,
    ) -> None:
        """Called by the global monitor every interval (default: no-op)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
