"""KunServe as a pluggable overload policy.

Wraps :class:`repro.core.kunserve.KunServeController` behind the policy
interface the cluster serving system expects.  The ablation variants of
Figure 14 are expressed through :class:`~repro.core.kunserve.KunServeConfig`
flags: ``+Dynamic drop`` disables coordination and lookahead, ``+Coordinated
ex.`` re-enables coordination, ``+Lookahead`` enables both.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

from repro.core.kunserve import KunServeConfig, KunServeController
from repro.engine.scheduler import PreemptionMode, SchedulerConfig
from repro.policies.base import OverloadPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serving.system import ClusterServingSystem


class KunServePolicy(OverloadPolicy):
    """Parameter-centric memory management (the paper's system).

    **When selected:** the system under evaluation in every experiment;
    ``make_policy("kunserve")``.  Figure 14's ablation rows are the same
    policy with progressively enabled :class:`KunServeConfig` features.

    **What it models:** instances deploy data-parallel like vLLM, but when
    the monitor detects memory overload the attached
    :class:`~repro.core.kunserve.KunServeController` *drops* duplicated
    parameter replicas — merging groups into ad-hoc pipelines — and remaps
    the freed memory as KV cache, so queued requests start immediately
    instead of waiting for ongoing ones.  Ongoing requests keep serving
    through a coordinated KV exchange; merged groups run with the
    lookahead (cost-model balanced) microbatching; parameters are restored
    and groups re-split once the burst passes.  Recompute preemption
    remains only as the last resort when no drop plan is feasible.
    """

    name = "KunServe"

    def __init__(self, config: Optional[KunServeConfig] = None, *, label: Optional[str] = None) -> None:
        self.config = config if config is not None else KunServeConfig()
        self.controller = KunServeController(self.config)
        if label is not None:
            self.name = label

    def scheduler_config(self, base: SchedulerConfig) -> SchedulerConfig:
        # KunServe keeps vLLM's recompute preemption as the last-resort
        # fallback when no drop plan is feasible.
        return SchedulerConfig(
            token_budget=base.token_budget,
            max_running_requests=base.max_running_requests,
            preemption_mode=PreemptionMode.RECOMPUTE,
            swap_in_watermark=base.swap_in_watermark,
        )

    def attach(self, system: "ClusterServingSystem") -> None:
        self.controller.attach(system)

    def on_monitor_tick(
        self,
        system: "ClusterServingSystem",
        snapshots: List[Dict[str, float]],
        now: float,
    ) -> None:
        self.controller.on_monitor_tick(snapshots, now)

    # Convenience accessors used by experiments / tests ------------------
    @property
    def drop_reports(self):
        return self.controller.drop_reports

    @property
    def restore_reports(self):
        if self.controller.restore_manager is None:
            return []
        return self.controller.restore_manager.reports
