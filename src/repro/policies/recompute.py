"""vLLM baseline: recompute-on-preemption, optional static pipeline layout.

``VLLMPolicy()`` is the default vLLM deployment the paper calls vLLM (DP):
every instance holds a full replica and preempted requests are recomputed.
``VLLMPolicy(pp_degree=2)`` is vLLM (PP): instances are statically paired
into pipeline groups holding half the layers each, which frees parameter
memory for KV cache up front, at the price of permanent pipeline bubbles
and lower throughput (the trade-off Figure 12 quantifies).
"""

from __future__ import annotations

from typing import List

from repro.engine.pipeline import PipelineExecution
from repro.engine.scheduler import PreemptionMode, SchedulerConfig
from repro.policies.base import OverloadPolicy


class VLLMPolicy(OverloadPolicy):
    """vLLM with recompute preemption; optionally static pipeline parallel.

    **When selected:** the baseline of every end-to-end comparison (Figures
    2, 12, 13, 16, 17); ``make_policy("vllm")`` / ``make_policy("vllm-pp")``.

    **What it models:** each instance serves independently (data parallel)
    with vLLM's default overload reaction — when the KV cache is full the
    latest-arrived running request is preempted, its KV discarded, and its
    whole context recomputed when memory frees up.  With ``pp_degree > 1``
    instances are statically fused into pipeline groups at deploy time
    (vLLM (PP)): each stage holds ``1/pp_degree`` of the layers, which
    permanently converts parameter memory into KV capacity but pays
    pipeline bubbles even when the cluster is not overloaded — the
    always-on version of the trade KunServe makes only under pressure.
    """

    def __init__(self, pp_degree: int = 1) -> None:
        if pp_degree < 1:
            raise ValueError("pp_degree must be >= 1")
        self.pp_degree = pp_degree
        self.name = "vLLM (DP)" if pp_degree == 1 else f"vLLM (PP{pp_degree})" if pp_degree != 2 else "vLLM (PP)"

    def initial_groups(self, num_instances: int) -> List[List[int]]:
        if self.pp_degree == 1:
            return [[index] for index in range(num_instances)]
        groups = []
        for start in range(0, num_instances, self.pp_degree):
            members = list(range(start, min(start + self.pp_degree, num_instances)))
            groups.append(members)
        return groups

    def initial_layer_assignment(
        self, group_instance_indices: List[int], num_layers: int
    ) -> List[List[int]]:
        if len(group_instance_indices) == 1:
            return [list(range(num_layers))]
        ranges = PipelineExecution.layer_ranges(num_layers, len(group_instance_indices))
        return [list(r) for r in ranges]

    def scheduler_config(self, base: SchedulerConfig) -> SchedulerConfig:
        return SchedulerConfig(
            token_budget=base.token_budget,
            max_running_requests=base.max_running_requests,
            preemption_mode=PreemptionMode.RECOMPUTE,
            swap_in_watermark=base.swap_in_watermark,
        )
