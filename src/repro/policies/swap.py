"""InferCept baseline: optimised KV-cache swapping to host DRAM.

When the KV cache fills up, the victim request's cache is written out to
host memory over PCIe instead of being discarded, and read back when space
frees up.  Swapping avoids recomputation but does not create new memory:
queued requests still wait for ongoing ones to finish, and swapped-out
requests pay the transfer both ways (the TPOT hit visible in Figure 13).
"""

from __future__ import annotations

from repro.engine.scheduler import PreemptionMode, SchedulerConfig
from repro.policies.base import OverloadPolicy


class InferCeptPolicy(OverloadPolicy):
    """Data-parallel deployment with swap-based preemption.

    **When selected:** the KV-swapping baseline in Figures 12/13 and the
    ablations; ``make_policy("infercept")``.

    **What it models:** vLLM's layout with the preemption mode flipped to
    SWAP — a full KV cache evicts the latest-arrived running request by
    writing its cache to host DRAM over PCIe (a stall on the victim, plus
    PCIe occupancy in the network fabric) and swaps it back in once free
    blocks rise above ``swap_in_watermark`` of capacity.  Compared with
    recompute it trades GPU FLOPs for PCIe bandwidth; compared with
    KunServe it creates no *new* memory, so queueing delays under a
    cluster-wide burst remain.
    """

    name = "InferCept"

    def __init__(self, swap_in_watermark: float = 0.05) -> None:
        self.swap_in_watermark = swap_in_watermark

    def scheduler_config(self, base: SchedulerConfig) -> SchedulerConfig:
        return SchedulerConfig(
            token_budget=base.token_budget,
            max_running_requests=base.max_running_requests,
            preemption_mode=PreemptionMode.SWAP,
            swap_in_watermark=self.swap_in_watermark,
        )
