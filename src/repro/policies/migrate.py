"""Llumnix baseline: load-balanced dispatching plus KV-cache migration.

Llumnix spreads load at dispatch time and, when an instance still becomes
memory-overloaded, live-migrates requests (and their KV caches) to less
loaded instances to defragment free memory.  Migration helps when *some*
instance has room; under a cluster-wide burst there is nowhere to migrate
to and queued requests still stall (§2.3, Figure 2e).
"""

from __future__ import annotations

from typing import Dict, List, TYPE_CHECKING

from repro.policies.base import OverloadPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serving.system import ClusterServingSystem


class LlumnixPolicy(OverloadPolicy):
    """Data-parallel deployment with migration-based overload handling.

    **When selected:** the request-migration baseline in Figures 12/13;
    ``make_policy("llumnix")``.  Its least-loaded *dispatching* is adopted
    by every evaluated system (it lives in the shared
    :class:`~repro.serving.dispatcher.Dispatcher`); this policy adds the
    reactive part.

    **What it models:** on every monitor tick, groups whose KV demand
    exceeds ``migrate_out_threshold`` of capacity live-migrate their most
    recently arrived running requests (KV cache and all, over RDMA) to
    groups below ``migrate_in_threshold``, defragmenting free memory across
    the cluster.  Migration resolves local imbalance but is a zero-sum
    move: during a cluster-wide burst every group is over the threshold
    and there is nowhere to migrate to (§2.3, Figure 2e).
    """

    name = "Llumnix"

    def __init__(
        self,
        *,
        migrate_out_threshold: float = 0.90,
        migrate_in_threshold: float = 0.75,
        max_migrations_per_tick: int = 4,
    ) -> None:
        if not 0 < migrate_in_threshold <= migrate_out_threshold:
            raise ValueError("thresholds must satisfy 0 < in <= out")
        self.migrate_out_threshold = migrate_out_threshold
        self.migrate_in_threshold = migrate_in_threshold
        self.max_migrations_per_tick = max_migrations_per_tick
        self.migrations_performed = 0

    def on_monitor_tick(
        self,
        system: "ClusterServingSystem",
        snapshots: List[Dict[str, float]],
        now: float,
    ) -> None:
        by_group: Dict[int, Dict[str, float]] = {int(s["group_id"]): s for s in snapshots}
        groups = {g.group_id: g for g in system.groups if g.active}

        def load_of(group_id: int) -> float:
            snapshot = by_group.get(group_id)
            if snapshot is None or snapshot["kv_capacity_bytes"] <= 0:
                return 1.0
            return snapshot["kv_demand_bytes"] / snapshot["kv_capacity_bytes"]

        overloaded = [g for gid, g in groups.items() if load_of(gid) > self.migrate_out_threshold]
        if not overloaded:
            return
        migrations_left = self.max_migrations_per_tick
        for source in sorted(overloaded, key=lambda g: load_of(g.group_id), reverse=True):
            if migrations_left <= 0:
                break
            # Migrate the most recently arrived running requests first; they
            # have the least progress to lose if the move stalls them.
            victims = sorted(
                source.scheduler.running,
                key=lambda r: (r.arrival_time, r.request_id),
                reverse=True,
            )
            for victim in victims:
                if migrations_left <= 0:
                    break
                if victim.finished or victim.is_stalled(now):
                    continue
                destination = self._pick_destination(groups, by_group, source, victim)
                if destination is None:
                    break
                if source.migrate_request_to(victim, destination):
                    migrations_left -= 1
                    self.migrations_performed += 1
                    # Update the cached snapshots so subsequent picks in this
                    # tick see the shifted load.
                    moved = victim.context_tokens * system.kv_token_bytes
                    by_group[source.group_id]["kv_demand_bytes"] -= moved
                    by_group[destination.group_id]["kv_demand_bytes"] += moved
                if load_of(source.group_id) <= self.migrate_out_threshold:
                    break

    def _pick_destination(self, groups, snapshots, source, victim):
        best = None
        best_load = self.migrate_in_threshold
        for group_id, group in groups.items():
            if group is source:
                continue
            snapshot = snapshots.get(group_id)
            if snapshot is None or snapshot["kv_capacity_bytes"] <= 0:
                continue
            load = snapshot["kv_demand_bytes"] / snapshot["kv_capacity_bytes"]
            if load >= best_load:
                continue
            if not group.kv.can_allocate(victim.request_id, victim.context_tokens):
                continue
            best = group
            best_load = load
        return best
