"""Memory-overload handling policies.

Each policy configures how the cluster is laid out (data parallel vs. static
pipeline parallel), how the per-group scheduler reacts to a full KV cache
(recompute vs. swap), and what cluster-level action the monitor triggers
(nothing, migration, or KunServe's parameter drop).

The baselines mirror the systems the paper compares against:

* :class:`VLLMPolicy` — vLLM with recompute-on-preemption, optionally in a
  static pipeline-parallel deployment (``vLLM (PP)``);
* :class:`InferCeptPolicy` — optimised KV swapping to host DRAM;
* :class:`LlumnixPolicy` — load-balanced dispatching plus KV migration;
* :class:`KunServePolicy` — the paper's parameter-centric approach.
"""

from repro.policies.base import OverloadPolicy
from repro.policies.recompute import VLLMPolicy
from repro.policies.swap import InferCeptPolicy
from repro.policies.migrate import LlumnixPolicy
from repro.policies.kunserve_policy import KunServePolicy

__all__ = [
    "OverloadPolicy",
    "VLLMPolicy",
    "InferCeptPolicy",
    "LlumnixPolicy",
    "KunServePolicy",
]


def make_policy(name: str, **kwargs) -> OverloadPolicy:
    """Construct a policy by name (used by experiment configuration)."""
    registry = {
        "vllm": VLLMPolicy,
        "vllm-dp": VLLMPolicy,
        "vllm-pp": lambda **kw: VLLMPolicy(pp_degree=kw.pop("pp_degree", 2), **kw),
        "infercept": InferCeptPolicy,
        "llumnix": LlumnixPolicy,
        "kunserve": KunServePolicy,
    }
    key = name.lower()
    if key not in registry:
        known = ", ".join(sorted(registry))
        raise KeyError(f"unknown policy {name!r}; known policies: {known}")
    return registry[key](**kwargs)
