"""Generic sweep executor: cache lookup + shared warm worker pool.

:func:`run_tasks` is the single execution path every sweep subsystem
(``repro.scenarios``, ``repro.fleet``, ``repro.bench``) funnels through:

1. Every task's content hash is checked against the
   :class:`~repro.sweeps.cache.ResultCache` (when one is supplied); hits
   are returned without touching a worker.
2. Misses run either inline (``max_workers=1`` — what the benchmark
   harness uses so its event meter sees the simulated events) or on the
   *shared warm pool*: one process-wide ``ProcessPoolExecutor`` that is
   created once, pre-imports the heavy simulator modules in every worker
   (so each worker pays the import cost once rather than once per sweep),
   and is reused by subsequent sweeps in the same process.
3. Fresh results are normalised through a JSON round-trip before they are
   cached *and* before they are returned, so a document assembled from
   fresh results is byte-identical to one assembled from cache hits.

Worker sizing respects the CPUs this process may actually use —
scheduler affinity and cgroup CPU quotas included — via
:func:`effective_worker_count`, so CI containers are not oversubscribed.
"""

from __future__ import annotations

import atexit
import importlib
import json
import math
import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.sweeps.cache import ResultCache
from repro.sweeps.task import SweepTask

#: Modules every warm worker imports up front.  ``repro.serving.system``
#: transitively pulls in the whole simulator (cluster, engine, memory,
#: policies); the sweep modules add the cell runners themselves.
DEFAULT_PRELOAD: Tuple[str, ...] = (
    "repro.serving.system",
    "repro.scenarios.sweep",
    "repro.fleet.sweep",
    "repro.multicluster.sweep",
    "repro.chaos.sweep",
    "repro.parallel.shard",
)


# ----------------------------------------------------------------------
# Worker sizing
# ----------------------------------------------------------------------
def _cgroup_cpu_quota() -> Optional[int]:
    """CPU limit imposed by the cgroup (v2 then v1), rounded up; None if none."""
    try:  # cgroup v2: "max 100000" or "<quota> <period>"
        text = _read_sys_file("/sys/fs/cgroup/cpu.max")
        if text is not None:
            quota_s, period_s = (text.split() + ["100000"])[:2]
            if quota_s != "max":
                quota, period = int(quota_s), int(period_s)
                if quota > 0 and period > 0:
                    return max(1, math.ceil(quota / period))
    except (ValueError, OSError):
        pass
    try:  # cgroup v1
        quota_text = _read_sys_file("/sys/fs/cgroup/cpu/cpu.cfs_quota_us")
        period_text = _read_sys_file("/sys/fs/cgroup/cpu/cpu.cfs_period_us")
        if quota_text is not None and period_text is not None:
            quota, period = int(quota_text), int(period_text)
            if quota > 0 and period > 0:
                return max(1, math.ceil(quota / period))
    except (ValueError, OSError):
        pass
    return None


def _read_sys_file(path: str) -> Optional[str]:
    """Read a proc/sys file, returning None when it does not exist."""
    try:
        with open(path, "r") as handle:
            return handle.read().strip()
    except OSError:
        return None


def effective_worker_count() -> int:
    """CPUs this process may actually use for worker processes.

    ``os.process_cpu_count()`` (Python 3.13+) already accounts for
    scheduler affinity; older interpreters fall back to
    ``sched_getaffinity`` and then ``cpu_count``.  The result is further
    clamped by the cgroup CPU quota, which CI containers set while still
    exposing every host CPU to ``cpu_count`` — the oversubscription this
    helper exists to avoid.
    """
    process_count = getattr(os, "process_cpu_count", None)
    if process_count is not None:
        cpus = process_count() or 1
    else:
        try:
            cpus = len(os.sched_getaffinity(0))
        except AttributeError:  # pragma: no cover - non-Linux
            cpus = os.cpu_count() or 1
    quota = _cgroup_cpu_quota()
    if quota is not None:
        cpus = min(cpus, quota)
    return max(1, cpus)


# ----------------------------------------------------------------------
# Shared warm pool
# ----------------------------------------------------------------------
_shared_pool: Optional[ProcessPoolExecutor] = None
_shared_pool_workers: int = 0


def _warm_worker(module_names: Sequence[str]) -> None:
    """Worker initializer: import the heavy modules once per process."""
    for name in module_names:
        try:
            importlib.import_module(name)
        except ImportError:  # pragma: no cover - preload is best-effort
            pass


def shared_pool(workers: int) -> ProcessPoolExecutor:
    """The process-wide warm worker pool, (re)sized to at least ``workers``.

    The pool persists across sweeps: a ``repro.bench`` run that executes a
    scenario sweep and then a fleet sweep reuses the same warm workers
    instead of paying pool spin-up plus simulator imports twice.  Asking
    for more workers than the current pool holds recreates it larger;
    asking for fewer reuses the existing (idle workers are cheap, warm
    imports are not).
    """
    global _shared_pool, _shared_pool_workers
    workers = max(1, workers)
    if _shared_pool is not None and workers <= _shared_pool_workers:
        return _shared_pool
    if _shared_pool is not None:
        _shared_pool.shutdown(wait=True)
    _shared_pool = ProcessPoolExecutor(
        max_workers=workers,
        initializer=_warm_worker,
        initargs=(DEFAULT_PRELOAD,),
    )
    _shared_pool_workers = workers
    return _shared_pool


def shutdown_shared_pool() -> None:
    """Tear down the warm pool (atexit hook; also used by tests)."""
    global _shared_pool, _shared_pool_workers
    if _shared_pool is not None:
        _shared_pool.shutdown(wait=True)
        _shared_pool = None
        _shared_pool_workers = 0


atexit.register(shutdown_shared_pool)


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def execute_task(task: SweepTask) -> Dict[str, Any]:
    """Resolve and run one task's runner (this is what workers execute).

    The run is wrapped in a :class:`~repro.obs.profile.TaskProfiler` and
    the measurement attached as a ``profile`` block on the payload —
    part of the cached *value*, never the cache key (the runner-module
    bytecode fingerprint does not cover this module), so existing cache
    entries stay valid; entries cached before the profiler existed just
    lack the block.  A runner that already returns a ``profile`` key, or
    a non-dict payload, is left untouched.
    """
    from repro.obs.profile import TaskProfiler

    module_name, _, func_name = task.runner.partition(":")
    module = importlib.import_module(module_name)
    runner = getattr(module, func_name)
    with TaskProfiler() as profiler:
        payload = runner(task.params, task.seed)
    if isinstance(payload, dict) and "profile" not in payload:
        payload["profile"] = profiler.block()
    return payload


def _normalize(payload: Dict[str, Any]) -> Dict[str, Any]:
    """JSON round-trip so fresh and cached results are indistinguishable."""
    return json.loads(json.dumps(payload))


def _map_bounded(
    pool: ProcessPoolExecutor, tasks: Sequence[SweepTask], limit: int
) -> List[Dict[str, Any]]:
    """Map ``execute_task`` over ``tasks`` with at most ``limit`` in flight.

    The shared pool may hold more workers than this call is allowed to use
    (it is sized for the largest sweep seen so far); bounding the window
    here keeps the caller's ``max_workers`` contract honest without
    tearing down and rebuilding the warm pool.
    """
    results: List[Optional[Dict[str, Any]]] = [None] * len(tasks)
    inflight: Dict[Any, int] = {}
    next_index = 0
    while next_index < len(tasks) or inflight:
        while next_index < len(tasks) and len(inflight) < limit:
            inflight[pool.submit(execute_task, tasks[next_index])] = next_index
            next_index += 1
        done, _ = wait(inflight, return_when=FIRST_COMPLETED)
        for future in done:
            results[inflight.pop(future)] = future.result()
    return results


@dataclass
class SweepOutcome:
    """Results of one :func:`run_tasks` call, in task order."""

    results: List[Dict[str, Any]] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0


def run_tasks(
    tasks: Sequence[SweepTask],
    *,
    max_workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> SweepOutcome:
    """Execute ``tasks``, serving cache hits and fanning misses out.

    Args:
        tasks: the grid, in the order results should come back.
        max_workers: ``1`` runs every miss inline in this process (no
            pool — the benchmark harness depends on this to meter
            simulated events); ``None`` sizes the pool to
            ``min(len(misses), effective_worker_count())``.
        cache: result cache consulted before and populated after
            execution; ``None`` disables caching entirely.
    """
    if max_workers is not None and max_workers < 1:
        raise ValueError("max_workers must be >= 1")
    outcome = SweepOutcome(results=[None] * len(tasks))
    miss_indices: List[int] = []
    for index, task in enumerate(tasks):
        payload = cache.load(task) if cache is not None else None
        if payload is not None:
            outcome.results[index] = payload
            outcome.cache_hits += 1
        else:
            miss_indices.append(index)
    outcome.cache_misses = len(miss_indices)
    if not miss_indices:
        return outcome

    misses = [tasks[i] for i in miss_indices]
    workers = min(
        max_workers if max_workers is not None else effective_worker_count(),
        len(misses),
    )
    if workers <= 1:
        payloads = [execute_task(task) for task in misses]
    else:
        try:
            payloads = _map_bounded(shared_pool(workers), misses, workers)
        except BrokenProcessPool:
            # A dead worker poisons a ProcessPoolExecutor permanently;
            # discard the broken pool and retry once on a fresh one so a
            # transient kill (OOM, signal) doesn't fail every later sweep
            # in this process.
            shutdown_shared_pool()
            payloads = _map_bounded(shared_pool(workers), misses, workers)
    for index, payload in zip(miss_indices, payloads):
        normalized = _normalize(payload)
        if cache is not None:
            cache.store(tasks[index], normalized)
        outcome.results[index] = normalized
    return outcome
