"""Sweep tasks: the unit of work the sweep engine executes and caches.

A :class:`SweepTask` pairs a *runner* (a ``"module:function"`` reference the
worker process resolves by import, so tasks survive any multiprocessing
start method) with two views of its inputs:

* ``params`` — the picklable keyword payload handed to the runner.  It may
  contain rich objects (``ScenarioSpec``, ``ExperimentScale``) as long as
  they pickle.
* ``key`` — a JSON-able *content fingerprint* of the same inputs.  The
  task's identity for caching purposes is derived from it, never from
  ``params``.

The content hash is the cache-key contract (see ``ARCHITECTURE.md``): a
SHA-256 over the canonical JSON of ``(runner, runner-module bytecode
fingerprint, key, seed, repro version, cache format version)``.  Any
config change, seed change, change to the *compiled code* of the runner's
module, ``repro`` version bump, or cache-format bump therefore produces a
different hash and invalidates prior results — and nothing else does.
Runners must be pure functions of ``(params, seed)`` modulo host
wall-clock fields.

The bytecode fingerprint (:func:`runner_bytecode_fingerprint`) makes
invalidation finer than the package version alone: editing the runner's
module invalidates its cells automatically, while unrelated code changes
keep them warm.  It hashes compiled code objects (not source bytes), so
comments and formatting don't invalidate.  It only sees the runner's *own*
module — a behaviour change in a module the runner calls into must still
be accompanied by a ``repro.version`` bump, which stays the manual
invalidate-everything lever.
"""

from __future__ import annotations

import hashlib
import importlib.util
import json
import types
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping

import repro.version as _version

#: Version of the cache entry format; bump to invalidate every prior entry.
CACHE_FORMAT_VERSION = 1

#: Signature of a task runner: ``(params, seed) -> JSON-able payload``.
TaskRunner = Callable[[Mapping[str, Any], int], Dict[str, Any]]


#: Memoised module fingerprints: computed once per (module, process).
_MODULE_FINGERPRINTS: Dict[str, str] = {}


def _const_token(const: Any) -> str:
    """Canonical text for a code constant.

    ``repr`` alone is not stable for ``frozenset`` constants (set literals
    compile to them): their iteration order follows string hashing, which
    is randomised per interpreter run, and a run-dependent fingerprint
    would silently turn every cache lookup into a miss.  Sets are
    therefore serialised in sorted-element order; tuples recurse since
    they may nest them.
    """
    if isinstance(const, frozenset):
        return "frozenset{" + ",".join(sorted(_const_token(c) for c in const)) + "}"
    if isinstance(const, tuple):
        return "tuple(" + ",".join(_const_token(c) for c in const) + ")"
    return repr(const)


def _hash_code_object(code: types.CodeType, digest) -> None:
    """Fold a code object (and its nested code constants) into ``digest``.

    Deliberately skips line-number tables and filenames, so moving code
    around a file or editing comments does not change the fingerprint;
    any change to instructions, constants or names does.
    """
    digest.update(code.co_code)
    for names in (code.co_names, code.co_varnames, code.co_freevars, code.co_cellvars):
        digest.update(repr(names).encode("utf-8"))
    for const in code.co_consts:
        if isinstance(const, types.CodeType):
            _hash_code_object(const, digest)
        else:
            digest.update(_const_token(const).encode("utf-8"))


def runner_bytecode_fingerprint(runner: str) -> str:
    """Fingerprint of the compiled bytecode of a runner's module.

    Part of every task's hash material: a code change inside the runner's
    module invalidates its cached cells without a ``repro.version`` bump,
    and — because only bytecode is hashed — comment/formatting edits and
    changes to *other* modules keep cells warm.  Falls back to the
    constant ``"unavailable"`` when the module cannot be located or read
    (e.g. a frozen distribution), degrading to the version-only contract.
    """
    module_name = runner.partition(":")[0]
    cached = _MODULE_FINGERPRINTS.get(module_name)
    if cached is not None:
        return cached
    fingerprint = "unavailable"
    try:
        spec = importlib.util.find_spec(module_name)
        origin = getattr(spec, "origin", None)
        if origin is not None and origin.endswith(".py"):
            with open(origin, "rb") as handle:
                source = handle.read()
            code = compile(source, "<runner-module>", "exec", dont_inherit=True)
            digest = hashlib.sha256()
            _hash_code_object(code, digest)
            fingerprint = digest.hexdigest()[:16]
    except (ImportError, OSError, SyntaxError, ValueError):
        pass
    _MODULE_FINGERPRINTS[module_name] = fingerprint
    return fingerprint


def canonical_json(value: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, NaN rejected.

    Raises ``TypeError`` for non-JSON-able values, which is the fail-fast
    guard that keeps task keys honest — a key that cannot be canonically
    serialised cannot be content-addressed.
    """
    return json.dumps(value, sort_keys=True, separators=(",", ":"), allow_nan=False)


@dataclass(frozen=True)
class SweepTask:
    """One cacheable cell of a sweep grid.

    Attributes:
        runner: ``"package.module:function"`` executed in the worker.
        params: picklable keyword payload passed to the runner.
        key: JSON-able content fingerprint of the cell's configuration
            (everything that influences the result except the seed).
        seed: the cell's seed; hashed separately so seed sweeps are
            naturally distinct cache entries.
        label: optional display name for logs; never hashed.
    """

    runner: str
    params: Mapping[str, Any]
    key: Mapping[str, Any]
    seed: int = 42
    label: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if ":" not in self.runner:
            raise ValueError(
                f"runner must be a 'module:function' reference, got {self.runner!r}"
            )

    def hash_material(self) -> Dict[str, Any]:
        """The exact dict the content hash is computed over."""
        return {
            "runner": self.runner,
            "runner_bytecode": runner_bytecode_fingerprint(self.runner),
            "key": dict(self.key),
            "seed": self.seed,
            "repro_version": _version.__version__,
            "cache_format_version": CACHE_FORMAT_VERSION,
        }

    def content_hash(self) -> str:
        """Stable content address of this task (hex, 24 chars)."""
        material = canonical_json(self.hash_material())
        return hashlib.sha256(material.encode("utf-8")).hexdigest()[:24]
