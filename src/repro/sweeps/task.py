"""Sweep tasks: the unit of work the sweep engine executes and caches.

A :class:`SweepTask` pairs a *runner* (a ``"module:function"`` reference the
worker process resolves by import, so tasks survive any multiprocessing
start method) with two views of its inputs:

* ``params`` — the picklable keyword payload handed to the runner.  It may
  contain rich objects (``ScenarioSpec``, ``ExperimentScale``) as long as
  they pickle.
* ``key`` — a JSON-able *content fingerprint* of the same inputs.  The
  task's identity for caching purposes is derived from it, never from
  ``params``.

The content hash is the cache-key contract (see ``ARCHITECTURE.md``): a
SHA-256 over the canonical JSON of ``(runner, key, seed, repro version,
cache format version)``.  Any config change, seed change, ``repro``
version bump, or cache-format bump therefore produces a different hash and
invalidates prior results — and nothing else does.  Runners must be pure
functions of ``(params, seed)`` modulo host wall-clock fields.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping

import repro.version as _version

#: Version of the cache entry format; bump to invalidate every prior entry.
CACHE_FORMAT_VERSION = 1

#: Signature of a task runner: ``(params, seed) -> JSON-able payload``.
TaskRunner = Callable[[Mapping[str, Any], int], Dict[str, Any]]


def canonical_json(value: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, NaN rejected.

    Raises ``TypeError`` for non-JSON-able values, which is the fail-fast
    guard that keeps task keys honest — a key that cannot be canonically
    serialised cannot be content-addressed.
    """
    return json.dumps(value, sort_keys=True, separators=(",", ":"), allow_nan=False)


@dataclass(frozen=True)
class SweepTask:
    """One cacheable cell of a sweep grid.

    Attributes:
        runner: ``"package.module:function"`` executed in the worker.
        params: picklable keyword payload passed to the runner.
        key: JSON-able content fingerprint of the cell's configuration
            (everything that influences the result except the seed).
        seed: the cell's seed; hashed separately so seed sweeps are
            naturally distinct cache entries.
        label: optional display name for logs; never hashed.
    """

    runner: str
    params: Mapping[str, Any]
    key: Mapping[str, Any]
    seed: int = 42
    label: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if ":" not in self.runner:
            raise ValueError(
                f"runner must be a 'module:function' reference, got {self.runner!r}"
            )

    def hash_material(self) -> Dict[str, Any]:
        """The exact dict the content hash is computed over."""
        return {
            "runner": self.runner,
            "key": dict(self.key),
            "seed": self.seed,
            "repro_version": _version.__version__,
            "cache_format_version": CACHE_FORMAT_VERSION,
        }

    def content_hash(self) -> str:
        """Stable content address of this task (hex, 24 chars)."""
        material = canonical_json(self.hash_material())
        return hashlib.sha256(material.encode("utf-8")).hexdigest()[:24]
