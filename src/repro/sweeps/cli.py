"""Shared cache-related CLI surface for the sweep front-ends.

``python -m repro.scenarios`` and ``python -m repro.fleet`` expose the
same result-cache controls; defining the argparse block and its handling
once here keeps the two CLIs in lockstep.
"""

from __future__ import annotations

import argparse
from typing import Dict

from repro.sweeps.cache import ResultCache, default_cache_dir


def add_cache_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the ``--no-cache`` / ``--cache-stats`` / ``--clear-cache`` /
    ``--cache-dir`` options on a sweep CLI parser."""
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every cell instead of serving unchanged cells from "
        "the on-disk result cache",
    )
    parser.add_argument(
        "--cache-stats",
        action="store_true",
        help="print cache hit/miss counts after the sweep",
    )
    parser.add_argument(
        "--clear-cache",
        action="store_true",
        help="purge the result cache and exit",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="result cache location (default: .repro_cache/ at the "
        "repository root, or $REPRO_CACHE_DIR)",
    )


def clear_cache(args: argparse.Namespace) -> int:
    """Handle ``--clear-cache``: purge and report; returns the exit code."""
    cache = ResultCache(args.cache_dir)
    removed = cache.clear()
    print(f"removed {removed} cached result(s) from {cache.root}")
    return 0


def print_cache_stats(document: Dict, args: argparse.Namespace) -> None:
    """Handle ``--cache-stats``: one summary line after the sweep table."""
    cells = document["cache_hits"] + document["cache_misses"]
    print(
        f"cache: {document['cache_hits']}/{cells} cells served from "
        f"{args.cache_dir or default_cache_dir()}"
        + (" (caching disabled)" if args.no_cache else "")
    )
