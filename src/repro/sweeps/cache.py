"""On-disk, content-addressed result cache for sweep tasks.

Entries live under ``.repro_cache/`` at the repository root (override with
the ``REPRO_CACHE_DIR`` environment variable or an explicit ``root``), one
JSON file per task hash::

    .repro_cache/<hash>.json
    {
      "cache_format_version": 1,
      "task": {...hash material, for debugging...},
      "result": {...the runner's JSON payload...}
    }

Because a task hash covers the full cell configuration, the seed, the
``repro`` package version and the cache format version (see
:mod:`repro.sweeps.task`), a hit is always safe to substitute for a fresh
run of a deterministic runner.  Corrupted or unreadable entries are
deleted and treated as misses, so a damaged cache degrades to recompute,
never to failure.  Writes are atomic (temp file + ``os.replace``) so
concurrent sweeps sharing a cache directory cannot observe torn entries.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Optional

from repro.sweeps.task import CACHE_FORMAT_VERSION, SweepTask

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default cache location: ``<repo root>/.repro_cache`` (gitignored).
DEFAULT_CACHE_DIR = Path(__file__).resolve().parents[3] / ".repro_cache"


def default_cache_dir() -> Path:
    """The cache root: ``$REPRO_CACHE_DIR`` or ``.repro_cache/`` in the repo."""
    override = os.environ.get(CACHE_DIR_ENV)
    return Path(override) if override else DEFAULT_CACHE_DIR


class ResultCache:
    """Content-addressed store of sweep-task result payloads."""

    def __init__(self, root: Optional[os.PathLike] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def path_for(self, task: SweepTask) -> Path:
        return self.root / f"{task.content_hash()}.json"

    def load(self, task: SweepTask) -> Optional[Dict[str, Any]]:
        """The cached payload for ``task``, or ``None`` on a miss.

        Any unreadable, unparsable or wrong-format entry is deleted and
        reported as a miss (corruption recovery: fall back to recompute).
        """
        path = self.path_for(task)
        try:
            text = path.read_text()
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, UnicodeDecodeError):
            # Unreadable or not valid UTF-8: corrupt, drop it.
            self._discard(path)
            self.misses += 1
            return None
        try:
            entry = json.loads(text)
        except json.JSONDecodeError:
            self._discard(path)
            self.misses += 1
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("cache_format_version") != CACHE_FORMAT_VERSION
            or not isinstance(entry.get("result"), dict)
        ):
            self._discard(path)
            self.misses += 1
            return None
        self.hits += 1
        return entry["result"]

    def store(self, task: SweepTask, payload: Dict[str, Any]) -> Optional[Path]:
        """Persist ``payload`` for ``task`` atomically; returns the path.

        An unwritable cache (read-only checkout, full disk, bad
        ``REPRO_CACHE_DIR``) is not an error: the result was already
        computed, so storing degrades to a no-op (``None``) and the sweep
        carries on — matching ``load``'s degrade-to-recompute contract.
        """
        path = self.path_for(task)
        entry = {
            "cache_format_version": CACHE_FORMAT_VERSION,
            "task": task.hash_material(),
            "result": payload,
        }
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            tmp.write_text(json.dumps(entry, indent=1) + "\n")
            os.replace(tmp, path)
        except OSError:
            self._discard(tmp)
            return None
        self.stores += 1
        return path

    def clear(self) -> int:
        """Delete every cache entry; returns the number of files removed."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for path in self.root.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "stores": self.stores}

    def _discard(self, path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultCache(root={str(self.root)!r}, hits={self.hits}, misses={self.misses})"
