"""Unified incremental sweep engine.

One execution path for every sweep subsystem: ``repro.scenarios``,
``repro.fleet`` and ``repro.bench`` all describe their grids as
:class:`~repro.sweeps.task.SweepTask` cells and hand them to
:func:`~repro.sweeps.executor.run_tasks`, which serves unchanged cells
from the content-addressed on-disk cache
(:class:`~repro.sweeps.cache.ResultCache`, ``.repro_cache/``) and fans
the rest out over a shared warm worker pool that pre-imports the
simulator once per worker.  See ``ARCHITECTURE.md`` ("Sweep engine") for
the cache-key contract.
"""

from repro.sweeps.cache import (
    CACHE_DIR_ENV,
    DEFAULT_CACHE_DIR,
    ResultCache,
    default_cache_dir,
)
from repro.sweeps.executor import (
    DEFAULT_PRELOAD,
    SweepOutcome,
    effective_worker_count,
    execute_task,
    run_tasks,
    shared_pool,
    shutdown_shared_pool,
)
from repro.sweeps.task import (
    CACHE_FORMAT_VERSION,
    SweepTask,
    canonical_json,
    runner_bytecode_fingerprint,
)

__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_FORMAT_VERSION",
    "DEFAULT_CACHE_DIR",
    "DEFAULT_PRELOAD",
    "ResultCache",
    "SweepOutcome",
    "SweepTask",
    "canonical_json",
    "default_cache_dir",
    "effective_worker_count",
    "execute_task",
    "run_tasks",
    "runner_bytecode_fingerprint",
    "shared_pool",
    "shutdown_shared_pool",
]
