"""Conservative window schedule for parallel shard execution.

The multicluster tier's shards interact only through the inter-cluster
WAN fabric, and every WAN transfer pays at least the link's propagation
delay (:class:`repro.cluster.network.InterClusterLinkSpec.latency_s`).
That delay is the tier's **lookahead**: an event executed on one shard at
time ``t`` cannot affect any other shard before ``t + lookahead``.  A
conservative parallel execution may therefore let every shard advance
through a window of simulated time no longer than the lookahead before
synchronising — the classic conservative PDES bound (Chandy-Misra-Bryant
with precomputed channel traffic instead of null messages).

:func:`window_schedule` materialises the contiguous window sequence for a
horizon and validates the bound; violations raise
:class:`LookaheadViolation` instead of silently producing a run whose
results could diverge from the serial oracle.
"""

from __future__ import annotations

from typing import List, Tuple


class LookaheadViolation(ValueError):
    """The conservative lookahead bound was violated.

    Raised when a window longer than the tier's lookahead is requested,
    when a configuration offers no lookahead at all (zero WAN latency),
    or when a replayed dispatch would have to be injected into a shard's
    past — each of these breaks the guarantee that parallel execution is
    bit-identical to the serial oracle.
    """


def tier_lookahead_s(wan_latency_s: float) -> float:
    """The tier's lookahead: the minimum WAN propagation delay.

    Every cross-shard interaction crosses a WAN link and therefore takes
    at least this long; a non-positive latency gives the conservative
    protocol nothing to work with.
    """
    if wan_latency_s <= 0.0:
        raise LookaheadViolation(
            f"wan_latency_s={wan_latency_s} gives no lookahead: with instant "
            "cross-shard delivery the conservative protocol cannot advance "
            "any shard ahead of the others"
        )
    return wan_latency_s


def window_schedule(
    horizon: float, window_s: float, lookahead_s: float
) -> List[Tuple[float, float]]:
    """Contiguous execution windows covering ``[0, horizon]``.

    Window boundaries are computed as multiples of ``window_s`` (not by
    accumulating ``start + window_s``) so thousands of windows stay exact:
    each window is ``(k * window_s, min((k + 1) * window_s, horizon))``
    and adjacent windows share their boundary bit-for-bit.
    """
    if horizon <= 0.0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    if window_s <= 0.0:
        raise ValueError(f"window_s must be positive, got {window_s}")
    if window_s > lookahead_s:
        raise LookaheadViolation(
            f"window_s={window_s} exceeds the tier lookahead {lookahead_s}: "
            "a shard may only run ahead of its siblings by the minimum WAN "
            "propagation delay"
        )
    windows: List[Tuple[float, float]] = []
    index = 0
    start = 0.0
    while start < horizon:
        end = min((index + 1) * window_s, horizon)
        windows.append((start, end))
        start = end
        index += 1
    return windows
