"""Parallel tier executor: plan, fan shards out, reassemble the result.

:func:`run_parallel` is the coordinator for one multicluster tier run
under the conservative protocol:

1. **Eligibility.** :func:`parallel_ineligibility` checks that nothing in
   the configuration couples shard state back into the tier layer; the
   sweep fork (``repro.multicluster.sweep.run_tier``) calls it first and
   falls back to serial — with the reason recorded — when it returns one.
2. **Plan.** :func:`repro.parallel.plan.plan_tier` replays routing plus
   the WAN fabric standalone and yields every shard's dispatch schedule.
3. **Replay.** One :class:`~repro.parallel.shard.ShardTask` per shard is
   submitted to the shared warm process pool
   (:func:`repro.sweeps.shared_pool`); each worker advances its shard
   through the lookahead-bounded window schedule.
4. **Reassemble.** Records, throughput and stats are merged in the exact
   order the serial :class:`~repro.multicluster.system.MultiClusterSystem`
   produces them — shard-index order, then the planner's in-flight and
   fault-lost requests — so the committed
   :class:`~repro.multicluster.system.MultiClusterResult` is bit-identical
   to serial execution (float summation order included).
"""

from __future__ import annotations

import dataclasses
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional

from repro.engine.metrics import RequestRecord
from repro.multicluster.system import MultiClusterResult, summarize_records
from repro.parallel.plan import TierPlan, plan_tier
from repro.parallel.shard import ShardResult, ShardTask, run_shard
from repro.parallel.windows import tier_lookahead_s, window_schedule
from repro.serving.config import ServingConfig
from repro.sweeps import effective_worker_count, shared_pool, shutdown_shared_pool
from repro.workloads.trace import Workload

#: Global routers whose decisions are pure functions of the request —
#: the only ones the plan phase can replay without live shard state.
PARALLEL_SAFE_ROUTERS = frozenset({"locality_affinity"})


def parallel_ineligibility(
    config: ServingConfig, *, trace: bool = False
) -> Optional[str]:
    """Why ``config`` cannot run under the conservative protocol, or None.

    Each reason names a channel through which live shard state would feed
    back into the tier layer (or vice versa), breaking the plan-then-replay
    decomposition.  A non-None reason means the caller must run serially;
    the sweep fork records the reason on the :class:`TierRun` so fallbacks
    stay visible.
    """
    mc = config.multicluster
    if mc is None:
        return "no multicluster section: nothing to shard"
    if mc.num_clusters < 2:
        return "single shard: nothing to parallelise"
    if mc.global_router not in PARALLEL_SAFE_ROUTERS:
        return (
            f"global router {mc.global_router!r} reads live shard state; "
            "only " + ", ".join(sorted(PARALLEL_SAFE_ROUTERS)) + " is state-free"
        )
    if mc.cluster_autoscaler != "fixed":
        return (
            f"cluster_autoscaler {mc.cluster_autoscaler!r}: placement ticks "
            "can donate capacity across shards, coupling their state"
        )
    if config.chaos:
        return "chaos schedule present: faults couple tier and shard state"
    if trace:
        return "span tracing requested: the tracer observes cross-shard order"
    if mc.wan_latency_s <= 0.0:
        return "wan_latency_s is zero: the conservative protocol has no lookahead"
    return None


@dataclasses.dataclass
class ParallelReport:
    """How a parallel run executed (attached to the sweep's TierRun)."""

    workers: int
    window_s: float
    lookahead_s: float
    window_count: int
    #: per-shard executed-event counts, shard-index order.
    shard_events: List[int]
    #: per-shard window traces (:class:`repro.parallel.shard.WindowRecord`),
    #: consumed by the window-conservation invariant checks.
    shard_windows: List[list]


class ParallelTierView:
    """Duck-types the slice of ``MultiClusterSystem`` the sweeps read.

    ``run_multicluster_cell`` and ``run_chaos_cell`` consume the tier
    system only through ``stats()``, ``initial_group_count()``,
    ``recovery_transient_s()`` and ``tracer`` — this view answers those
    from the planner's counters plus the per-shard worker results, in the
    serial implementation's exact key order.
    """

    #: eligibility rejects traced runs, so a parallel view never has one.
    tracer = None

    def __init__(self, plan: TierPlan, shard_results: List[ShardResult]) -> None:
        self._plan = plan
        self._shard_results = shard_results

    def initial_group_count(self) -> int:
        return sum(result.initial_groups for result in self._shard_results)

    def recovery_transient_s(self, records: List[RequestRecord]) -> float:
        # Eligibility guarantees no chaos, hence no displacements; the
        # serial implementation returns 0.0 in exactly that case.
        return 0.0

    def stats(self) -> Dict[str, float]:
        planner = self._plan.planner
        per_cluster = [result.fleet_stats for result in self._shard_results]
        return {
            "admitted": sum(s["admitted"] for s in per_cluster),
            "shed": sum(s["shed"] for s in per_cluster),
            "queue_peak": max(s["queue_peak"] for s in per_cluster),
            "scale_up_events": sum(s["scale_up_events"] for s in per_cluster),
            "scale_down_events": sum(s["scale_down_events"] for s in per_cluster),
            "final_groups": sum(s["final_groups"] for s in per_cluster),
            "local_routed": float(planner.local_routed),
            "remote_routed": float(planner.remote_routed),
            "remote_scale_ups": float(planner.remote_scale_ups),
            "cross_cluster_bytes": float(planner.fabric.bytes_sent),
            "cross_cluster_transfers": float(planner.fabric.transfers),
            "rerouted": float(planner.rerouted),
            "lost_to_fault": float(planner.lost_to_fault),
            "migrated_sessions": float(planner.migrated_sessions),
            "migration_hits": float(planner.migration_hits),
            "migration_bytes": float(planner.migration_bytes),
            "dispatch_bytes": float(planner.dispatch_bytes),
            "instance_kills": float(planner.instance_kills),
            "cluster_outages": float(planner.cluster_outages),
            "wan_degrades": float(planner.wan_degrades),
            "displaced": float(len(planner._displacements)),
        }


@dataclasses.dataclass
class ParallelOutcome:
    """Everything :func:`run_parallel` produces for the sweep fork."""

    result: MultiClusterResult
    view: ParallelTierView
    report: ParallelReport


def run_parallel(
    config: ServingConfig,
    policy_key: str,
    workload: Workload,
    *,
    until: Optional[float] = None,
    drain: bool = True,
    max_workers: Optional[int] = None,
    window_s: Optional[float] = None,
) -> ParallelOutcome:
    """Run one multicluster tier cell under the conservative protocol.

    Raises ``ValueError`` (with the ineligibility reason) when the config
    cannot be sharded safely — callers that want transparent fallback
    should consult :func:`parallel_ineligibility` first, as the sweep
    fork does.
    """
    reason = parallel_ineligibility(config)
    if reason is not None:
        raise ValueError(f"config not eligible for parallel execution: {reason}")
    plan = plan_tier(config, workload, until=until, drain=drain)
    mc = config.multicluster
    lookahead = tier_lookahead_s(mc.wan_latency_s)
    window = window_s if window_s is not None else lookahead
    # Validate the schedule up front so a bad window fails before any
    # worker is dispatched (run_shard recomputes the same schedule).
    windows = window_schedule(plan.horizon, window, lookahead)
    tasks = [
        ShardTask(
            shard_index=index,
            config=plan.planner.shard_config(index),
            policy_key=policy_key,
            dispatches=tuple(plan.per_shard[index]),
            horizon=plan.horizon,
            window_s=window,
            lookahead_s=lookahead,
        )
        for index in range(mc.num_clusters)
    ]
    workers = max_workers if max_workers is not None else effective_worker_count()
    workers = max(1, min(workers, len(tasks)))
    if workers <= 1:
        shard_results = [run_shard(task) for task in tasks]
    else:
        pool = shared_pool(workers)
        try:
            shard_results = list(pool.map(run_shard, tasks))
        except BrokenProcessPool:
            # A worker died (OOM kill, signal). Rebuild the pool once and
            # retry — shard replay is deterministic and side-effect free.
            shutdown_shared_pool()
            pool = shared_pool(workers)
            shard_results = list(pool.map(run_shard, tasks))

    # -- reassembly: serial record/summation order, to the bit ----------
    records: List[RequestRecord] = []
    for result in shard_results:
        records.extend(result.records)
    for request in plan.planner._in_flight.values():
        records.append(RequestRecord.from_request(request))
    for request in plan.planner._lost_requests:
        records.append(RequestRecord.from_request(request))
    finished = sum(1 for record in records if record.finished)
    throughput = sum(result.throughput_term for result in shard_results)
    result = MultiClusterResult(
        system_name=shard_results[0].policy_name,
        workload_name=workload.name,
        records=records,
        duration_s=plan.horizon,
        submitted_requests=len(plan.requests),
        finished_requests=finished,
        summary=summarize_records(records, throughput),
        cluster_stats=[dict(r.fleet_stats) for r in shard_results],
    )
    report = ParallelReport(
        workers=workers,
        window_s=window,
        lookahead_s=lookahead,
        window_count=len(windows),
        shard_events=[r.events for r in shard_results],
        shard_windows=[r.windows for r in shard_results],
    )
    return ParallelOutcome(
        result=result, view=ParallelTierView(plan, shard_results), report=report
    )
