"""Worker-side shard replay: one cluster shard, windowed, in isolation.

:func:`run_shard` is what the parallel executor submits to the shared
warm worker pool (:func:`repro.sweeps.shared_pool`) — one call per shard.
It rebuilds the shard's :class:`~repro.serving.system.ClusterServingSystem`
from the same ``ServingConfig`` the serial tier would use (same seed
offset, same fleet settings), then advances it through the conservative
window schedule: before each window it injects every planned dispatch
whose time falls inside the window, then runs the shard's private event
loop up to the window boundary.  A dispatch that would have to land in
the shard's past raises :class:`~repro.parallel.windows.LookaheadViolation`
— the runtime conservation check that the plan respected the protocol.

Determinism argument (why this is bit-identical to the serial run):

* Shards share no state; within one shard, the relative order of its own
  events is preserved whether they interleave with other shards' events
  on a shared loop (serial) or run alone on a private loop (here) —
  event seq numbers only break ties between *simultaneous* events, and
  simultaneous events of one shard keep their relative seq order.
* Arrivals are injected at event priority ``ARRIVAL_PRIORITY`` (−1).
  Every event the simulator itself schedules uses priority 0, and in the
  serial run the pre-scheduled arrival events hold the globally lowest
  seq numbers — so a serial arrival executes before any simulator event
  sharing its timestamp.  Priority −1 reproduces exactly that ordering
  on the shard's private loop, and multiple injected arrivals at one
  timestamp keep their plan order through injection seq order.
* The one measure-zero caveat: a *WAN delivery* that lands on exactly
  the same float timestamp as an unrelated shard event is ordered by
  seq in serial (delivery scheduled mid-run, so after) but by priority
  here (before).  Delivery times are sums of exponential arrival gaps,
  propagation delay and fluid-flow transmission times — an exact float
  collision does not occur in practice, and the bit-identity tests would
  catch one if it ever did.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.engine.metrics import RequestRecord
from repro.engine.request import Request
from repro.parallel.windows import LookaheadViolation, window_schedule
from repro.policies import make_policy
from repro.serving.config import ServingConfig
from repro.serving.system import ClusterServingSystem
from repro.simulation.event_loop import EventLoop

#: Event priority used when injecting planned dispatches into a shard's
#: loop.  All simulator-scheduled events use priority 0; −1 makes an
#: injected arrival execute before any simulator event sharing its
#: timestamp, which is exactly the order the serial run produces (its
#: pre-scheduled arrival events hold the globally lowest seq numbers).
ARRIVAL_PRIORITY = -1


@dataclasses.dataclass(frozen=True)
class ShardTask:
    """Everything one worker needs to replay one shard."""

    shard_index: int
    config: ServingConfig
    policy_key: str
    #: planned ``(dispatch time, request)`` pairs, dispatch-time order.
    dispatches: Tuple[Tuple[float, Request], ...]
    horizon: float
    window_s: float
    lookahead_s: float


@dataclasses.dataclass(frozen=True)
class WindowRecord:
    """One executed window of one shard (the barrier-conservation trace)."""

    start: float
    end: float
    injected: int
    executed: int
    #: dispatch-time extremes of the injected requests (None when none).
    first_t: Optional[float]
    last_t: Optional[float]


@dataclasses.dataclass
class ShardResult:
    """What a shard replay sends back to the coordinator."""

    shard_index: int
    policy_name: str
    records: List[RequestRecord]
    #: this shard's term of the tier throughput sum
    #: (``metrics.throughput.mean() / metrics.timeline_window_s``).
    throughput_term: float
    fleet_stats: Dict[str, float]
    initial_groups: int
    events: int
    windows: List[WindowRecord]


def run_shard(task: ShardTask) -> ShardResult:
    """Replay one shard through its window schedule (worker entry point)."""
    loop = EventLoop()
    system = ClusterServingSystem(task.config, make_policy(task.policy_key), loop=loop)
    initial_groups = len(system.groups)
    system.monitor.start()
    system.fleet.start()
    windows = window_schedule(task.horizon, task.window_s, task.lookahead_s)
    dispatches = task.dispatches
    pointer = 0
    trace: List[WindowRecord] = []
    for start, end in windows:
        injected = 0
        first_t: Optional[float] = None
        last_t: Optional[float] = None
        while pointer < len(dispatches) and dispatches[pointer][0] <= end:
            time, request = dispatches[pointer]
            if time < loop.now:
                raise LookaheadViolation(
                    f"shard {task.shard_index}: planned dispatch at t={time} "
                    f"precedes the shard clock {loop.now} — the window "
                    f"schedule violated the conservative bound"
                )
            loop.schedule_at(
                time,
                lambda r=request: system.submit(r),
                priority=ARRIVAL_PRIORITY,
                name="mc-arrival",
            )
            if first_t is None:
                first_t = time
            last_t = time
            pointer += 1
            injected += 1
        executed = loop.run(until=end)
        trace.append(
            WindowRecord(
                start=start,
                end=end,
                injected=injected,
                executed=executed,
                first_t=first_t,
                last_t=last_t,
            )
        )
    system.monitor.stop()
    system.fleet.stop()
    system._finalize_unfinished()
    metrics = system.metrics
    return ShardResult(
        shard_index=task.shard_index,
        policy_name=system.policy.name,
        records=list(metrics.records),
        throughput_term=metrics.throughput.mean() / metrics.timeline_window_s,
        fleet_stats=system.fleet.stats(),
        initial_groups=initial_groups,
        events=loop.events_executed,
        windows=trace,
    )
