"""Conservative parallel shard execution for the multicluster tier.

The multicluster tier simulates N cluster shards that interact only
through a WAN fabric whose minimum propagation delay bounds how fast one
shard can affect another — the classic conservative-PDES lookahead.  For
configurations where the tier layer itself is state-independent (see
:func:`parallel_ineligibility`), this package splits one tier run into a
standalone **plan** phase (replay routing + WAN, record every shard
dispatch) and an embarrassingly parallel **replay** phase (each shard in
its own worker process, advancing through lookahead-bounded windows),
reassembling a result that is bit-identical to the serial oracle.

Entry point: set ``execution="parallel"`` on a
:class:`~repro.multicluster.config.MultiClusterConfig` (or pass
``--execution parallel`` to ``repro.multicluster``); ineligible
configurations transparently fall back to serial with the reason recorded
on the sweep's ``TierRun``.
"""

from repro.parallel.executor import (
    PARALLEL_SAFE_ROUTERS,
    ParallelOutcome,
    ParallelReport,
    ParallelTierView,
    parallel_ineligibility,
    run_parallel,
)
from repro.parallel.plan import DispatchPlanner, TierPlan, plan_tier
from repro.parallel.shard import (
    ARRIVAL_PRIORITY,
    ShardResult,
    ShardTask,
    WindowRecord,
    run_shard,
)
from repro.parallel.windows import (
    LookaheadViolation,
    tier_lookahead_s,
    window_schedule,
)

__all__ = [
    "ARRIVAL_PRIORITY",
    "DispatchPlanner",
    "LookaheadViolation",
    "PARALLEL_SAFE_ROUTERS",
    "ParallelOutcome",
    "ParallelReport",
    "ParallelTierView",
    "ShardResult",
    "ShardTask",
    "TierPlan",
    "WindowRecord",
    "parallel_ineligibility",
    "plan_tier",
    "run_parallel",
    "run_shard",
    "tier_lookahead_s",
    "window_schedule",
]
