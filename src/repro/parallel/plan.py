"""Tier plan phase: replay routing + WAN standalone, record dispatches.

The eligible parallel configurations (see
:func:`repro.parallel.executor.parallel_ineligibility`) have a key
property: nothing the tier layer does depends on live shard state.  The
global router is state-free (``locality_affinity`` hashes the session
key), the placement tick is inert (``fixed`` autoscaler), and there are
no faults.  The tier's half of the simulation — arrival routing plus the
WAN fabric's fluid-flow bandwidth sharing — can therefore be replayed
*standalone*, before any shard executes, and its output is exactly the
per-shard dispatch schedule: for every request, the simulation time at
which it is handed to its shard (arrival time when local, WAN delivery
time when the context crossed the fabric first).

:class:`DispatchPlanner` is a :class:`MultiClusterSystem` built in plan
mode (no serving systems behind the handles) whose ``_dispatch`` override
records ``(time, shard, request)`` instead of executing.  Because the
fabric's transfer completion times depend only on the set of concurrent
WAN transfers — all of which the plan itself creates — the recorded
dispatch times equal the serial execution's to the bit.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from repro.engine.request import Request
from repro.multicluster.system import ClusterHandle, MultiClusterSystem
from repro.serving.config import ServingConfig
from repro.workloads.trace import Workload


class DispatchPlanner(MultiClusterSystem):
    """A multicluster tier that records shard dispatches instead of serving."""

    def __init__(self, config: ServingConfig) -> None:
        super().__init__(config, None)
        #: ``(simulation time, shard index, request)`` in dispatch order.
        self.dispatches: List[Tuple[float, int, Request]] = []

    def _dispatch(self, handle: ClusterHandle, request: Request) -> None:
        self.dispatches.append((self.loop.now, handle.index, request))


@dataclasses.dataclass
class TierPlan:
    """The plan phase's output: who gets which request, and when."""

    #: the planner itself — its routing/fabric counters and in-flight /
    #: lost request books feed the assembled tier stats and records.
    planner: DispatchPlanner
    #: every materialised engine request, in workload (arrival) order.
    requests: List[Request]
    #: simulation horizon of the run (workload duration + drain).
    horizon: float
    #: per-shard ``(dispatch time, request)`` lists, dispatch-time order.
    per_shard: List[List[Tuple[float, Request]]]


def plan_tier(
    config: ServingConfig,
    workload: Workload,
    *,
    until: Optional[float] = None,
    drain: bool = True,
) -> TierPlan:
    """Replay the tier layer of ``(config, workload)`` and plan dispatches.

    The planner's loop carries only arrivals and WAN fabric events — the
    controller tick and shard monitors are never started, which is safe
    exactly because eligibility guarantees the tick is a no-op and the
    monitors are shard-local.  Within one shard the recorded dispatch
    order is identical to serial execution; times are bit-identical.
    """
    planner = DispatchPlanner(config)
    requests = workload.to_engine_requests()
    horizon = until
    if horizon is None:
        horizon = workload.duration + (config.drain_timeout_s if drain else 0.0)
    for request in requests:
        planner.submit_at(request, request.arrival_time)
    planner.loop.run(until=horizon)
    per_shard: List[List[Tuple[float, Request]]] = [
        [] for _ in range(planner.mc.num_clusters)
    ]
    for time, shard, request in planner.dispatches:
        per_shard[shard].append((time, request))
    return TierPlan(
        planner=planner, requests=requests, horizon=horizon, per_shard=per_shard
    )
