"""Unified parameter + KV-cache memory manager for one serving instance.

This is the "local instance memory management" of §4.1: all HBM of an
instance is managed as one physical pool; parameters of each resident layer
occupy pinned chunks, the remaining chunks are mapped at the tail of a
single contiguous KV-cache virtual range.  Dropping layers moves their
chunks into the KV range (growing the paged cache); restoring layers
requires the tail of the KV range to be free and moves chunks back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Set

from repro.memory.paged_kv import PagedKVCache
from repro.memory.physical import DEFAULT_CHUNK_BYTES, PhysicalChunk, PhysicalMemoryPool
from repro.memory.virtual_memory import VirtualAddressSpace, VirtualRange
from repro.models.memory import kv_bytes_per_token, param_bytes_per_layer
from repro.models.spec import ModelSpec


@dataclass
class DropResult:
    """Outcome of dropping a set of layers on one instance."""

    dropped_layers: List[int]
    freed_bytes: int
    new_kv_blocks: int
    remap_latency_s: float


@dataclass
class RestoreResult:
    """Outcome of restoring a set of layers on one instance."""

    restored_layers: List[int]
    reclaimed_bytes: int
    removed_kv_blocks: int
    transfer_bytes: int
    remap_latency_s: float


class UnifiedMemoryManager:
    """Holistic manager of parameter and KV memory on a serving instance.

    Args:
        spec: the model served by the instance.
        total_hbm_bytes: aggregate HBM across the instance's GPUs.
        block_size: KV-cache block size in tokens (the paper tunes 64).
        runtime_reserve_fraction: fraction of HBM reserved for activations,
            CUDA graphs and framework overheads and never handed to the KV
            cache (vLLM's ``gpu_memory_utilization`` complement).
        chunk_bytes: physical allocation granularity.
    """

    def __init__(
        self,
        spec: ModelSpec,
        total_hbm_bytes: int,
        *,
        block_size: int = 64,
        runtime_reserve_fraction: float = 0.10,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    ) -> None:
        if not 0 <= runtime_reserve_fraction < 1:
            raise ValueError("runtime_reserve_fraction must be in [0, 1)")
        self.spec = spec
        self.total_hbm_bytes = int(total_hbm_bytes)
        self.block_size = int(block_size)
        self.kv_token_bytes = kv_bytes_per_token(spec)
        self.layer_param_bytes = param_bytes_per_layer(spec)
        self.runtime_reserve_bytes = int(total_hbm_bytes * runtime_reserve_fraction)

        usable = self.total_hbm_bytes - self.runtime_reserve_bytes
        if usable <= 0:
            raise ValueError("no usable HBM after runtime reserve")
        self.pool = PhysicalMemoryPool(usable, chunk_bytes=chunk_bytes)
        self.vas = VirtualAddressSpace(chunk_bytes=chunk_bytes)

        # The KV virtual range is reserved large enough to cover the whole
        # GPU so it never needs to move (the point of the cuMemMap trick).
        self.kv_range: VirtualRange = self.vas.reserve(usable, name="kvcache")
        self._param_chunks: Dict[int, List[PhysicalChunk]] = {}
        self._resident_layers: Set[int] = set()
        self.kv_cache = PagedKVCache(num_blocks=0, block_size=self.block_size)
        self._kv_chunks: List[PhysicalChunk] = []

    # ------------------------------------------------------------------
    # Initialisation
    # ------------------------------------------------------------------
    def load_layers(self, layers: Iterable[int]) -> None:
        """Allocate parameter memory for ``layers`` (initial model load).

        Raises:
            MemoryError: if the parameters do not fit.
        """
        for layer in sorted(set(layers)):
            if layer in self._resident_layers:
                continue
            chunks = self.pool.allocate(self.layer_param_bytes)
            self._param_chunks[layer] = chunks
            self._resident_layers.add(layer)

    def provision_kv_cache(self) -> int:
        """Map all remaining free physical memory into the KV range.

        Returns the resulting number of KV blocks.  Called once after
        ``load_layers`` and again implicitly by drop/restore operations.
        """
        free_bytes = self.pool.free_bytes
        if free_bytes > 0:
            chunks = self.pool.allocate(free_bytes)
            self.vas.map_tail(self.kv_range, chunks)
            self._kv_chunks.extend(chunks)
        self._sync_kv_blocks()
        return self.kv_cache.num_blocks

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def resident_layers(self) -> Set[int]:
        return set(self._resident_layers)

    @property
    def num_resident_layers(self) -> int:
        return len(self._resident_layers)

    @property
    def param_bytes_resident(self) -> int:
        return sum(len(chunks) * self.pool.chunk_bytes for chunks in self._param_chunks.values())

    @property
    def kv_capacity_bytes(self) -> int:
        return len(self._kv_chunks) * self.pool.chunk_bytes

    @property
    def kv_capacity_tokens(self) -> int:
        return self.kv_cache.capacity_tokens

    @property
    def kv_used_bytes(self) -> int:
        return self.kv_cache.used_blocks * self.block_size * self.kv_token_bytes

    @property
    def kv_free_tokens(self) -> int:
        return self.kv_cache.free_blocks * self.block_size

    def kv_demand_bytes(self, num_tokens: int) -> int:
        """Bytes of KV cache needed for ``num_tokens`` tokens."""
        return num_tokens * self.kv_token_bytes

    # ------------------------------------------------------------------
    # Drop / restore
    # ------------------------------------------------------------------
    def drop_layers(self, layers: Iterable[int]) -> DropResult:
        """Free the parameters of ``layers`` and grow the KV cache over them.

        Mirrors §4.1: identify the physical memory of the dropped layers,
        then map it at the tail of the KV region.  The remap latency is the
        ~5 ms cuMemMap cost measured by the paper.
        """
        to_drop = sorted(set(layers) & self._resident_layers)
        freed_chunks: List[PhysicalChunk] = []
        for layer in to_drop:
            freed_chunks.extend(self._param_chunks.pop(layer))
            self._resident_layers.discard(layer)
        old_blocks = self.kv_cache.num_blocks
        if freed_chunks:
            self.vas.map_tail(self.kv_range, freed_chunks)
            self._kv_chunks.extend(freed_chunks)
            self._sync_kv_blocks()
        return DropResult(
            dropped_layers=to_drop,
            freed_bytes=len(freed_chunks) * self.pool.chunk_bytes,
            new_kv_blocks=self.kv_cache.num_blocks - old_blocks,
            remap_latency_s=self.vas.REMAP_LATENCY_S if freed_chunks else 0.0,
        )

    def can_restore_layers(self, layers: Iterable[int]) -> bool:
        """Is there enough *free* KV capacity to give back to parameters?"""
        missing = sorted(set(layers) - self._resident_layers)
        needed_bytes = len(missing) * self.layer_param_bytes
        needed_chunks = self.pool.chunks_needed(needed_bytes)
        free_kv_bytes = self.kv_cache.free_blocks * self.block_size * self.kv_token_bytes
        return needed_chunks * self.pool.chunk_bytes <= free_kv_bytes

    def restore_layers(self, layers: Iterable[int]) -> RestoreResult:
        """Reclaim KV memory and mark ``layers`` resident again.

        The caller is responsible for actually transferring the parameter
        bytes over the network (the returned ``transfer_bytes``); this method
        performs the memory movement only.

        Raises:
            MemoryError: if the KV cache does not have enough free blocks at
                its tail to shrink by the required amount.
        """
        missing = sorted(set(layers) - self._resident_layers)
        if not missing:
            return RestoreResult([], 0, 0, 0, 0.0)
        if not self.can_restore_layers(missing):
            raise MemoryError(
                "not enough free KV-cache memory to restore "
                f"{len(missing)} layers on this instance"
            )
        needed_bytes = len(missing) * self.layer_param_bytes
        needed_chunks = self.pool.chunks_needed(needed_bytes)

        # Shrink the KV cache first so its block count matches the memory
        # that will be unmapped.
        blocks_to_remove = self._blocks_for_chunks(needed_chunks)
        self.kv_cache.shrink(blocks_to_remove)
        reclaimed = self.vas.unmap_tail(self.kv_range, min(needed_chunks, len(self._kv_chunks)))
        reclaimed_ids = {chunk.chunk_id for chunk in reclaimed}
        self._kv_chunks = [c for c in self._kv_chunks if c.chunk_id not in reclaimed_ids]
        # Reuse the reclaimed chunks for parameters; allocate extra if the
        # rounding left us short (possible when chunk > block granularity).
        if len(reclaimed) < needed_chunks:
            self.pool.free(reclaimed)
            reclaimed = self.pool.allocate(needed_chunks * self.pool.chunk_bytes)

        per_layer = self.pool.chunks_needed(self.layer_param_bytes)
        cursor = 0
        for layer in missing:
            self._param_chunks[layer] = reclaimed[cursor : cursor + per_layer]
            cursor += per_layer
            self._resident_layers.add(layer)
        self._sync_kv_blocks()
        return RestoreResult(
            restored_layers=missing,
            reclaimed_bytes=needed_chunks * self.pool.chunk_bytes,
            removed_kv_blocks=blocks_to_remove,
            transfer_bytes=len(missing) * self.layer_param_bytes,
            remap_latency_s=self.vas.REMAP_LATENCY_S,
        )

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _block_bytes(self) -> int:
        return self.block_size * self.kv_token_bytes

    def _blocks_for_chunks(self, num_chunks: int) -> int:
        bytes_needed = num_chunks * self.pool.chunk_bytes
        return min(self.kv_cache.free_blocks, -(-bytes_needed // self._block_bytes()))

    def _sync_kv_blocks(self) -> None:
        """Align the paged cache's block count with the mapped KV bytes."""
        target_blocks = self.kv_capacity_bytes // self._block_bytes()
        if target_blocks > self.kv_cache.num_blocks:
            self.kv_cache.grow(target_blocks - self.kv_cache.num_blocks)
        elif target_blocks < self.kv_cache.num_blocks:
            shrink_by = self.kv_cache.num_blocks - target_blocks
            shrink_by = min(shrink_by, self.kv_cache.free_blocks)
            self.kv_cache.shrink(shrink_by)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"UnifiedMemoryManager(model={self.spec.name}, "
            f"layers={self.num_resident_layers}/{self.spec.num_layers}, "
            f"kv_blocks={self.kv_cache.num_blocks})"
        )
