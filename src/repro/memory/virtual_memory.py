"""Virtual address space management (``cuMemMap`` analog).

LLM attention kernels are written against a single contiguous virtual range
for the KV cache (Figure 7a).  The paper's trick is to keep that range fixed
and grow the amount of *physical* memory mapped behind its tail using the
CUDA virtual-memory APIs.  This module reproduces that mechanism: a
:class:`VirtualRange` is a reserved span of virtual addresses and a page
table mapping page-aligned offsets to :class:`PhysicalChunk` objects; only
the mapped prefix is usable.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.memory.physical import PhysicalChunk


@dataclass
class VirtualRange:
    """A reserved contiguous virtual address range.

    Mapping is only permitted at chunk-aligned offsets and must keep the
    mapped region a contiguous prefix of the range — exactly the discipline
    the KV-cache region uses (grow at the tail, shrink from the tail).
    """

    range_id: int
    size_bytes: int
    chunk_bytes: int
    name: str = ""
    page_table: Dict[int, PhysicalChunk] = field(default_factory=dict)

    @property
    def num_pages(self) -> int:
        return self.size_bytes // self.chunk_bytes

    @property
    def mapped_pages(self) -> int:
        return len(self.page_table)

    @property
    def mapped_bytes(self) -> int:
        return self.mapped_pages * self.chunk_bytes

    def is_mapped(self, page_index: int) -> bool:
        return page_index in self.page_table


class VirtualAddressSpace:
    """Per-instance virtual address space.

    Provides ``reserve`` (cuMemAddressReserve), ``map_tail`` /``unmap_tail``
    (cuMemMap / cuMemUnmap at the end of a range) and accounting queries.
    The prefix-contiguity restriction keeps the model faithful to how the
    paper extends the KV region while leaving kernels untouched.
    """

    #: Latency of one map/unmap batch; the paper measures ~5 ms on its
    #: platform and calls it negligible relative to inference time.
    REMAP_LATENCY_S = 0.005

    def __init__(self, chunk_bytes: int) -> None:
        if chunk_bytes <= 0:
            raise ValueError("chunk_bytes must be positive")
        self.chunk_bytes = int(chunk_bytes)
        self._counter = itertools.count()
        self._ranges: Dict[int, VirtualRange] = {}

    def reserve(self, size_bytes: int, name: str = "") -> VirtualRange:
        """Reserve a virtual range of at least ``size_bytes`` bytes."""
        if size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        pages = -(-int(size_bytes) // self.chunk_bytes)
        vrange = VirtualRange(
            range_id=next(self._counter),
            size_bytes=pages * self.chunk_bytes,
            chunk_bytes=self.chunk_bytes,
            name=name,
        )
        self._ranges[vrange.range_id] = vrange
        return vrange

    def release(self, vrange: VirtualRange) -> None:
        """Release a reserved range (all pages must be unmapped first)."""
        if vrange.mapped_pages:
            raise ValueError(f"range {vrange.range_id} still has mapped pages")
        self._ranges.pop(vrange.range_id, None)

    # ------------------------------------------------------------------
    # Mapping
    # ------------------------------------------------------------------
    def map_tail(self, vrange: VirtualRange, chunks: List[PhysicalChunk]) -> int:
        """Map ``chunks`` directly after the currently mapped prefix.

        Returns the new mapped size in bytes.

        Raises:
            ValueError: if the range does not have enough unmapped pages.
        """
        start = vrange.mapped_pages
        if start + len(chunks) > vrange.num_pages:
            raise ValueError(
                f"range {vrange.range_id} has {vrange.num_pages - start} unmapped "
                f"pages, cannot map {len(chunks)}"
            )
        for offset, chunk in enumerate(chunks):
            vrange.page_table[start + offset] = chunk
        return vrange.mapped_bytes

    def unmap_tail(self, vrange: VirtualRange, num_pages: int) -> List[PhysicalChunk]:
        """Unmap the last ``num_pages`` mapped pages and return their chunks."""
        if num_pages < 0:
            raise ValueError("num_pages must be >= 0")
        if num_pages > vrange.mapped_pages:
            raise ValueError(
                f"range {vrange.range_id} only has {vrange.mapped_pages} mapped pages"
            )
        chunks = []
        for _ in range(num_pages):
            page = vrange.mapped_pages - 1
            chunks.append(vrange.page_table.pop(page))
        return chunks

    def lookup(self, vrange: VirtualRange, byte_offset: int) -> Optional[PhysicalChunk]:
        """Translate a byte offset in the range to its backing chunk."""
        if byte_offset < 0 or byte_offset >= vrange.size_bytes:
            raise ValueError(f"offset {byte_offset} outside range of {vrange.size_bytes}")
        return vrange.page_table.get(byte_offset // self.chunk_bytes)

    def total_mapped_bytes(self) -> int:
        return sum(r.mapped_bytes for r in self._ranges.values())
