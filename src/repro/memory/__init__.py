"""GPU memory substrate.

Implements the two memory mechanisms the paper relies on:

* a CUDA-virtual-memory analog (:mod:`repro.memory.physical`,
  :mod:`repro.memory.virtual_memory`): physical chunks are allocated once
  (``cuMemCreate``) and mapped/unmapped into contiguous virtual ranges
  (``cuMemMap``/``cuMemUnmap``), so the KV-cache region can be extended over
  memory freed by dropped parameters without changing the "kernel-visible"
  layout (§4.1);
* a paged KV-cache block allocator (:mod:`repro.memory.paged_kv`) in the
  style of vLLM's PagedAttention block manager;
* a per-instance :class:`~repro.memory.unified.UnifiedMemoryManager` that
  holds both parameters and KV cache in one physical pool and implements
  ``drop_layers`` / ``restore_layers``.
"""

from repro.memory.physical import PhysicalChunk, PhysicalMemoryPool
from repro.memory.virtual_memory import VirtualAddressSpace, VirtualRange
from repro.memory.paged_kv import BlockTable, PagedKVCache
from repro.memory.unified import UnifiedMemoryManager

__all__ = [
    "PhysicalChunk",
    "PhysicalMemoryPool",
    "VirtualAddressSpace",
    "VirtualRange",
    "BlockTable",
    "PagedKVCache",
    "UnifiedMemoryManager",
]
