"""Physical GPU memory pool (``cuMemCreate`` analog).

The pool hands out fixed-size physical chunks.  Chunks are the unit the
local memory manager moves between the parameter region and the KV-cache
region when executing a drop or restore plan.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, NamedTuple

#: Default physical allocation granularity, matching CUDA VMM's 2 MiB.
DEFAULT_CHUNK_BYTES = 2 * 1024 * 1024


class PhysicalChunk(NamedTuple):
    """One physically-backed allocation of ``size_bytes`` bytes.

    A ``NamedTuple`` rather than a frozen dataclass: loading a model maps
    tens of thousands of chunks, and the tuple constructor is an order of
    magnitude cheaper than frozen-dataclass ``__init__``'s per-field
    ``object.__setattr__`` while staying immutable and hashable.
    """

    chunk_id: int
    size_bytes: int


class PhysicalMemoryPool:
    """Fixed-capacity pool of physical chunks for one serving instance.

    The pool intentionally refuses to over-allocate: requesting more memory
    than is free raises :class:`MemoryError`, which is what forces the
    serving engine to queue or preempt requests — the phenomenon the paper
    studies.
    """

    def __init__(self, total_bytes: int, chunk_bytes: int = DEFAULT_CHUNK_BYTES) -> None:
        if total_bytes <= 0:
            raise ValueError(f"total_bytes must be positive, got {total_bytes}")
        if chunk_bytes <= 0:
            raise ValueError(f"chunk_bytes must be positive, got {chunk_bytes}")
        self.chunk_bytes = int(chunk_bytes)
        self.total_chunks = int(total_bytes // chunk_bytes)
        if self.total_chunks == 0:
            raise ValueError("total_bytes smaller than one chunk")
        self._counter = itertools.count()
        self._allocated: Dict[int, PhysicalChunk] = {}

    # ------------------------------------------------------------------
    # Capacity queries
    # ------------------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        return self.total_chunks * self.chunk_bytes

    @property
    def allocated_chunks(self) -> int:
        return len(self._allocated)

    @property
    def allocated_bytes(self) -> int:
        return self.allocated_chunks * self.chunk_bytes

    @property
    def free_chunks(self) -> int:
        return self.total_chunks - self.allocated_chunks

    @property
    def free_bytes(self) -> int:
        return self.free_chunks * self.chunk_bytes

    def chunks_needed(self, size_bytes: int) -> int:
        """Number of chunks needed to back ``size_bytes`` bytes."""
        if size_bytes < 0:
            raise ValueError(f"size_bytes must be >= 0, got {size_bytes}")
        return -(-int(size_bytes) // self.chunk_bytes)

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def allocate(self, size_bytes: int) -> List[PhysicalChunk]:
        """Allocate enough chunks to back ``size_bytes`` bytes.

        Raises:
            MemoryError: when the pool does not have enough free chunks.
        """
        needed = self.chunks_needed(size_bytes)
        if needed > self.free_chunks:
            raise MemoryError(
                f"out of GPU memory: need {needed} chunks "
                f"({size_bytes} bytes), only {self.free_chunks} free"
            )
        # Bulk construction: model loads and drop/restore plans map tens of
        # thousands of chunks in one call.
        chunk_bytes = self.chunk_bytes
        counter = self._counter
        chunks = [
            PhysicalChunk(next(counter), chunk_bytes) for _ in range(needed)
        ]
        self._allocated.update((chunk[0], chunk) for chunk in chunks)
        return chunks

    def free(self, chunks: List[PhysicalChunk]) -> None:
        """Return chunks to the pool.

        Raises:
            KeyError: if any chunk was not allocated from this pool (or was
                already freed) — double frees are bugs we want loud.
        """
        for chunk in chunks:
            if chunk.chunk_id not in self._allocated:
                raise KeyError(f"chunk {chunk.chunk_id} is not allocated from this pool")
        for chunk in chunks:
            del self._allocated[chunk.chunk_id]

    def is_allocated(self, chunk: PhysicalChunk) -> bool:
        return chunk.chunk_id in self._allocated

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PhysicalMemoryPool(total={self.total_bytes}, "
            f"allocated={self.allocated_bytes}, chunk={self.chunk_bytes})"
        )
