"""Paged KV-cache block manager (vLLM PagedAttention-style).

The KV cache of every request is stored in fixed-size blocks of
``block_size`` tokens.  The manager tracks a per-request block table, the
number of free blocks, and supports growing / shrinking the total number of
blocks, which is how the unified memory manager exposes memory freed by
dropped parameters to the cache (§4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(slots=True)
class BlockTable:
    """Block bookkeeping for a single request."""

    request_id: int
    num_blocks: int = 0
    num_tokens: int = 0

    def tokens_capacity(self, block_size: int) -> int:
        return self.num_blocks * block_size


class PagedKVCache:
    """Block-granular KV cache allocator for one serving instance / group.

    All sizes are in *tokens* and *blocks*; byte conversions live in the
    unified memory manager, which owns the translation between mapped
    physical memory and block count.
    """

    def __init__(self, num_blocks: int, block_size: int) -> None:
        if num_blocks < 0:
            raise ValueError("num_blocks must be >= 0")
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self.block_size = int(block_size)
        self._num_blocks = int(num_blocks)
        self._tables: Dict[int, BlockTable] = {}
        self._used_blocks = 0
        # Running totals so capacity queries on the scheduling hot path are
        # O(1) instead of per-request sums.
        self._used_tokens = 0

    # ------------------------------------------------------------------
    # Capacity
    # ------------------------------------------------------------------
    @property
    def num_blocks(self) -> int:
        return self._num_blocks

    @property
    def used_blocks(self) -> int:
        return self._used_blocks

    @property
    def free_blocks(self) -> int:
        return self._num_blocks - self._used_blocks

    @property
    def capacity_tokens(self) -> int:
        return self._num_blocks * self.block_size

    @property
    def used_tokens(self) -> int:
        return self._used_tokens

    @property
    def utilization(self) -> float:
        """Fraction of blocks in use (1.0 == full)."""
        if self._num_blocks == 0:
            return 1.0
        return self._used_blocks / self._num_blocks

    def blocks_for_tokens(self, num_tokens: int) -> int:
        """Blocks needed to hold ``num_tokens`` tokens."""
        if num_tokens < 0:
            raise ValueError("num_tokens must be >= 0")
        return -(-num_tokens // self.block_size)

    def grow(self, extra_blocks: int) -> None:
        """Add ``extra_blocks`` blocks of capacity (parameter drop)."""
        if extra_blocks < 0:
            raise ValueError("extra_blocks must be >= 0")
        self._num_blocks += extra_blocks

    def shrink(self, blocks: int) -> None:
        """Remove ``blocks`` blocks of capacity (parameter restore).

        Raises:
            MemoryError: if that many blocks are not currently free.
        """
        if blocks < 0:
            raise ValueError("blocks must be >= 0")
        if blocks > self.free_blocks:
            raise MemoryError(
                f"cannot shrink by {blocks} blocks: only {self.free_blocks} free"
            )
        self._num_blocks -= blocks

    # ------------------------------------------------------------------
    # Per-request allocation
    # ------------------------------------------------------------------
    def has_request(self, request_id: int) -> bool:
        return request_id in self._tables

    def table(self, request_id: int) -> BlockTable:
        return self._tables[request_id]

    def tokens_of(self, request_id: int) -> int:
        table = self._tables.get(request_id)
        return 0 if table is None else table.num_tokens

    def can_allocate(self, request_id: int, new_tokens: int) -> bool:
        """Would appending ``new_tokens`` tokens to the request succeed?"""
        return self._extra_blocks_needed(request_id, new_tokens) <= self.free_blocks

    def try_allocate(self, request_id: int, new_tokens: int) -> Optional[int]:
        """Allocate if possible; returns blocks allocated, or None if full.

        Fused check-then-commit used by the per-decode-token scheduling path,
        where calling :meth:`can_allocate` followed by :meth:`allocate` would
        compute the block requirement twice.
        """
        if new_tokens < 0:
            raise ValueError("new_tokens must be >= 0")
        extra = self._extra_blocks_needed(request_id, new_tokens)
        if extra > self.free_blocks:
            return None
        self._commit_allocation(request_id, extra, new_tokens)
        return extra

    def append_token(self, request_id: int) -> Optional[int]:
        """Fast path for ``try_allocate(request_id, 1)``.

        One decode step appends exactly one token, and almost always into a
        block that still has slack — the continuous-batching scheduler calls
        this once per running request per iteration, making it the hottest
        allocator entry point by two orders of magnitude.  Returns the number
        of new blocks (0 or 1), or None when the cache is full, exactly as
        ``try_allocate`` would.
        """
        table = self._tables.get(request_id)
        if table is None:
            if self._used_blocks >= self._num_blocks:
                return None
            table = BlockTable(request_id=request_id, num_blocks=1, num_tokens=1)
            self._tables[request_id] = table
            self._used_blocks += 1
            self._used_tokens += 1
            return 1
        if table.num_tokens < table.num_blocks * self.block_size:
            table.num_tokens += 1
            self._used_tokens += 1
            return 0
        if self._used_blocks >= self._num_blocks:
            return None
        table.num_blocks += 1
        table.num_tokens += 1
        self._used_blocks += 1
        self._used_tokens += 1
        return 1

    def allocate(self, request_id: int, new_tokens: int) -> int:
        """Append ``new_tokens`` tokens to the request's KV cache.

        Returns the number of new blocks allocated.

        Raises:
            MemoryError: when there are not enough free blocks.
        """
        if new_tokens < 0:
            raise ValueError("new_tokens must be >= 0")
        extra = self._extra_blocks_needed(request_id, new_tokens)
        if extra > self.free_blocks:
            raise MemoryError(
                f"KV cache full: request {request_id} needs {extra} blocks, "
                f"{self.free_blocks} free"
            )
        self._commit_allocation(request_id, extra, new_tokens)
        return extra

    def _commit_allocation(self, request_id: int, extra_blocks: int, new_tokens: int) -> None:
        """Apply an already-validated allocation to the bookkeeping."""
        table = self._tables.setdefault(request_id, BlockTable(request_id=request_id))
        table.num_blocks += extra_blocks
        table.num_tokens += new_tokens
        self._used_blocks += extra_blocks
        self._used_tokens += new_tokens

    def free(self, request_id: int) -> int:
        """Release all blocks of a request; returns the blocks freed."""
        table = self._tables.pop(request_id, None)
        if table is None:
            return 0
        self._used_blocks -= table.num_blocks
        self._used_tokens -= table.num_tokens
        return table.num_blocks

    def free_partial(self, request_id: int, keep_tokens: int) -> int:
        """Shrink a request's cache to ``keep_tokens`` tokens (tail drop).

        Returns the number of blocks freed.  Used by migration to account
        for partially-moved requests.
        """
        table = self._tables.get(request_id)
        if table is None:
            return 0
        if keep_tokens < 0:
            raise ValueError("keep_tokens must be >= 0")
        keep_tokens = min(keep_tokens, table.num_tokens)
        keep_blocks = self.blocks_for_tokens(keep_tokens)
        freed = table.num_blocks - keep_blocks
        self._used_tokens -= table.num_tokens - keep_tokens
        table.num_blocks = keep_blocks
        table.num_tokens = keep_tokens
        self._used_blocks -= freed
        if table.num_tokens == 0:
            del self._tables[request_id]
        return freed

    def request_ids(self) -> List[int]:
        return list(self._tables.keys())

    def fragmentation_tokens(self) -> int:
        """Tokens of capacity lost to partially-filled tail blocks."""
        return self._used_blocks * self.block_size - self._used_tokens

    def _extra_blocks_needed(self, request_id: int, new_tokens: int) -> int:
        table = self._tables.get(request_id)
        current_tokens = 0 if table is None else table.num_tokens
        current_blocks = 0 if table is None else table.num_blocks
        return self.blocks_for_tokens(current_tokens + new_tokens) - current_blocks

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PagedKVCache(blocks={self._num_blocks}, used={self._used_blocks}, "
            f"block_size={self.block_size})"
        )
