"""Serving instance: the GPUs holding (at most) one full copy of the model.

An instance is the paper's unit of replication: "the minimal set of GPUs
that have a single copy of the model parameters".  It owns a
:class:`~repro.memory.unified.UnifiedMemoryManager` spanning all its GPUs'
HBM and a :class:`~repro.engine.latency_model.LatencyModel` describing its
aggregate compute capability (tensor parallelism inside the instance).
Execution happens at the :class:`~repro.engine.group.ServingGroup` level —
a group is one or more instances cooperating via pipeline parallelism.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.cluster.cluster import Cluster
from repro.cluster.gpu import GPU
from repro.engine.latency_model import LatencyModel, LatencyModelConfig
from repro.memory.unified import UnifiedMemoryManager
from repro.models.spec import ModelSpec
from repro.simulation.rng import SeededRNG


class ServingInstance:
    """One model replica's worth of GPUs plus its local memory manager."""

    def __init__(
        self,
        instance_id: int,
        model: ModelSpec,
        gpus: List[GPU],
        *,
        block_size: int = 64,
        runtime_reserve_fraction: float = 0.10,
        latency_config: Optional[LatencyModelConfig] = None,
        rng: Optional[SeededRNG] = None,
    ) -> None:
        if not gpus:
            raise ValueError("an instance needs at least one GPU")
        self.instance_id = instance_id
        self.model = model
        self.gpus = list(gpus)
        self.server_id = gpus[0].server_id
        self.tp_degree = len(gpus)
        total_hbm = sum(gpu.hbm_bytes for gpu in gpus)
        self.memory = UnifiedMemoryManager(
            model,
            total_hbm,
            block_size=block_size,
            runtime_reserve_fraction=runtime_reserve_fraction,
        )
        self.latency = LatencyModel(
            gpus[0].spec,
            model,
            tp_degree=self.tp_degree,
            config=latency_config,
            rng=rng,
        )
        #: set by fault-injection tests / the fault-tolerance module.
        self.failed: bool = False

    # ------------------------------------------------------------------
    # Model loading
    # ------------------------------------------------------------------
    def load_full_model(self) -> None:
        """Load every layer and give the rest of HBM to the KV cache."""
        self.load_layers(range(self.model.num_layers))

    def load_layers(self, layers: Iterable[int]) -> None:
        """Load only ``layers`` (static pipeline-parallel deployments)."""
        self.memory.load_layers(layers)
        self.memory.provision_kv_cache()

    # ------------------------------------------------------------------
    # Convenience passthroughs
    # ------------------------------------------------------------------
    @property
    def resident_layers(self) -> List[int]:
        return sorted(self.memory.resident_layers)

    @property
    def num_resident_layers(self) -> int:
        return self.memory.num_resident_layers

    @property
    def kv_capacity_bytes(self) -> int:
        return self.memory.kv_capacity_bytes

    @property
    def kv_capacity_tokens(self) -> int:
        return self.memory.kv_capacity_tokens

    @property
    def param_bytes_resident(self) -> int:
        return self.memory.param_bytes_resident

    @property
    def total_hbm_bytes(self) -> int:
        return self.memory.total_hbm_bytes

    def nic_node(self) -> str:
        """Fabric endpoint of this instance's RDMA NIC."""
        return Cluster.nic_node(self.server_id)

    def host_node(self) -> str:
        """Fabric endpoint of this instance's host DRAM (PCIe)."""
        return Cluster.host_node(self.server_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ServingInstance(id={self.instance_id}, model={self.model.name}, "
            f"gpus={len(self.gpus)}, layers={self.num_resident_layers}/"
            f"{self.model.num_layers})"
        )
