"""Roofline execution-time model ("the GPU" of the simulation).

This model plays the role the real GPU kernels play in the paper's testbed:
given a batch of chunks (prefill pieces and decode steps) and the number of
resident layers, it returns how long the iteration takes.  It is the ground
truth against which the *scheduling* cost model of §4.3 (``repro.core.
cost_model``) is fitted and evaluated (Figure 15).

The model is a classic roofline:

* compute time  = (linear FLOPs + attention FLOPs) / effective FLOP/s
* memory time   = (weight bytes + KV-cache bytes read) / effective bandwidth
* iteration time = max(compute, memory) + TP all-reduce + fixed overheads

Weight bytes are counted once per microbatch (requests in a batch share the
parameter loads — the effect the ``-(|b_k|-1)γ`` term of Eq. 3 models).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.cluster.gpu import GPUSpec
from repro.engine.batch import ScheduledChunk
from repro.engine.tensor_parallel import tp_layer_comm_time
from repro.models.memory import kv_bytes_per_token_per_layer, param_bytes_per_layer
from repro.models.spec import ModelSpec
from repro.simulation.rng import SeededRNG


@dataclass(frozen=True)
class LatencyModelConfig:
    """Tunable constants of the roofline model.

    The defaults are calibrated so that a Qwen-2.5-14B on an A800 matches the
    magnitudes the paper reports (§5.3): ~220 ms for a typical LongBench
    prefill and ~60 ms decode iterations at large batch sizes.
    """

    compute_efficiency: float = 0.85
    memory_efficiency: float = 0.80
    iteration_overhead_s: float = 0.004
    per_chunk_overhead_s: float = 0.00005
    per_layer_overhead_s: float = 1.5e-5
    jitter_fraction: float = 0.0


class LatencyModel:
    """Analytical execution-time model for one serving instance's GPUs."""

    #: batch_time memo entries kept before the cache is dropped wholesale
    #: (decode batches mutate their shape every iteration, so the cache must
    #: not grow without bound over long simulations).
    _CACHE_LIMIT = 65536

    def __init__(
        self,
        gpu: GPUSpec,
        model: ModelSpec,
        *,
        tp_degree: int = 1,
        config: Optional[LatencyModelConfig] = None,
        rng: Optional[SeededRNG] = None,
    ) -> None:
        if tp_degree < 1:
            raise ValueError("tp_degree must be >= 1")
        self.gpu = gpu
        self.model = model
        self.tp_degree = tp_degree
        self.config = config if config is not None else LatencyModelConfig()
        self._rng = rng
        self._layer_param_bytes = param_bytes_per_layer(model)
        self._kv_bytes_per_token_layer = kv_bytes_per_token_per_layer(model)
        self._flops_per_token_layer = model.flops_per_token_per_layer()
        #: memo of batch_time results keyed by the batch's shape signature.
        #: Iteration times depend only on chunk shapes, so identical batches
        #: (common in steady-state decode and in profiling sweeps) are
        #: computed once.  Skipped when jitter makes results stochastic.
        self._batch_time_cache: dict = {}

    # ------------------------------------------------------------------
    # Effective hardware rates (aggregated over the TP group)
    # ------------------------------------------------------------------
    @property
    def effective_flops(self) -> float:
        return self.gpu.flops * self.config.compute_efficiency * self.tp_degree

    @property
    def effective_bandwidth(self) -> float:
        return self.gpu.hbm_bandwidth * self.config.memory_efficiency * self.tp_degree

    # ------------------------------------------------------------------
    # Per-chunk cost pieces
    # ------------------------------------------------------------------
    def chunk_compute_flops(self, chunk: ScheduledChunk, num_layers: int) -> float:
        """FLOPs to execute ``chunk`` through ``num_layers`` layers."""
        linear = chunk.new_tokens * self._flops_per_token_layer * num_layers
        # Attention: each new token attends over the prefix and (causally)
        # over half the chunk itself on average; score + value multiply.
        attended = chunk.prefix_tokens + (chunk.new_tokens + 1) / 2.0
        attn = 4.0 * chunk.new_tokens * attended * self.model.q_dim * num_layers
        return linear + attn

    def chunk_kv_read_bytes(self, chunk: ScheduledChunk, num_layers: int) -> float:
        """KV-cache bytes attention reads for ``chunk``."""
        context = chunk.prefix_tokens + chunk.new_tokens
        return context * self._kv_bytes_per_token_layer * num_layers

    def chunk_kv_write_bytes(self, chunk: ScheduledChunk, num_layers: int) -> float:
        """KV-cache bytes written for the chunk's new tokens."""
        return chunk.new_tokens * self._kv_bytes_per_token_layer * num_layers

    # ------------------------------------------------------------------
    # Batch execution time
    # ------------------------------------------------------------------
    def batch_time(
        self,
        chunks: Iterable[ScheduledChunk],
        num_layers: Optional[int] = None,
        *,
        include_lm_head: bool = True,
    ) -> float:
        """Execution time of one microbatch over ``num_layers`` layers.

        ``num_layers`` defaults to the full model (non-pipelined execution);
        pipeline stages pass their own layer count.
        """
        chunk_list = chunks if type(chunks) is list else list(chunks)
        if num_layers is None:
            num_layers = self.model.num_layers
        if num_layers <= 0:
            raise ValueError("num_layers must be positive")
        if not chunk_list:
            return 0.0

        # Decode prefixes grow every iteration, so a batch that leads with a
        # decode chunk (form_batch schedules decodes first) essentially never
        # repeats its shape — for those, building and probing the memo key is
        # pure overhead.  Pure-prefill batches (admission bursts, profiling
        # sweeps, cost-model calibration) do repeat and keep the memo.
        cache_key = None
        if (self._rng is None or self.config.jitter_fraction <= 0) and not chunk_list[0].is_decode:
            cache_key = (
                num_layers,
                include_lm_head,
                tuple((c.prefix_tokens, c.new_tokens) for c in chunk_list),
            )
            cached = self._batch_time_cache.get(cache_key)
            if cached is not None:
                return cached

        # Aggregate the per-chunk roofline terms in one pass with hoisted
        # attribute lookups; this loop runs once per scheduled chunk for the
        # whole simulation, so helper-call overhead is measurable.  The
        # expressions mirror chunk_compute_flops / chunk_kv_read_bytes /
        # chunk_kv_write_bytes term for term so results are bit-identical.
        flops_per_token_layer = self._flops_per_token_layer
        kv_bytes_token_layer = self._kv_bytes_per_token_layer
        q_dim = self.model.q_dim
        total_flops = 0.0
        total_bytes = 0.0
        total_tokens = 0
        for chunk in chunk_list:
            new_tokens = chunk.new_tokens
            prefix = chunk.prefix_tokens
            linear = new_tokens * flops_per_token_layer * num_layers
            attended = prefix + (new_tokens + 1) / 2.0
            attn = 4.0 * new_tokens * attended * q_dim * num_layers
            total_flops += linear + attn
            total_bytes += (prefix + new_tokens) * kv_bytes_token_layer * num_layers
            total_bytes += new_tokens * kv_bytes_token_layer * num_layers
            total_tokens += new_tokens

        # Weights are streamed once per microbatch, shared by all chunks.
        total_bytes += self._layer_param_bytes * num_layers
        # Activations read/written per token per layer (two residual streams).
        total_bytes += (
            4.0 * total_tokens * self.model.hidden_size * self.model.dtype_bytes * num_layers
        )
        if include_lm_head:
            total_flops += 2.0 * total_tokens * self.model.vocab_size * self.model.hidden_size

        compute_time = total_flops / self.effective_flops
        memory_time = total_bytes / self.effective_bandwidth
        comm_time = tp_layer_comm_time(
            total_tokens,
            self.model.hidden_size,
            self.model.dtype_bytes,
            self.gpu.nvlink_bandwidth,
            self.tp_degree,
        ) * num_layers

        # Fixed overheads (scheduling, sampling, kernel launches) scale with
        # the fraction of the model executed, so a pipeline stage holding
        # half the layers pays roughly half the per-iteration overhead.
        layer_fraction = num_layers / self.model.num_layers
        overhead = (
            self.config.iteration_overhead_s * layer_fraction
            + self.config.per_chunk_overhead_s * len(chunk_list) * layer_fraction
            + self.config.per_layer_overhead_s * num_layers
        )
        duration = max(compute_time, memory_time) + comm_time + overhead
        if cache_key is not None:
            if len(self._batch_time_cache) >= self._CACHE_LIMIT:
                self._batch_time_cache.clear()
            self._batch_time_cache[cache_key] = duration
        return self._jitter(duration)

    def batch_time_pair(
        self,
        chunks: Iterable[ScheduledChunk],
        num_layers: Optional[int] = None,
    ) -> "tuple[float, float, int]":
        """``(batch_time(lm_head=False), batch_time(lm_head=True), tokens)``.

        Pipeline stages holding the same layer count differ only by the
        lm-head flag, and the lm-head FLOPs are added *after* the per-chunk
        aggregation loop — so both durations come from one pass over the
        chunks with bit-identical arithmetic to two separate calls.  The
        batch's total new-token count falls out of the same pass and is
        returned so callers sizing activation transfers do not re-sum.
        Callers must not use this when jitter is active: it draws the two
        jitter samples in a fixed order regardless of how many stages
        consume them.
        """
        chunk_list = chunks if type(chunks) is list else list(chunks)
        if num_layers is None:
            num_layers = self.model.num_layers
        if num_layers <= 0:
            raise ValueError("num_layers must be positive")
        if not chunk_list:
            return 0.0, 0.0, 0

        flops_per_token_layer = self._flops_per_token_layer
        kv_bytes_token_layer = self._kv_bytes_per_token_layer
        q_dim = self.model.q_dim
        total_flops = 0.0
        total_bytes = 0.0
        total_tokens = 0
        for chunk in chunk_list:
            new_tokens = chunk.new_tokens
            prefix = chunk.prefix_tokens
            linear = new_tokens * flops_per_token_layer * num_layers
            attended = prefix + (new_tokens + 1) / 2.0
            attn = 4.0 * new_tokens * attended * q_dim * num_layers
            total_flops += linear + attn
            total_bytes += (prefix + new_tokens) * kv_bytes_token_layer * num_layers
            total_bytes += new_tokens * kv_bytes_token_layer * num_layers
            total_tokens += new_tokens

        total_bytes += self._layer_param_bytes * num_layers
        total_bytes += (
            4.0 * total_tokens * self.model.hidden_size * self.model.dtype_bytes * num_layers
        )
        lm_head_flops = total_flops + 2.0 * total_tokens * self.model.vocab_size * self.model.hidden_size

        effective_flops = self.effective_flops
        memory_time = total_bytes / self.effective_bandwidth
        comm_time = tp_layer_comm_time(
            total_tokens,
            self.model.hidden_size,
            self.model.dtype_bytes,
            self.gpu.nvlink_bandwidth,
            self.tp_degree,
        ) * num_layers
        layer_fraction = num_layers / self.model.num_layers
        overhead = (
            self.config.iteration_overhead_s * layer_fraction
            + self.config.per_chunk_overhead_s * len(chunk_list) * layer_fraction
            + self.config.per_layer_overhead_s * num_layers
        )
        without_head = max(total_flops / effective_flops, memory_time) + comm_time + overhead
        with_head = max(lm_head_flops / effective_flops, memory_time) + comm_time + overhead
        return self._jitter(without_head), self._jitter(with_head), total_tokens

    def prefill_time(self, prompt_tokens: int, *, prefix_tokens: int = 0) -> float:
        """Convenience: full-model time of a single prefill chunk."""
        from repro.engine.request import Request  # local import to avoid cycle

        request = Request(arrival_time=0.0, prompt_tokens=max(1, prompt_tokens + prefix_tokens), max_output_tokens=1)
        chunk = ScheduledChunk(
            request=request, prefix_tokens=prefix_tokens, new_tokens=prompt_tokens
        )
        return self.batch_time([chunk])

    def decode_time(self, context_tokens: int, batch_size: int = 1) -> float:
        """Convenience: full-model time of a decode iteration."""
        from repro.engine.request import Request  # local import to avoid cycle

        chunks = []
        for _ in range(batch_size):
            request = Request(
                arrival_time=0.0, prompt_tokens=max(1, context_tokens), max_output_tokens=1
            )
            chunks.append(
                ScheduledChunk(
                    request=request,
                    prefix_tokens=context_tokens,
                    new_tokens=1,
                    is_decode=True,
                )
            )
        return self.batch_time(chunks)

    def activation_transfer_bytes(self, total_tokens: int) -> int:
        """Bytes of activations forwarded between two pipeline stages."""
        return total_tokens * self.model.activation_bytes_per_token()

    def _jitter(self, duration: float) -> float:
        if self._rng is None or self.config.jitter_fraction <= 0:
            return duration
        factor = 1.0 + self.config.jitter_fraction * float(self._rng.normal(0.0, 1.0))
        return duration * max(0.5, factor)
