"""Pipeline-parallel execution model.

When parameters are dropped, requests execute across a group of instances
that each hold a contiguous slice of layers.  An iteration's work is divided
into microbatches which flow through the stages; stage ``s`` can only start
microbatch ``m`` after stage ``s-1`` finished it and after the stage's own
previous microbatch completed.  Unequal microbatch times leave stages idle —
the pipeline *bubbles* of Figure 8 that the lookahead formulation (§4.3)
attacks.

This module computes the makespan and bubble statistics of a schedule given
the per-stage execution time of every microbatch and the inter-stage
activation-transfer time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence


@dataclass
class PipelineStats:
    """Result of simulating one pipelined iteration."""

    makespan: float
    stage_busy: List[float] = field(default_factory=list)
    num_stages: int = 0
    num_microbatches: int = 0

    @property
    def total_busy(self) -> float:
        return sum(self.stage_busy)

    @property
    def bubble_fraction(self) -> float:
        """Fraction of stage-time spent idle (1 - GPU utilisation)."""
        if self.makespan <= 0 or self.num_stages == 0:
            return 0.0
        capacity = self.makespan * self.num_stages
        return max(0.0, 1.0 - self.total_busy / capacity)


class PipelineExecution:
    """Static helpers to evaluate a pipelined schedule."""

    @staticmethod
    def makespan(
        stage_times: Sequence[Sequence[float]],
        *,
        comm_time: float = 0.0,
        comm_times: Sequence[Sequence[float]] = (),
    ) -> PipelineStats:
        """Compute the makespan of a microbatch schedule.

        Args:
            stage_times: ``stage_times[m][s]`` is the execution time of
                microbatch ``m`` on stage ``s``.  All microbatches must have
                the same number of stages.
            comm_time: constant activation-transfer time between consecutive
                stages (used when ``comm_times`` is not given).
            comm_times: optional ``comm_times[m][s]`` giving the transfer
                time of microbatch ``m`` from stage ``s`` to ``s+1``.

        Returns:
            :class:`PipelineStats` with the makespan, per-stage busy time and
            bubble fraction.
        """
        num_microbatches = len(stage_times)
        if num_microbatches == 0:
            return PipelineStats(makespan=0.0, stage_busy=[], num_stages=0, num_microbatches=0)
        num_stages = len(stage_times[0])
        for row in stage_times:
            if len(row) != num_stages:
                raise ValueError("all microbatches must span the same number of stages")

        def comm(m: int, s: int) -> float:
            if comm_times:
                return comm_times[m][s]
            return comm_time

        finish = [[0.0] * num_stages for _ in range(num_microbatches)]
        for m in range(num_microbatches):
            for s in range(num_stages):
                prev_same_stage = finish[m - 1][s] if m > 0 else 0.0
                prev_stage = finish[m][s - 1] + comm(m, s - 1) if s > 0 else 0.0
                start = max(prev_same_stage, prev_stage)
                finish[m][s] = start + stage_times[m][s]

        makespan = max(finish[m][num_stages - 1] for m in range(num_microbatches))
        stage_busy = [
            sum(stage_times[m][s] for m in range(num_microbatches)) for s in range(num_stages)
        ]
        return PipelineStats(
            makespan=makespan,
            stage_busy=stage_busy,
            num_stages=num_stages,
            num_microbatches=num_microbatches,
        )

    @staticmethod
    def balanced_layer_partition(num_layers: int, num_stages: int) -> List[int]:
        """Split ``num_layers`` layers into ``num_stages`` contiguous slices.

        Returns the number of layers of each stage; earlier stages get the
        remainder (matching how the paper splits, e.g. 0–4 / 5–7).
        """
        if num_stages <= 0:
            raise ValueError("num_stages must be positive")
        if num_layers < num_stages:
            raise ValueError(
                f"cannot split {num_layers} layers into {num_stages} stages"
            )
        base = num_layers // num_stages
        remainder = num_layers % num_stages
        return [base + (1 if s < remainder else 0) for s in range(num_stages)]

    @staticmethod
    def layer_ranges(num_layers: int, num_stages: int) -> List[range]:
        """Contiguous layer-id ranges for each stage."""
        counts = PipelineExecution.balanced_layer_partition(num_layers, num_stages)
        ranges: List[range] = []
        start = 0
        for count in counts:
            ranges.append(range(start, start + count))
            start += count
        return ranges
