"""Request model: one LLM inference request through its lifetime.

A request arrives with a prompt of ``prompt_tokens`` tokens and generates up
to ``max_output_tokens`` output tokens.  The engine moves it through states:

``QUEUED`` -> ``RUNNING`` (prefill, possibly chunked, then decode)
-> ``FINISHED``, with detours through ``PREEMPTED`` (KV dropped, must
re-prefill), ``SWAPPED`` (KV in host DRAM), ``MIGRATING`` (KV moving to
another instance) or ``EXCHANGING`` (KV being redistributed after a
parameter drop).

The request also records every token emission time so TTFT / TPOT metrics
can be computed exactly as the paper defines them.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import List, Optional

_request_counter = itertools.count()


class RequestState(enum.Enum):
    """Lifecycle states of a request inside the serving system."""

    QUEUED = "queued"
    RUNNING = "running"
    PREEMPTED = "preempted"
    SWAPPED = "swapped"
    MIGRATING = "migrating"
    EXCHANGING = "exchanging"
    FINISHED = "finished"


@dataclass(eq=False, slots=True)
class Request:
    """One inference request.

    Requests compare (and hash) by identity: every submitted request is a
    distinct object, and the scheduler's queue-membership checks sit on the
    simulation's hottest path, where a generated field-by-field ``__eq__``
    (which would compare the ever-growing ``token_times`` list) dominates
    the run time.  Slotted for the same reason: nearly every hot loop reads
    request fields, and slot access skips the per-instance dict.

    Attributes:
        request_id: unique id (auto-assigned when negative).
        arrival_time: submission time in simulation seconds.
        prompt_tokens: number of input tokens.
        max_output_tokens: output length (the simulation knows it upfront;
            the scheduler does not use it for admission decisions, matching
            real systems where output length is unknown).
        slo_class: label used by SLO accounting ("chat" or "summary");
            doubles as the tenant key for fleet admission control.
        session_id: optional sticky-session key; the fleet layer's
            session-affinity router maps equal keys to the same group.
    """

    arrival_time: float
    prompt_tokens: int
    max_output_tokens: int
    request_id: int = -1
    slo_class: str = "chat"
    session_id: Optional[str] = None

    # --- dynamic state ------------------------------------------------
    state: RequestState = RequestState.QUEUED
    prefill_progress: int = 0
    #: tokens that must be prefilled before decoding can (re)start; equals
    #: ``prompt_tokens`` initially and grows when a preemption forces the
    #: request to recompute the KV of already-generated tokens.
    prefill_target: int = 0
    output_tokens: int = 0
    #: simulation time before which the request must not be scheduled
    #: (KV exchange / swap-in / migration in flight).
    stall_until: float = 0.0
    #: id of the serving group currently owning the request's KV cache.
    owner_group: Optional[int] = None
    #: number of times the request was preempted-and-recomputed.
    preemption_count: int = 0
    #: number of times the request was swapped out.
    swap_count: int = 0
    #: number of times the request was migrated between instances.
    migration_count: int = 0

    # --- timestamps -----------------------------------------------------
    first_scheduled_time: Optional[float] = None
    first_token_time: Optional[float] = None
    finish_time: Optional[float] = None
    token_times: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.request_id < 0:
            self.request_id = next(_request_counter)
        if self.prompt_tokens <= 0:
            raise ValueError(f"prompt_tokens must be positive, got {self.prompt_tokens}")
        if self.max_output_tokens <= 0:
            raise ValueError(
                f"max_output_tokens must be positive, got {self.max_output_tokens}"
            )
        if self.prefill_target <= 0:
            self.prefill_target = self.prompt_tokens

    # ------------------------------------------------------------------
    # Progress queries
    # ------------------------------------------------------------------
    @property
    def prefill_done(self) -> bool:
        return self.prefill_progress >= self.prefill_target

    @property
    def remaining_prefill_tokens(self) -> int:
        return max(0, self.prefill_target - self.prefill_progress)

    @property
    def finished(self) -> bool:
        return self.state == RequestState.FINISHED

    @property
    def context_tokens(self) -> int:
        """Tokens currently in the request's context (prefill + generated).

        After a recompute-preemption the generated tokens are folded into
        ``prefill_target``, so they are not double counted here.
        """
        generated_beyond_target = max(0, self.prompt_tokens + self.output_tokens - self.prefill_target)
        return self.prefill_progress + generated_beyond_target

    @property
    def kv_tokens(self) -> int:
        """Tokens whose KV cache must be resident to continue the request."""
        return self.context_tokens

    @property
    def total_tokens(self) -> int:
        """Final context length when the request completes."""
        return self.prompt_tokens + self.max_output_tokens

    @property
    def remaining_output_tokens(self) -> int:
        return max(0, self.max_output_tokens - self.output_tokens)

    def is_stalled(self, now: float) -> bool:
        """Is the request blocked on a transfer at time ``now``?"""
        return now < self.stall_until

    # ------------------------------------------------------------------
    # State transitions used by the engine
    # ------------------------------------------------------------------
    def record_prefill(self, tokens: int, now: float) -> None:
        """Account ``tokens`` of prefill progress at time ``now``."""
        if tokens < 0:
            raise ValueError("tokens must be >= 0")
        if self.first_scheduled_time is None:
            self.first_scheduled_time = now
        self.prefill_progress = min(self.prefill_target, self.prefill_progress + tokens)

    def record_output_token(self, now: float) -> None:
        """Account one generated token emitted at time ``now``."""
        if self.first_token_time is None:
            self.first_token_time = now
        self.output_tokens += 1
        self.token_times.append(now)
        if self.output_tokens >= self.max_output_tokens:
            self.state = RequestState.FINISHED
            self.finish_time = now

    def reset_for_recompute(self) -> None:
        """Drop all progress that depended on the (now discarded) KV cache.

        Generated tokens were already streamed to the client and are kept;
        the recompute rebuilds the KV cache for prompt + generated prefix,
        so the prefill target grows to the full current context.
        """
        self.prefill_target = self.prompt_tokens + self.output_tokens
        self.prefill_progress = 0
        self.preemption_count += 1
        self.state = RequestState.PREEMPTED

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    @property
    def ttft(self) -> Optional[float]:
        """Time to first token (None until the first token is emitted)."""
        if self.first_token_time is None:
            return None
        return self.first_token_time - self.arrival_time

    @property
    def tpot_values(self) -> List[float]:
        """Per-output-token latencies after the first token."""
        times = self.token_times
        if len(times) < 2:
            return []
        # Pairwise diff without materialising the two slice copies.
        it = iter(times)
        prev = next(it)
        values = []
        for t in it:
            values.append(t - prev)
            prev = t
        return values

    @property
    def mean_tpot(self) -> Optional[float]:
        values = self.tpot_values
        if not values:
            return None
        return sum(values) / len(values)

    @property
    def e2e_latency(self) -> Optional[float]:
        if self.finish_time is None:
            return None
        return self.finish_time - self.arrival_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Request(id={self.request_id}, state={self.state.value}, "
            f"prompt={self.prompt_tokens}, out={self.output_tokens}/"
            f"{self.max_output_tokens})"
        )


def reset_request_ids() -> None:
    """Reset the auto-id counter (used by tests for deterministic ids)."""
    global _request_counter
    _request_counter = itertools.count()
