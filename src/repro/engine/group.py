"""Serving group: one or more instances executing requests together.

A group with a single instance is the normal data-parallel deployment: the
instance holds all layers and executes whole iterations by itself.  A group
with multiple instances executes with pipeline parallelism: each instance
holds a contiguous slice of layers (its *stage*) and iterations are split
into microbatches that flow through the stages.  Groups are the unit the
KunServe drop plan manipulates — merging groups drops the duplicated layers
and enlarges the combined KV cache.

The group drives the iteration loop on the event loop (continuous
batching): form a batch, execute it (analytically), apply its effects,
repeat.  It also owns the *mechanisms* behind scheduler policy decisions:
swap transfers over PCIe, migration transfers over RDMA, stalls for KV
exchange, and the growth/shrink of the group-level paged KV cache when
parameters are dropped or restored.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cluster.network import NetworkFabric, Transfer, TransferPriority
from repro.engine.batch import IterationBatch, MicroBatch, ScheduledChunk
from repro.engine.chunked_prefill import split_into_n_microbatches
from repro.engine.instance import ServingInstance
from repro.engine.metrics import MetricsCollector
from repro.engine.pipeline import PipelineExecution
from repro.engine.request import Request, RequestState
from repro.engine.scheduler import (
    ContinuousBatchingScheduler,
    SchedulerConfig,
    SchedulerHooks,
)
from repro.memory.paged_kv import PagedKVCache
from repro.models.memory import kv_bytes_per_token
from repro.models.spec import ModelSpec
from repro.simulation.event_loop import Event, EventLoop

#: Type of the pluggable microbatch-formation function: takes the chunks of
#: an iteration and the number of pipeline stages, returns microbatches.
MicrobatchFormer = Callable[[List[ScheduledChunk], int], List[MicroBatch]]


class ServingGroup:
    """A set of instances that together hold one complete copy of the model."""

    def __init__(
        self,
        group_id: int,
        instances: Sequence[ServingInstance],
        model: ModelSpec,
        loop: EventLoop,
        fabric: NetworkFabric,
        metrics: MetricsCollector,
        *,
        scheduler_config: Optional[SchedulerConfig] = None,
        assignment: Optional[List[List[int]]] = None,
        microbatch_former: Optional[MicrobatchFormer] = None,
        block_size: int = 64,
    ) -> None:
        if not instances:
            raise ValueError("a serving group needs at least one instance")
        self.group_id = group_id
        self.instances: List[ServingInstance] = list(instances)
        self.model = model
        self.loop = loop
        self.fabric = fabric
        self.metrics = metrics
        self.block_size = block_size
        self._kv_token_bytes = kv_bytes_per_token(model)

        if assignment is None:
            assignment = self._default_assignment()
        self._assignment: List[List[int]] = [list(layers) for layers in assignment]
        self._validate_assignment()

        self.kv = PagedKVCache(num_blocks=0, block_size=block_size)
        # A pipelined group keeps every stage busy by processing one token
        # budget's worth of work per stage per iteration, so the effective
        # iteration budget scales with the number of stages.
        base_config = scheduler_config if scheduler_config is not None else SchedulerConfig()
        effective_config = SchedulerConfig(
            token_budget=base_config.token_budget * max(1, len(self.instances)),
            max_running_requests=base_config.max_running_requests,
            preemption_mode=base_config.preemption_mode,
            swap_in_watermark=base_config.swap_in_watermark,
        )
        self.scheduler = ContinuousBatchingScheduler(
            self.kv,
            effective_config,
            hooks=SchedulerHooks(
                on_swap_out=self._handle_swap_out,
                on_swap_in=self._handle_swap_in,
            ),
        )
        self.sync_kv_capacity()

        self.microbatch_former: MicrobatchFormer = (
            microbatch_former if microbatch_former is not None else split_into_n_microbatches
        )
        #: extra latency added to every inter-stage activation transfer while
        #: an *uncoordinated* bulk exchange is hogging the links (§4.2).
        self.activation_interference_s: float = 0.0
        self.active: bool = True
        self._busy: bool = False
        self._pending_kick: Optional[Event] = None
        self._inflight_completion: Optional[Event] = None
        # Event names are precomputed: kick/iteration events are scheduled
        # thousands of times per simulated second, and building an f-string
        # per event was a measurable share of the loop's allocations.
        self._kick_name = f"group{group_id}-kick"
        self._wake_name = f"group{group_id}-wake"
        self._iter_name = f"group{group_id}-iter"

        #: observers notified after every completed iteration
        #: ``(group, batch, end_time)``.
        self.iteration_listeners: List[Callable[["ServingGroup", IterationBatch, float], None]] = []
        #: observers notified when a request finishes ``(request)``.
        self.finish_listeners: List[Callable[[Request], None]] = []
        #: per-request span recorder (``repro.trace``); ``None`` keeps the
        #: hot path at a single pointer comparison per hook site.
        self.tracer = None
        self.trace_track = f"engine/group{group_id}"

    # ------------------------------------------------------------------
    # Topology / assignment
    # ------------------------------------------------------------------
    def _default_assignment(self) -> List[List[int]]:
        """Derive the stage assignment from what each instance has loaded."""
        assignment = []
        for instance in self.instances:
            layers = instance.resident_layers
            assignment.append(layers if layers else list(range(self.model.num_layers)))
        return assignment

    def _validate_assignment(self) -> None:
        if len(self._assignment) != len(self.instances):
            raise ValueError("assignment must have one entry per instance")
        covered = sorted(layer for layers in self._assignment for layer in layers)
        expected = list(range(self.model.num_layers))
        if covered != expected:
            raise ValueError(
                "stage assignment must cover every model layer exactly once; "
                f"got {len(covered)} layers for a {self.model.num_layers}-layer model"
            )

    @property
    def num_stages(self) -> int:
        return len(self.instances)

    @property
    def assignment(self) -> List[List[int]]:
        return [list(layers) for layers in self._assignment]

    def stage_of_instance(self, instance: ServingInstance) -> int:
        return self.instances.index(instance)

    def set_assignment(self, assignment: List[List[int]]) -> None:
        """Replace the per-stage layer assignment (after drop / restore)."""
        self._assignment = [list(layers) for layers in assignment]
        self._validate_assignment()

    # ------------------------------------------------------------------
    # KV capacity management
    # ------------------------------------------------------------------
    def kv_capacity_bytes(self) -> int:
        return sum(inst.kv_capacity_bytes for inst in self.instances)

    def kv_capacity_tokens(self) -> int:
        return self.kv.capacity_tokens

    def kv_used_tokens(self) -> int:
        return self.kv.used_tokens

    def kv_used_bytes(self) -> int:
        return self.kv.used_blocks * self.block_size * self._kv_token_bytes

    def kv_demand_bytes(self) -> int:
        """In-processing + head-of-line memory demand (paper's load metric)."""
        return self.scheduler.total_demand_tokens() * self._kv_token_bytes

    def sync_kv_capacity(self) -> None:
        """Align the group KV cache with the instances' mapped KV memory."""
        target_blocks = self.kv_capacity_bytes() // (self.block_size * self._kv_token_bytes)
        if target_blocks > self.kv.num_blocks:
            self.kv.grow(target_blocks - self.kv.num_blocks)
        elif target_blocks < self.kv.num_blocks:
            shrink = min(self.kv.num_blocks - target_blocks, self.kv.free_blocks)
            self.kv.shrink(shrink)

    # ------------------------------------------------------------------
    # Request intake
    # ------------------------------------------------------------------
    def enqueue(self, request: Request) -> None:
        """Accept a newly-dispatched request."""
        request.owner_group = self.group_id
        if self.tracer is not None:
            self.tracer.on_enqueued(request, self.group_id)
        self.scheduler.add_request(request)
        self.kick()

    def adopt_running(self, request: Request, kv_tokens: int) -> None:
        """Adopt an in-flight request whose KV is (being) moved here."""
        request.owner_group = self.group_id
        self.scheduler.add_running(request, kv_tokens)
        self.kick()

    def adopt_waiting(self, request: Request, *, front: bool = False) -> None:
        """Adopt a queued request from another group."""
        request.owner_group = self.group_id
        request.state = RequestState.QUEUED
        if front:
            self.scheduler.waiting.appendleft(request)
        else:
            self.scheduler.add_request(request)
        self.kick()

    # ------------------------------------------------------------------
    # Iteration loop
    # ------------------------------------------------------------------
    def kick(self) -> None:
        """Ensure an iteration attempt is scheduled if the group is idle."""
        if not self.active or self._busy:
            return
        if self._pending_kick is not None and not self._pending_kick.cancelled:
            return
        self._pending_kick = self.loop.schedule(0.0, self._run_iteration, name=self._kick_name)

    def deactivate(self) -> None:
        """Stop serving (the group was merged away or its node failed).

        Any in-flight iteration is abandoned: its requests are about to be
        re-owned by another group, so letting the stale completion run would
        double-apply their progress.  The lost iteration models the (small)
        disruption of reconfiguring the cluster mid-flight.
        """
        self.active = False
        if self._pending_kick is not None:
            self._pending_kick.cancel()
            self._pending_kick = None
        if self._inflight_completion is not None:
            self._inflight_completion.cancel()
            self._inflight_completion = None
        self._busy = False

    def _run_iteration(self) -> None:
        self._pending_kick = None
        if not self.active or self._busy:
            return
        now = self.loop.now
        batch = self.scheduler.form_batch(now)
        if batch.empty:
            self._schedule_wakeup(now)
            return
        duration, bubble_fraction = self._execute(batch)
        self._busy = True
        start = now
        self._inflight_completion = self.loop.schedule(
            duration,
            lambda: self._complete_iteration(batch, start, duration, bubble_fraction),
            name=self._iter_name,
        )

    def _schedule_wakeup(self, now: float) -> None:
        """When idle but stalled work exists, wake up at the stall expiry."""
        expiry = self.scheduler.next_stall_expiry(now)
        if expiry is None:
            return
        if self._pending_kick is not None and not self._pending_kick.cancelled:
            return
        self._pending_kick = self.loop.schedule_at(
            expiry, self._run_iteration, name=self._wake_name
        )

    def _execute(self, batch: IterationBatch) -> Tuple[float, float]:
        """Compute the iteration's duration and bubble fraction."""
        # The chunk list is handed to the latency model without copying:
        # neither path mutates it, and the copy showed up per iteration.
        chunks = batch.chunks
        if self.num_stages == 1:
            instance = self.instances[0]
            duration = instance.latency.batch_time(chunks, num_layers=len(self._assignment[0]))
            return duration, 0.0

        microbatches = self.microbatch_former(chunks, self.num_stages)
        if not microbatches:
            return 0.0, 0.0
        stage_times: List[List[float]] = []
        comm_times: List[List[float]] = []
        last_stage = self.num_stages - 1
        # When every stage runs on identical hardware with deterministic
        # latency (no jitter), batch_time is a pure function of
        # (chunks, num_layers, include_lm_head) — stages holding the same
        # layer count produce bit-identical times, so each distinct
        # (num_layers, lm_head) pair is computed once per microbatch instead
        # of once per stage.  Jitter disables this: memoizing would change
        # how many RNG draws happen and perturb every later sample.
        lat0 = self.instances[0].latency
        uniform_stages = all(
            inst.latency.gpu is lat0.gpu
            and inst.latency.model is lat0.model
            and inst.latency.tp_degree == lat0.tp_degree
            and inst.latency.config == lat0.config
            and (inst.latency._rng is None or inst.latency.config.jitter_fraction <= 0)
            for inst in self.instances
        )
        for microbatch in microbatches:
            mb_chunks = microbatch.chunks
            row = []
            mb_tokens = -1
            if uniform_stages:
                stage_memo: Dict[Tuple[int, bool], float] = {}
                for stage in range(self.num_stages):
                    key = (max(1, len(self._assignment[stage])), stage == last_stage)
                    duration = stage_memo.get(key)
                    if duration is None:
                        without_head, with_head, mb_tokens = lat0.batch_time_pair(
                            mb_chunks, num_layers=key[0]
                        )
                        stage_memo[(key[0], False)] = without_head
                        stage_memo[(key[0], True)] = with_head
                        duration = stage_memo[key]
                    row.append(duration)
            else:
                for stage, instance in enumerate(self.instances):
                    row.append(
                        instance.latency.batch_time(
                            mb_chunks,
                            num_layers=max(1, len(self._assignment[stage])),
                            include_lm_head=(stage == last_stage),
                        )
                    )
            stage_times.append(row)
            # One token-count sum per microbatch, not one per stage link —
            # the uniform-stage path gets the count from batch_time_pair's
            # aggregation pass for free.
            if mb_tokens < 0:
                mb_tokens = microbatch.total_new_tokens
            comm_row = []
            for stage in range(self.num_stages - 1):
                comm_row.append(
                    self._activation_transfer_time(
                        self.instances[stage],
                        self.instances[stage + 1],
                        mb_tokens,
                    )
                )
            comm_times.append(comm_row)
        stats = PipelineExecution.makespan(stage_times, comm_times=comm_times)
        # Steady-state correction: across consecutive iterations the pipeline
        # stays full (the next iteration's first microbatches enter while the
        # previous one drains), so the fill time of the first microbatch is
        # not paid per iteration.  The drain imbalance still is — that is the
        # bubble the lookahead formulation attacks.
        fill_time = sum(stage_times[0][s] + comm_times[0][s] for s in range(self.num_stages - 1))
        max_stage_busy = max(stats.stage_busy) if stats.stage_busy else 0.0
        duration = max(max_stage_busy, stats.makespan - fill_time)
        if duration <= 0:
            return 0.0, 0.0
        capacity = duration * self.num_stages
        bubble_fraction = max(0.0, 1.0 - stats.total_busy / capacity)
        return duration, bubble_fraction

    def _activation_transfer_time(
        self, src: ServingInstance, dst: ServingInstance, tokens: int
    ) -> float:
        activation_bytes = tokens * self.model.activation_bytes_per_token()
        if src.server_id == dst.server_id and src.gpus[0].spec.nvlink_bandwidth > 0:
            bandwidth = src.gpus[0].spec.nvlink_bandwidth
        else:
            bandwidth = min(
                self.fabric.node_bandwidth(src.nic_node()),
                self.fabric.node_bandwidth(dst.nic_node()),
            )
        base = 5e-6 + activation_bytes / bandwidth
        return base + self.activation_interference_s

    def _complete_iteration(
        self, batch: IterationBatch, start: float, duration: float, bubble_fraction: float
    ) -> None:
        now = self.loop.now
        self._inflight_completion = None
        finished = self.scheduler.complete_batch(batch, now)
        for request in finished:
            self.metrics.record_request(request)
            for listener in self.finish_listeners:
                listener(request)
        self.metrics.record_iteration(
            group_id=self.group_id,
            start_time=start,
            duration=duration,
            new_tokens=batch.total_new_tokens,
            num_requests=batch.num_requests,
            num_stages=self.num_stages,
            bubble_fraction=bubble_fraction,
        )
        for listener in self.iteration_listeners:
            listener(self, batch, now)
        if self.tracer is not None:
            self.tracer.on_iteration(self, batch, start, now)
        self._busy = False
        if self.active:
            self._run_iteration()

    # ------------------------------------------------------------------
    # Stalls (KV exchange, swap-in, migration)
    # ------------------------------------------------------------------
    def stall_request(self, request: Request, until: float) -> None:
        """Block ``request`` from being scheduled before ``until``."""
        request.stall_until = max(request.stall_until, until)

    # ------------------------------------------------------------------
    # Swap mechanism (InferCept baseline)
    # ------------------------------------------------------------------
    def _handle_swap_out(self, request: Request) -> None:
        """Move the victim's KV cache to host DRAM over PCIe."""
        instance = self.instances[0]
        size = request.context_tokens * self._kv_token_bytes
        self.fabric.submit(
            instance.host_node(),
            instance.host_node(),
            size,
            priority=TransferPriority.BULK,
            tag=f"swap-out-{request.request_id}",
            on_complete=lambda t, r=request: self._finish_swap_out(r, t),
        )
        eta = size / self.fabric.node_bandwidth(instance.host_node())
        self.stall_request(request, self.loop.now + eta)

    def _finish_swap_out(self, request: Request, _transfer: Transfer) -> None:
        # Nothing further to do: the memory was already released when the
        # scheduler freed the victim's blocks; the stall just models the
        # PCIe occupancy before the request can be swapped back in.
        self.kick()

    def _handle_swap_in(self, request: Request) -> None:
        """Bring a swapped request's KV back from host DRAM."""
        instance = self.instances[0]
        size = request.context_tokens * self._kv_token_bytes
        transfer = self.fabric.submit(
            instance.host_node(),
            instance.host_node(),
            size,
            priority=TransferPriority.BULK,
            tag=f"swap-in-{request.request_id}",
            on_complete=lambda t, r=request: self._finish_swap_in(r, t),
        )
        eta = size / self.fabric.node_bandwidth(instance.host_node())
        self.stall_request(request, self.loop.now + eta)

    def _finish_swap_in(self, request: Request, _transfer: Transfer) -> None:
        request.stall_until = min(request.stall_until, self.loop.now)
        self.kick()

    # ------------------------------------------------------------------
    # Migration mechanism (Llumnix baseline)
    # ------------------------------------------------------------------
    def migrate_request_to(self, request: Request, destination: "ServingGroup") -> bool:
        """Move a running request (and its KV cache) to another group.

        Returns False when the destination cannot hold the request's KV.
        """
        tokens = self.kv.tokens_of(request.request_id)
        if tokens == 0:
            tokens = request.context_tokens
        if not destination.kv.can_allocate(request.request_id, tokens):
            return False
        self.scheduler.remove_request(request)
        request.state = RequestState.MIGRATING
        request.migration_count += 1
        destination.adopt_running(request, tokens)

        size = tokens * self._kv_token_bytes
        src_node = self.instances[0].nic_node()
        dst_node = destination.instances[0].nic_node()
        if self.tracer is not None:
            self.tracer.on_migration_start(
                request, self.trace_track, destination.trace_track
            )
        if src_node == dst_node:
            # Same server: treat as an instantaneous device-to-device copy.
            request.state = RequestState.RUNNING
            if self.tracer is not None:
                self.tracer.on_migration_end(request)
            destination.kick()
            return True
        eta = self.fabric.estimate_transfer_time(src_node, dst_node, size, exclusive=False)
        destination.stall_request(request, self.loop.now + eta)
        self.fabric.submit(
            src_node,
            dst_node,
            size,
            priority=TransferPriority.BULK,
            tag=f"migrate-{request.request_id}",
            on_complete=lambda t, r=request, d=destination: self._finish_migration(r, d, t),
        )
        return True

    def _finish_migration(self, request: Request, destination: "ServingGroup", _t: Transfer) -> None:
        if self.tracer is not None:
            self.tracer.on_migration_end(request)
        if not request.finished:
            request.state = RequestState.RUNNING
            request.stall_until = min(request.stall_until, self.loop.now)
        destination.kick()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def load_snapshot(self) -> Dict[str, float]:
        """Load metrics used by the dispatcher and the global monitor."""
        capacity = self.kv_capacity_bytes()
        return {
            "group_id": float(self.group_id),
            "num_stages": float(self.num_stages),
            "kv_capacity_bytes": float(capacity),
            "kv_used_bytes": float(self.kv_used_bytes()),
            "kv_demand_bytes": float(self.kv_demand_bytes()),
            "num_running": float(self.scheduler.num_running),
            "num_waiting": float(self.scheduler.num_waiting),
            "num_swapped": float(self.scheduler.num_swapped),
            "memory_blocked": 1.0 if self.scheduler.memory_blocked else 0.0,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ServingGroup(id={self.group_id}, stages={self.num_stages}, "
            f"running={self.scheduler.num_running}, waiting={self.scheduler.num_waiting})"
        )
