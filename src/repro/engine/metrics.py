"""Metric collection: per-request latencies and cluster timelines.

The paper reports, per experiment:

* TTFT and TPOT percentiles (P50/P90/P99/P999) — Figure 13, 14, 16;
* mean TTFT over time and token throughput over time — Figure 12, 16, 17;
* memory usage/demand over time — Figure 2, 12, 16, 17;
* bubble time (1 - GPU utilisation) over time — Figure 14;
* SLO violation ratios at different scale factors — Figure 13.

The :class:`MetricsCollector` gathers the raw material for all of these
during a simulation run; aggregation helpers turn it into the series and
percentiles the experiment modules print.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.engine.request import Request


def percentile(values: Sequence[float], p: float) -> float:
    """Percentile ``p`` (0-100) of ``values``; 0.0 for an empty sequence."""
    if len(values) == 0:
        return 0.0
    return float(np.percentile(np.asarray(values, dtype=float), p))


@dataclass
class RequestRecord:
    """Immutable per-request result extracted when a request finishes."""

    request_id: int
    arrival_time: float
    prompt_tokens: int
    output_tokens: int
    slo_class: str
    ttft: Optional[float]
    mean_tpot: Optional[float]
    tpot_values: List[float]
    finish_time: Optional[float]
    e2e_latency: Optional[float]
    preemption_count: int
    swap_count: int
    migration_count: int
    finished: bool

    @classmethod
    def from_request(cls, request: Request) -> "RequestRecord":
        # ``tpot_values`` builds an O(output_tokens) diff list; computing it
        # once and deriving the mean here (instead of touching the
        # ``mean_tpot`` property, which would rebuild it) halves the cost of
        # recording a finished request.
        tpot_values = request.tpot_values
        mean_tpot = sum(tpot_values) / len(tpot_values) if tpot_values else None
        return cls(
            request_id=request.request_id,
            arrival_time=request.arrival_time,
            prompt_tokens=request.prompt_tokens,
            output_tokens=request.output_tokens,
            slo_class=request.slo_class,
            ttft=request.ttft,
            mean_tpot=mean_tpot,
            tpot_values=tpot_values,
            finish_time=request.finish_time,
            e2e_latency=request.e2e_latency,
            preemption_count=request.preemption_count,
            swap_count=request.swap_count,
            migration_count=request.migration_count,
            finished=request.finished,
        )


@dataclass
class TimelinePoint:
    """One sample of a time-bucketed series."""

    time: float
    value: float


class TimelineSeries:
    """Time-bucketed accumulator.

    ``mode='sum'`` accumulates values per bucket (e.g. tokens generated);
    ``mode='mean'`` averages samples per bucket (e.g. memory usage, bubble
    fraction).

    ``add`` sits on simulation hot paths (every iteration completion and
    monitor tick folds samples in), so accumulation is lazy: each sample is
    folded straight into a mutable ``[sum, count]`` bucket entry — with the
    most recent bucket memoised, since consecutive samples almost always
    land in the same window — and :class:`TimelinePoint` objects are
    materialised only when a reader asks.  The per-bucket running sums
    accumulate in exactly the sample order, so reads are bit-identical to
    the eager implementation this replaced.
    """

    __slots__ = ("window_s", "mode", "_buckets", "_last_bucket", "_last_entry")

    def __init__(self, window_s: float = 1.0, mode: str = "mean") -> None:
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        if mode not in ("sum", "mean"):
            raise ValueError(f"unknown mode {mode!r}")
        self.window_s = float(window_s)
        self.mode = mode
        self._buckets: Dict[int, List[float]] = {}
        self._last_bucket: Optional[int] = None
        self._last_entry: Optional[List[float]] = None

    def add(self, time: float, value: float) -> None:
        bucket = int(time // self.window_s)
        if bucket == self._last_bucket:
            entry = self._last_entry
        else:
            entry = self._buckets.get(bucket)
            if entry is None:
                entry = [0.0, 0]
                self._buckets[bucket] = entry
            self._last_bucket = bucket
            self._last_entry = entry
        entry[0] += value
        entry[1] += 1

    def _bucket_value(self, entry: List[float]) -> float:
        if self.mode == "mean" and entry[1] > 0:
            return entry[0] / entry[1]
        return entry[0]

    def points(self) -> List[TimelinePoint]:
        return [
            TimelinePoint(time=bucket * self.window_s, value=self._bucket_value(entry))
            for bucket, entry in sorted(self._buckets.items())
        ]

    def values(self) -> List[float]:
        return [
            self._bucket_value(entry) for _, entry in sorted(self._buckets.items())
        ]

    def max(self) -> float:
        return max(
            (self._bucket_value(entry) for entry in self._buckets.values()),
            default=0.0,
        )

    def mean(self) -> float:
        if not self._buckets:
            return 0.0
        values = self.values()
        return sum(values) / len(values)


@dataclass
class IterationRecord:
    """One engine iteration of one serving group."""

    group_id: int
    start_time: float
    duration: float
    new_tokens: int
    num_requests: int
    num_stages: int
    bubble_fraction: float


class MetricsCollector:
    """Collects per-request records, iteration records and timelines."""

    def __init__(self, timeline_window_s: float = 1.0) -> None:
        self.timeline_window_s = timeline_window_s
        self.records: List[RequestRecord] = []
        self.iterations: List[IterationRecord] = []
        self.throughput = TimelineSeries(timeline_window_s, mode="sum")
        self.bubble_time = TimelineSeries(timeline_window_s, mode="mean")
        self.memory_used = TimelineSeries(timeline_window_s, mode="mean")
        self.memory_demand = TimelineSeries(timeline_window_s, mode="mean")
        self.memory_capacity = TimelineSeries(timeline_window_s, mode="mean")
        self.queue_length = TimelineSeries(timeline_window_s, mode="mean")
        #: free-form event markers (drop start/end, restore start/end, ...)
        self.events: List[Dict[str, object]] = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_request(self, request: Request) -> RequestRecord:
        record = RequestRecord.from_request(request)
        self.records.append(record)
        return record

    def record_iteration(
        self,
        *,
        group_id: int,
        start_time: float,
        duration: float,
        new_tokens: int,
        num_requests: int,
        num_stages: int = 1,
        bubble_fraction: float = 0.0,
    ) -> None:
        self.iterations.append(
            IterationRecord(
                group_id=group_id,
                start_time=start_time,
                duration=duration,
                new_tokens=new_tokens,
                num_requests=num_requests,
                num_stages=num_stages,
                bubble_fraction=bubble_fraction,
            )
        )
        end = start_time + duration
        self.throughput.add(end, float(new_tokens))
        self.bubble_time.add(end, bubble_fraction)

    def sample_memory(
        self, time: float, *, used_bytes: float, capacity_bytes: float, demand_bytes: float
    ) -> None:
        self.memory_used.add(time, used_bytes)
        self.memory_capacity.add(time, capacity_bytes)
        self.memory_demand.add(time, demand_bytes)

    def sample_queue(self, time: float, queued_requests: int) -> None:
        self.queue_length.add(time, float(queued_requests))

    def mark_event(self, time: float, kind: str, **details: object) -> None:
        self.events.append({"time": time, "kind": kind, **details})

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def ttft_values(self, slo_class: Optional[str] = None) -> List[float]:
        return [
            r.ttft
            for r in self.records
            if r.ttft is not None and (slo_class is None or r.slo_class == slo_class)
        ]

    def tpot_values(self, slo_class: Optional[str] = None) -> List[float]:
        """Per-request mean TPOT values (the granularity the paper reports)."""
        return [
            r.mean_tpot
            for r in self.records
            if r.mean_tpot is not None and (slo_class is None or r.slo_class == slo_class)
        ]

    def ttft_percentile(self, p: float) -> float:
        return percentile(self.ttft_values(), p)

    def tpot_percentile(self, p: float) -> float:
        return percentile(self.tpot_values(), p)

    def mean_ttft_timeline(self, window_s: float = 5.0) -> List[TimelinePoint]:
        """Mean TTFT of requests bucketed by their arrival time (Figure 12)."""
        series = TimelineSeries(window_s, mode="mean")
        for record in self.records:
            if record.ttft is not None:
                series.add(record.arrival_time, record.ttft)
        return series.points()

    def total_output_tokens(self) -> int:
        return sum(r.output_tokens for r in self.records)

    def finished_count(self) -> int:
        return sum(1 for r in self.records if r.finished)

    def mean_bubble_fraction(self) -> float:
        multi_stage = [i.bubble_fraction for i in self.iterations if i.num_stages > 1]
        if not multi_stage:
            return 0.0
        return float(np.mean(multi_stage))

    def summary(self) -> Dict[str, float]:
        """Headline numbers used by tests and report printing."""
        return {
            "requests": float(len(self.records)),
            "finished": float(self.finished_count()),
            "ttft_p50": self.ttft_percentile(50),
            "ttft_p90": self.ttft_percentile(90),
            "ttft_p99": self.ttft_percentile(99),
            "ttft_p999": self.ttft_percentile(99.9),
            "tpot_p50": self.tpot_percentile(50),
            "tpot_p90": self.tpot_percentile(90),
            "tpot_p99": self.tpot_percentile(99),
            "tpot_p999": self.tpot_percentile(99.9),
            "throughput_tokens_per_s": self.throughput.mean() / self.timeline_window_s,
            "mean_bubble_fraction": self.mean_bubble_fraction(),
        }
