"""Batches and microbatches.

An *iteration batch* is the set of work one engine iteration performs: a mix
of decode steps (one token per running request) and prefill chunks (part or
all of a queued request's prompt), exactly as in chunked-prefill engines.

For pipelined execution the iteration batch is further divided into
*microbatches* that flow through the pipeline stages; how that division is
done (token-count based vs. lookahead cost-balanced) is the subject of §4.3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List

from repro.engine.request import Request


class ScheduledChunk:
    """A unit of work for one request within a batch.

    A plain ``__slots__`` class rather than a dataclass: one chunk is
    allocated per scheduled token batch for the whole simulation (hundreds
    of thousands per run), and the generated dataclass ``__init__`` +
    ``__post_init__`` indirection measurably dominates batch formation.

    Attributes:
        request: the request being advanced.
        prefix_tokens: context tokens already processed (their KV is read by
            attention but they are not re-computed).
        new_tokens: tokens processed by this chunk — a prefill chunk of the
            prompt, or 1 for a decode step.
        is_decode: True when this chunk is a decode step.
    """

    __slots__ = ("request", "prefix_tokens", "new_tokens", "is_decode")

    def __init__(
        self,
        request: Request,
        prefix_tokens: int,
        new_tokens: int,
        is_decode: bool = False,
    ) -> None:
        if prefix_tokens < 0:
            raise ValueError("prefix_tokens must be >= 0")
        if new_tokens <= 0:
            raise ValueError("new_tokens must be positive")
        if is_decode and new_tokens != 1:
            raise ValueError("decode chunks process exactly one token")
        self.request = request
        self.prefix_tokens = prefix_tokens
        self.new_tokens = new_tokens
        self.is_decode = is_decode

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ScheduledChunk(request={self.request!r}, "
            f"prefix_tokens={self.prefix_tokens}, new_tokens={self.new_tokens}, "
            f"is_decode={self.is_decode})"
        )

    @property
    def total_context(self) -> int:
        """Context length after this chunk executes."""
        return self.prefix_tokens + self.new_tokens

    def split(self, first_tokens: int) -> tuple["ScheduledChunk", "ScheduledChunk"]:
        """Split a prefill chunk into two consecutive chunks.

        The second chunk's prefix includes the first chunk's tokens, which is
        what makes later chunks more expensive (they attend over the earlier
        ones) — the effect the lookahead cost model captures.
        """
        if self.is_decode:
            raise ValueError("cannot split a decode chunk")
        if not 0 < first_tokens < self.new_tokens:
            raise ValueError(
                f"first_tokens must be in (0, {self.new_tokens}), got {first_tokens}"
            )
        first = ScheduledChunk(
            request=self.request,
            prefix_tokens=self.prefix_tokens,
            new_tokens=first_tokens,
        )
        second = ScheduledChunk(
            request=self.request,
            prefix_tokens=self.prefix_tokens + first_tokens,
            new_tokens=self.new_tokens - first_tokens,
        )
        return first, second


@dataclass(slots=True)
class MicroBatch:
    """A set of chunks executed together on one pipeline stage pass."""

    chunks: List[ScheduledChunk] = field(default_factory=list)

    @property
    def num_chunks(self) -> int:
        return len(self.chunks)

    @property
    def total_new_tokens(self) -> int:
        return sum(c.new_tokens for c in self.chunks)

    @property
    def num_decode_chunks(self) -> int:
        return sum(1 for c in self.chunks if c.is_decode)

    def add(self, chunk: ScheduledChunk) -> None:
        self.chunks.append(chunk)

    def __iter__(self):
        return iter(self.chunks)

    def __len__(self) -> int:
        return len(self.chunks)


@dataclass(slots=True)
class IterationBatch:
    """All work performed by one engine iteration."""

    chunks: List[ScheduledChunk] = field(default_factory=list)

    @property
    def total_new_tokens(self) -> int:
        return sum(c.new_tokens for c in self.chunks)

    @property
    def num_requests(self) -> int:
        return len({c.request.request_id for c in self.chunks})

    @property
    def decode_chunks(self) -> List[ScheduledChunk]:
        return [c for c in self.chunks if c.is_decode]

    @property
    def prefill_chunks(self) -> List[ScheduledChunk]:
        return [c for c in self.chunks if not c.is_decode]

    @property
    def empty(self) -> bool:
        return not self.chunks

    def add(self, chunk: ScheduledChunk) -> None:
        self.chunks.append(chunk)

    def extend(self, chunks: Iterable[ScheduledChunk]) -> None:
        self.chunks.extend(chunks)

    def __iter__(self):
        return iter(self.chunks)

    def __len__(self) -> int:
        return len(self.chunks)
