"""vLLM-class serving-engine substrate.

Implements, at iteration granularity, the serving engine the paper builds
on: requests with prefill/decode phases, continuous batching with chunked
prefill (Sarathi-style token budgets), a paged KV cache per serving group,
a roofline latency model calibrated to the testbed GPUs, pipeline-parallel
execution with microbatches and bubble accounting, tensor parallelism
inside an instance, and metric collection (TTFT / TPOT / throughput /
memory timelines).
"""

from repro.engine.request import Request, RequestState
from repro.engine.batch import IterationBatch, MicroBatch, ScheduledChunk
from repro.engine.latency_model import LatencyModel, LatencyModelConfig
from repro.engine.tensor_parallel import allreduce_time
from repro.engine.pipeline import PipelineExecution, PipelineStats
from repro.engine.chunked_prefill import token_count_microbatches
from repro.engine.metrics import MetricsCollector, RequestRecord, percentile
from repro.engine.scheduler import ContinuousBatchingScheduler, PreemptionMode, SchedulerConfig
from repro.engine.instance import ServingInstance
from repro.engine.group import ServingGroup

__all__ = [
    "Request",
    "RequestState",
    "IterationBatch",
    "MicroBatch",
    "ScheduledChunk",
    "LatencyModel",
    "LatencyModelConfig",
    "allreduce_time",
    "PipelineExecution",
    "PipelineStats",
    "token_count_microbatches",
    "MetricsCollector",
    "RequestRecord",
    "percentile",
    "ContinuousBatchingScheduler",
    "PreemptionMode",
    "SchedulerConfig",
    "ServingInstance",
    "ServingGroup",
]
