"""Continuous-batching scheduler with chunked prefill.

This is the vLLM/Sarathi-class scheduler the paper's systems all share:
every iteration it fuses decode steps of running requests with prefill
chunks of queued requests into one batch bounded by a token budget, FCFS,
with block-granular KV accounting.  When the KV cache cannot hold the next
token it preempts the lowest-priority running request, either by discarding
its KV cache (vLLM's recompute mode) or by swapping it to host DRAM
(InferCept's mode); when even that is impossible, arriving requests queue —
which is exactly the overloading behaviour the paper studies.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, List, Optional

from repro.engine.batch import IterationBatch, ScheduledChunk
from repro.engine.request import Request, RequestState
from repro.memory.paged_kv import PagedKVCache


class PreemptionMode(enum.Enum):
    """What to do with a victim request when the KV cache is full."""

    RECOMPUTE = "recompute"
    SWAP = "swap"


@dataclass
class SchedulerConfig:
    """Scheduler tunables.

    Attributes:
        token_budget: maximum new tokens processed per iteration (chunked
            prefill budget).
        max_running_requests: cap on concurrently admitted requests.
        preemption_mode: recompute (vLLM default) or swap (InferCept).
        swap_in_watermark: fraction of KV blocks that must be free before a
            swapped-out request is brought back.
    """

    token_budget: int = 1024
    max_running_requests: int = 512
    preemption_mode: PreemptionMode = PreemptionMode.RECOMPUTE
    swap_in_watermark: float = 0.05

    def __post_init__(self) -> None:
        if self.token_budget <= 0:
            raise ValueError("token_budget must be positive")
        if self.max_running_requests <= 0:
            raise ValueError("max_running_requests must be positive")
        if not 0 <= self.swap_in_watermark < 1:
            raise ValueError("swap_in_watermark must be in [0, 1)")


@dataclass
class SchedulerHooks:
    """Callbacks the owning serving group installs.

    The scheduler makes policy decisions (who to preempt, who to swap);
    the group performs the mechanism (network / PCIe transfers, stalls).
    """

    on_preempt: Optional[Callable[[Request], None]] = None
    on_swap_out: Optional[Callable[[Request], None]] = None
    on_swap_in: Optional[Callable[[Request], None]] = None


class ContinuousBatchingScheduler:
    """Iteration-level scheduler for one serving group."""

    def __init__(
        self,
        kv_cache: PagedKVCache,
        config: Optional[SchedulerConfig] = None,
        hooks: Optional[SchedulerHooks] = None,
    ) -> None:
        self.kv = kv_cache
        self.config = config if config is not None else SchedulerConfig()
        self.hooks = hooks if hooks is not None else SchedulerHooks()
        self.waiting: Deque[Request] = deque()
        self.running: List[Request] = []
        self.swapped: List[Request] = []
        #: ids of requests in ``running`` — membership tests happen per
        #: candidate per iteration, so they must be O(1), not list scans.
        self._running_ids: set[int] = set()
        #: True when the last ``form_batch`` had to leave work unscheduled
        #: because of insufficient KV memory (overload signal).
        self.memory_blocked: bool = False
        #: cumulative number of preemptions / swaps performed.
        self.preemption_count: int = 0
        self.swap_out_count: int = 0

    # ------------------------------------------------------------------
    # Request intake / removal
    # ------------------------------------------------------------------
    def add_request(self, request: Request) -> None:
        """Enqueue a newly-arrived request (FCFS)."""
        request.state = RequestState.QUEUED
        self.waiting.append(request)

    def add_running(self, request: Request, kv_tokens: int) -> None:
        """Adopt a request that already has ``kv_tokens`` of KV cache.

        Used when requests move between groups (migration, group merges);
        the caller guarantees the KV content is or will be present.
        """
        if kv_tokens > 0:
            self.kv.allocate(request.request_id, kv_tokens)
        request.state = RequestState.RUNNING
        self._add_running(request)

    def remove_request(self, request: Request) -> int:
        """Remove a request from all queues; returns its freed KV tokens."""
        freed_tokens = self.kv.tokens_of(request.request_id)
        self.kv.free(request.request_id)
        self._remove_running(request)
        if request in self.swapped:
            self.swapped.remove(request)
        try:
            self.waiting.remove(request)
        except ValueError:
            pass
        return freed_tokens

    def _add_running(self, request: Request) -> None:
        self.running.append(request)
        self._running_ids.add(request.request_id)

    def _remove_running(self, request: Request) -> None:
        if request.request_id in self._running_ids:
            self.running.remove(request)
            self._running_ids.discard(request.request_id)

    def is_running(self, request: Request) -> bool:
        """O(1) membership test against the running list."""
        return request.request_id in self._running_ids

    # ------------------------------------------------------------------
    # Load queries (used by dispatcher / monitor)
    # ------------------------------------------------------------------
    @property
    def num_waiting(self) -> int:
        return len(self.waiting)

    @property
    def num_running(self) -> int:
        return len(self.running)

    @property
    def num_swapped(self) -> int:
        return len(self.swapped)

    def used_kv_tokens(self) -> int:
        return self.kv.used_tokens

    def queued_demand_tokens(self) -> int:
        """KV tokens the queued (and swapped) requests will need to start."""
        waiting_demand = sum(r.remaining_prefill_tokens for r in self.waiting)
        swapped_demand = sum(r.context_tokens for r in self.swapped)
        return waiting_demand + swapped_demand

    def total_demand_tokens(self) -> int:
        """In-processing plus head-of-line demand (the paper's load metric).

        Running requests count their resident KV plus the prefill they still
        have to ingest; queued and swapped requests count in full.
        """
        running_remaining = sum(
            max(0, r.prefill_target - self.kv.tokens_of(r.request_id)) for r in self.running
        )
        return self.used_kv_tokens() + running_remaining + self.queued_demand_tokens()

    def has_pending_work(self, now: float) -> bool:
        """Is there any work that could be scheduled at or after ``now``?"""
        if self.waiting:
            return True
        for request in self.running:
            if not request.finished:
                return True
        return bool(self.swapped)

    def next_stall_expiry(self, now: float) -> Optional[float]:
        """Earliest future time at which a stalled request becomes runnable."""
        times = [
            r.stall_until
            for r in list(self.running) + list(self.waiting)
            if r.stall_until > now
        ]
        return min(times) if times else None

    # ------------------------------------------------------------------
    # Batch formation
    # ------------------------------------------------------------------
    def form_batch(self, now: float) -> IterationBatch:
        """Build the next iteration's batch (decodes first, then prefill)."""
        self.memory_blocked = False
        batch = IterationBatch()
        budget = self.config.token_budget

        self._try_swap_in(now)

        budget = self._schedule_decodes(batch, budget, now)
        budget = self._schedule_running_prefills(batch, budget, now)
        self._admit_waiting(batch, budget, now)
        return batch

    def _schedule_decodes(self, batch: IterationBatch, budget: int, now: float) -> int:
        candidates = [
            r
            for r in self.running
            if r.prefill_done and not r.finished and not r.is_stalled(now)
        ]
        candidates.sort(key=lambda r: (r.arrival_time, r.request_id))
        for request in candidates:
            if budget <= 0:
                break
            if not self.is_running(request):
                # Already evicted earlier in this pass to make room for a
                # higher-priority request.
                continue
            if self.kv.try_allocate(request.request_id, 1) is None:
                if not self._make_room(request, 1, now):
                    # No lower-priority victim exists: the request itself is
                    # the lowest priority one, so it gets preempted (vLLM's
                    # behaviour) rather than silently holding memory.
                    self.memory_blocked = True
                    self._preempt(request, now)
                    continue
                if not self.is_running(request):
                    continue
                self.kv.allocate(request.request_id, 1)
            batch.add(
                ScheduledChunk(
                    request=request,
                    prefix_tokens=request.context_tokens,
                    new_tokens=1,
                    is_decode=True,
                )
            )
            budget -= 1
        return budget

    def _schedule_running_prefills(self, batch: IterationBatch, budget: int, now: float) -> int:
        candidates = [
            r
            for r in self.running
            if not r.prefill_done and not r.is_stalled(now)
        ]
        candidates.sort(key=lambda r: (r.arrival_time, r.request_id))
        for request in candidates:
            if budget <= 0:
                break
            if not self.is_running(request):
                continue
            chunk_tokens = min(budget, request.remaining_prefill_tokens)
            chunk_tokens = self._fit_to_memory(request, chunk_tokens)
            if chunk_tokens <= 0:
                self.memory_blocked = True
                continue
            self.kv.allocate(request.request_id, chunk_tokens)
            batch.add(
                ScheduledChunk(
                    request=request,
                    prefix_tokens=request.prefill_progress,
                    new_tokens=chunk_tokens,
                )
            )
            budget -= chunk_tokens
        return budget

    def _admit_waiting(self, batch: IterationBatch, budget: int, now: float) -> int:
        while budget > 0 and self.waiting and len(self.running) < self.config.max_running_requests:
            request = self.waiting[0]
            if request.is_stalled(now):
                break
            chunk_tokens = min(budget, request.remaining_prefill_tokens)
            chunk_tokens = self._fit_to_memory(request, chunk_tokens)
            if chunk_tokens <= 0:
                # Head-of-line blocking: FCFS admission does not skip ahead.
                self.memory_blocked = True
                break
            self.waiting.popleft()
            request.state = RequestState.RUNNING
            self._add_running(request)
            self.kv.allocate(request.request_id, chunk_tokens)
            batch.add(
                ScheduledChunk(
                    request=request,
                    prefix_tokens=request.prefill_progress,
                    new_tokens=chunk_tokens,
                )
            )
            budget -= chunk_tokens
        return budget

    def _fit_to_memory(self, request: Request, desired_tokens: int) -> int:
        """Largest prefix of ``desired_tokens`` the KV cache can hold now."""
        if desired_tokens <= 0:
            return 0
        if self.kv.can_allocate(request.request_id, desired_tokens):
            return desired_tokens
        current = self.kv.tokens_of(request.request_id)
        slack_in_tail = self.kv.blocks_for_tokens(current) * self.kv.block_size - current
        available = slack_in_tail + self.kv.free_blocks * self.kv.block_size
        return max(0, min(desired_tokens, available))

    # ------------------------------------------------------------------
    # Preemption
    # ------------------------------------------------------------------
    def _make_room(self, for_request: Request, tokens_needed: int, now: float) -> bool:
        """Preempt later-arrived requests until ``for_request`` fits."""
        while not self.kv.can_allocate(for_request.request_id, tokens_needed):
            victim = self._pick_victim(exclude=for_request)
            if victim is None:
                return False
            self._preempt(victim, now)
        return True

    def _pick_victim(self, exclude: Request) -> Optional[Request]:
        """Lowest-priority (latest-arrived) running request strictly behind
        ``exclude`` in FCFS order — a request is never evicted for the sake
        of a lower-priority one."""
        candidates = [
            r
            for r in self.running
            if r is not exclude
            and not r.finished
            and (r.arrival_time, r.request_id) > (exclude.arrival_time, exclude.request_id)
        ]
        if not candidates:
            return None
        return max(candidates, key=lambda r: (r.arrival_time, r.request_id))

    def _preempt(self, victim: Request, now: float) -> None:
        if not self.is_running(victim):
            return
        self.kv.free(victim.request_id)
        self._remove_running(victim)
        if self.config.preemption_mode == PreemptionMode.RECOMPUTE:
            victim.reset_for_recompute()
            self.waiting.appendleft(victim)
            self.preemption_count += 1
            if self.hooks.on_preempt is not None:
                self.hooks.on_preempt(victim)
        else:
            victim.state = RequestState.SWAPPED
            victim.swap_count += 1
            self.swapped.append(victim)
            self.swap_out_count += 1
            if self.hooks.on_swap_out is not None:
                self.hooks.on_swap_out(victim)

    def _try_swap_in(self, now: float) -> None:
        """Bring back swapped requests once memory has pressure has eased."""
        if not self.swapped:
            return
        watermark_blocks = int(self.kv.num_blocks * self.config.swap_in_watermark)
        candidates = sorted(self.swapped, key=lambda r: (r.arrival_time, r.request_id))
        for request in candidates:
            if request.is_stalled(now):
                continue
            if len(self.running) >= self.config.max_running_requests:
                break
            tokens = request.context_tokens
            needed_blocks = self.kv.blocks_for_tokens(tokens)
            if self.kv.free_blocks - needed_blocks < watermark_blocks:
                break
            self.kv.allocate(request.request_id, tokens)
            self.swapped.remove(request)
            request.state = RequestState.RUNNING
            self._add_running(request)
            if self.hooks.on_swap_in is not None:
                self.hooks.on_swap_in(request)

    # ------------------------------------------------------------------
    # Batch completion
    # ------------------------------------------------------------------
    def complete_batch(self, batch: IterationBatch, end_time: float) -> List[Request]:
        """Apply the effects of an executed batch; returns finished requests."""
        finished: List[Request] = []
        finished_ids: set[int] = set()
        for chunk in batch:
            request = chunk.request
            if chunk.is_decode:
                request.record_output_token(end_time)
            else:
                request.record_prefill(chunk.new_tokens, end_time)
                if request.prefill_done and request.output_tokens == 0:
                    request.record_output_token(end_time)
            if request.finished and request.request_id not in finished_ids:
                finished.append(request)
                finished_ids.add(request.request_id)
        for request in finished:
            self.kv.free(request.request_id)
            self._remove_running(request)
        return finished

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Scheduler(waiting={self.num_waiting}, running={self.num_running}, "
            f"swapped={self.num_swapped}, kv_used={self.kv.used_blocks}/"
            f"{self.kv.num_blocks})"
        )
