"""Continuous-batching scheduler with chunked prefill.

This is the vLLM/Sarathi-class scheduler the paper's systems all share:
every iteration it fuses decode steps of running requests with prefill
chunks of queued requests into one batch bounded by a token budget, FCFS,
with block-granular KV accounting.  When the KV cache cannot hold the next
token it preempts the lowest-priority running request, either by discarding
its KV cache (vLLM's recompute mode) or by swapping it to host DRAM
(InferCept's mode); when even that is impossible, arriving requests queue —
which is exactly the overloading behaviour the paper studies.
"""

from __future__ import annotations

import enum
from bisect import insort
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

from repro.engine.batch import IterationBatch, ScheduledChunk
from repro.engine.request import Request, RequestState
from repro.memory.paged_kv import PagedKVCache


def _fcfs_key(request: Request) -> tuple:
    """FCFS priority: earlier arrivals first, ties broken by id."""
    return (request.arrival_time, request.request_id)


class PreemptionMode(enum.Enum):
    """What to do with a victim request when the KV cache is full."""

    RECOMPUTE = "recompute"
    SWAP = "swap"


@dataclass
class SchedulerConfig:
    """Scheduler tunables.

    Attributes:
        token_budget: maximum new tokens processed per iteration (chunked
            prefill budget).
        max_running_requests: cap on concurrently admitted requests.
        preemption_mode: recompute (vLLM default) or swap (InferCept).
        swap_in_watermark: fraction of KV blocks that must be free before a
            swapped-out request is brought back.
    """

    token_budget: int = 1024
    max_running_requests: int = 512
    preemption_mode: PreemptionMode = PreemptionMode.RECOMPUTE
    swap_in_watermark: float = 0.05

    def __post_init__(self) -> None:
        if self.token_budget <= 0:
            raise ValueError("token_budget must be positive")
        if self.max_running_requests <= 0:
            raise ValueError("max_running_requests must be positive")
        if not 0 <= self.swap_in_watermark < 1:
            raise ValueError("swap_in_watermark must be in [0, 1)")


@dataclass
class SchedulerHooks:
    """Callbacks the owning serving group installs.

    The scheduler makes policy decisions (who to preempt, who to swap);
    the group performs the mechanism (network / PCIe transfers, stalls).
    """

    on_preempt: Optional[Callable[[Request], None]] = None
    on_swap_out: Optional[Callable[[Request], None]] = None
    on_swap_in: Optional[Callable[[Request], None]] = None


class ContinuousBatchingScheduler:
    """Iteration-level scheduler for one serving group."""

    def __init__(
        self,
        kv_cache: PagedKVCache,
        config: Optional[SchedulerConfig] = None,
        hooks: Optional[SchedulerHooks] = None,
    ) -> None:
        self.kv = kv_cache
        self.config = config if config is not None else SchedulerConfig()
        self.hooks = hooks if hooks is not None else SchedulerHooks()
        self.waiting: Deque[Request] = deque()
        self.running: List[Request] = []
        self.swapped: List[Request] = []
        #: ids of requests in ``running`` — membership tests happen per
        #: candidate per iteration, so they must be O(1), not list scans.
        self._running_ids: set[int] = set()
        #: one reusable ``(chunk, table)`` pair per request: a running
        #: request decodes for hundreds of iterations and only its prefix
        #: changes between them, so the chunk object is recycled instead of
        #: reallocated, and its block table rides along to spare a lookup.
        #: Consumers (latency model, completion, tracer, listeners) all read
        #: chunks within the iteration that scheduled them, before the next
        #: ``form_batch`` can touch the prefix again.  Entries are dropped in
        #: ``_remove_running``: every path that can replace a request's block
        #: table (preemption, swap-out, migration, finish) leaves the running
        #: set first, so a live entry's table is always current.
        self._decode_chunks: Dict[int, tuple] = {}
        #: ``running`` maintained in FCFS order ``(arrival_time, request_id)``.
        #: Batch formation and victim selection consume the running set in
        #: priority order every iteration; keeping a sorted sibling list
        #: (updated on the rare add/remove) replaces a per-iteration sort.
        #: ``running`` itself keeps insertion order because reconfiguration
        #: paths (KV exchange, fault recovery, group transfers) iterate it
        #: in that order and their outcomes depend on it.
        self._running_fcfs: List[Request] = []
        #: True when the last ``form_batch`` had to leave work unscheduled
        #: because of insufficient KV memory (overload signal).
        self.memory_blocked: bool = False
        #: cumulative number of preemptions / swaps performed.
        self.preemption_count: int = 0
        self.swap_out_count: int = 0

    # ------------------------------------------------------------------
    # Request intake / removal
    # ------------------------------------------------------------------
    def add_request(self, request: Request) -> None:
        """Enqueue a newly-arrived request (FCFS)."""
        request.state = RequestState.QUEUED
        self.waiting.append(request)

    def add_running(self, request: Request, kv_tokens: int) -> None:
        """Adopt a request that already has ``kv_tokens`` of KV cache.

        Used when requests move between groups (migration, group merges);
        the caller guarantees the KV content is or will be present.
        """
        if kv_tokens > 0:
            self.kv.allocate(request.request_id, kv_tokens)
        request.state = RequestState.RUNNING
        self._add_running(request)

    def remove_request(self, request: Request) -> int:
        """Remove a request from all queues; returns its freed KV tokens."""
        freed_tokens = self.kv.tokens_of(request.request_id)
        self.kv.free(request.request_id)
        self._remove_running(request)
        if request in self.swapped:
            self.swapped.remove(request)
        try:
            self.waiting.remove(request)
        except ValueError:
            pass
        return freed_tokens

    def _add_running(self, request: Request) -> None:
        self.running.append(request)
        insort(self._running_fcfs, request, key=_fcfs_key)
        self._running_ids.add(request.request_id)

    def _remove_running(self, request: Request) -> None:
        if request.request_id in self._running_ids:
            self.running.remove(request)
            self._running_fcfs.remove(request)
            self._running_ids.discard(request.request_id)
            self._decode_chunks.pop(request.request_id, None)

    def is_running(self, request: Request) -> bool:
        """O(1) membership test against the running list."""
        return request.request_id in self._running_ids

    # ------------------------------------------------------------------
    # Load queries (used by dispatcher / monitor)
    # ------------------------------------------------------------------
    @property
    def num_waiting(self) -> int:
        return len(self.waiting)

    @property
    def num_running(self) -> int:
        return len(self.running)

    @property
    def num_swapped(self) -> int:
        return len(self.swapped)

    def used_kv_tokens(self) -> int:
        return self.kv.used_tokens

    def queued_demand_tokens(self) -> int:
        """KV tokens the queued (and swapped) requests will need to start.

        The loops inline :attr:`Request.remaining_prefill_tokens` and
        :attr:`Request.context_tokens`: the dispatcher and monitor query the
        demand for every group on every arrival/tick, and under overload the
        waiting queue is long enough that per-element property-descriptor
        calls dominate the query.
        """
        demand = 0
        for r in self.waiting:
            remaining = r.prefill_target - r.prefill_progress
            if remaining > 0:
                demand += remaining
        for r in self.swapped:
            beyond = r.prompt_tokens + r.output_tokens - r.prefill_target
            demand += r.prefill_progress + (beyond if beyond > 0 else 0)
        return demand

    def total_demand_tokens(self) -> int:
        """In-processing plus head-of-line demand (the paper's load metric).

        Running requests count their resident KV plus the prefill they still
        have to ingest; queued and swapped requests count in full.
        """
        tables = self.kv._tables
        running_remaining = 0
        for r in self.running:
            table = tables.get(r.request_id)
            deficit = r.prefill_target - (table.num_tokens if table is not None else 0)
            if deficit > 0:
                running_remaining += deficit
        return self.kv.used_tokens + running_remaining + self.queued_demand_tokens()

    def has_pending_work(self, now: float) -> bool:
        """Is there any work that could be scheduled at or after ``now``?"""
        if self.waiting:
            return True
        for request in self.running:
            if not request.finished:
                return True
        return bool(self.swapped)

    def next_stall_expiry(self, now: float) -> Optional[float]:
        """Earliest future time at which a stalled request becomes runnable."""
        times = [
            r.stall_until
            for r in list(self.running) + list(self.waiting)
            if r.stall_until > now
        ]
        return min(times) if times else None

    # ------------------------------------------------------------------
    # Batch formation
    # ------------------------------------------------------------------
    def form_batch(self, now: float) -> IterationBatch:
        """Build the next iteration's batch (decodes first, then prefill)."""
        self.memory_blocked = False
        batch = IterationBatch()
        budget = self.config.token_budget

        self._try_swap_in(now)

        budget = self._schedule_decodes(batch, budget, now)
        budget = self._schedule_running_prefills(batch, budget, now)
        self._admit_waiting(batch, budget, now)
        return batch

    def _schedule_decodes(self, batch: IterationBatch, budget: int, now: float) -> int:
        # The hottest loop of the simulation: one pass per running request
        # per iteration.  ``_running_fcfs`` is already in FCFS order (no
        # per-iteration sort), the state checks inline the ``prefill_done``
        # / ``finished`` / ``is_stalled`` properties, and the one-token KV
        # grow goes through the allocator's ``append_token`` fast path.
        finished_state = RequestState.FINISHED
        candidates = [
            r
            for r in self._running_fcfs
            if r.prefill_progress >= r.prefill_target
            and r.state is not finished_state
            and now >= r.stall_until
        ]
        kv = self.kv
        tables = kv._tables
        block_size = kv.block_size
        running_ids = self._running_ids
        chunk_append = batch.chunks.append
        decode_chunks = self._decode_chunks
        # Candidates are all running when the pass starts; only a preemption
        # inside this loop can evict one, so the membership re-check is
        # skipped until the first eviction happens.
        evicted = False
        for request in candidates:
            if budget <= 0:
                break
            rid = request.request_id
            if evicted and rid not in running_ids:
                # Already evicted earlier in this pass to make room for a
                # higher-priority request.
                continue
            entry = decode_chunks.get(rid)
            if entry is not None and entry[0].request is request:
                chunk, table = entry
                # Steady-state decode: the cached table is current (entries
                # are invalidated whenever the request leaves running), so
                # the one-token KV grow touches no dict at all.
                if table.num_tokens < table.num_blocks * block_size:
                    table.num_tokens += 1
                    kv._used_tokens += 1
                elif kv._used_blocks < kv._num_blocks:
                    table.num_blocks += 1
                    table.num_tokens += 1
                    kv._used_blocks += 1
                    kv._used_tokens += 1
                else:
                    if not self._make_room(request, 1, now):
                        # No lower-priority victim exists: the request itself
                        # is the lowest priority one, so it gets preempted
                        # (vLLM's behaviour) rather than holding memory.
                        self.memory_blocked = True
                        self._preempt(request, now)
                        evicted = True
                        continue
                    evicted = True
                    if rid not in running_ids:
                        continue
                    kv.allocate(rid, 1)
                beyond = request.prompt_tokens + request.output_tokens - request.prefill_target
                chunk.prefix_tokens = request.prefill_progress + (beyond if beyond > 0 else 0)
                chunk_append(chunk)
                budget -= 1
                continue
            # First decode of this request since it (re-)entered running:
            # inlined ``kv.append_token(rid)`` with the table looked up once.
            table = tables.get(rid)
            if table is not None and table.num_tokens < table.num_blocks * block_size:
                table.num_tokens += 1
                kv._used_tokens += 1
            elif table is not None and kv._used_blocks < kv._num_blocks:
                table.num_blocks += 1
                table.num_tokens += 1
                kv._used_blocks += 1
                kv._used_tokens += 1
            elif kv.append_token(rid) is None:
                if not self._make_room(request, 1, now):
                    self.memory_blocked = True
                    self._preempt(request, now)
                    evicted = True
                    continue
                evicted = True
                if rid not in running_ids:
                    continue
                kv.allocate(rid, 1)
            # Inlined ``request.context_tokens`` (prefix before this token).
            beyond = request.prompt_tokens + request.output_tokens - request.prefill_target
            prefix = request.prefill_progress + (beyond if beyond > 0 else 0)
            chunk = ScheduledChunk(request, prefix, 1, True)
            table = tables.get(rid)
            decode_chunks[rid] = (chunk, table)
            chunk_append(chunk)
            budget -= 1
        return budget

    def _schedule_running_prefills(self, batch: IterationBatch, budget: int, now: float) -> int:
        # Inlined ``prefill_done`` / ``is_stalled``: this comprehension also
        # visits every running request each iteration.
        candidates = [
            r
            for r in self._running_fcfs
            if r.prefill_progress < r.prefill_target and now >= r.stall_until
        ]
        for request in candidates:
            if budget <= 0:
                break
            if not self.is_running(request):
                continue
            chunk_tokens = min(budget, request.remaining_prefill_tokens)
            chunk_tokens = self._fit_to_memory(request, chunk_tokens)
            if chunk_tokens <= 0:
                self.memory_blocked = True
                continue
            self.kv.allocate(request.request_id, chunk_tokens)
            batch.add(
                ScheduledChunk(
                    request=request,
                    prefix_tokens=request.prefill_progress,
                    new_tokens=chunk_tokens,
                )
            )
            budget -= chunk_tokens
        return budget

    def _admit_waiting(self, batch: IterationBatch, budget: int, now: float) -> int:
        while budget > 0 and self.waiting and len(self.running) < self.config.max_running_requests:
            request = self.waiting[0]
            if request.is_stalled(now):
                break
            chunk_tokens = min(budget, request.remaining_prefill_tokens)
            chunk_tokens = self._fit_to_memory(request, chunk_tokens)
            if chunk_tokens <= 0:
                # Head-of-line blocking: FCFS admission does not skip ahead.
                self.memory_blocked = True
                break
            self.waiting.popleft()
            request.state = RequestState.RUNNING
            self._add_running(request)
            self.kv.allocate(request.request_id, chunk_tokens)
            batch.add(
                ScheduledChunk(
                    request=request,
                    prefix_tokens=request.prefill_progress,
                    new_tokens=chunk_tokens,
                )
            )
            budget -= chunk_tokens
        return budget

    def _fit_to_memory(self, request: Request, desired_tokens: int) -> int:
        """Largest prefix of ``desired_tokens`` the KV cache can hold now."""
        if desired_tokens <= 0:
            return 0
        if self.kv.can_allocate(request.request_id, desired_tokens):
            return desired_tokens
        current = self.kv.tokens_of(request.request_id)
        slack_in_tail = self.kv.blocks_for_tokens(current) * self.kv.block_size - current
        available = slack_in_tail + self.kv.free_blocks * self.kv.block_size
        return max(0, min(desired_tokens, available))

    # ------------------------------------------------------------------
    # Preemption
    # ------------------------------------------------------------------
    def _make_room(self, for_request: Request, tokens_needed: int, now: float) -> bool:
        """Preempt later-arrived requests until ``for_request`` fits."""
        while not self.kv.can_allocate(for_request.request_id, tokens_needed):
            victim = self._pick_victim(exclude=for_request)
            if victim is None:
                return False
            self._preempt(victim, now)
        return True

    def _pick_victim(self, exclude: Request) -> Optional[Request]:
        """Lowest-priority (latest-arrived) running request strictly behind
        ``exclude`` in FCFS order — a request is never evicted for the sake
        of a lower-priority one.

        ``_running_fcfs`` is sorted by ``(arrival_time, request_id)`` and
        that key is unique, so the victim is the last unfinished entry with
        a key greater than ``exclude``'s; scanning from the tail finds it
        without materialising and maxing a candidate list.
        """
        exclude_key = (exclude.arrival_time, exclude.request_id)
        finished_state = RequestState.FINISHED
        for r in reversed(self._running_fcfs):
            if (r.arrival_time, r.request_id) <= exclude_key:
                break
            if r.state is not finished_state:
                return r
        return None

    def _preempt(self, victim: Request, now: float) -> None:
        if not self.is_running(victim):
            return
        self.kv.free(victim.request_id)
        self._remove_running(victim)
        if self.config.preemption_mode == PreemptionMode.RECOMPUTE:
            victim.reset_for_recompute()
            self.waiting.appendleft(victim)
            self.preemption_count += 1
            if self.hooks.on_preempt is not None:
                self.hooks.on_preempt(victim)
        else:
            victim.state = RequestState.SWAPPED
            victim.swap_count += 1
            self.swapped.append(victim)
            self.swap_out_count += 1
            if self.hooks.on_swap_out is not None:
                self.hooks.on_swap_out(victim)

    def _try_swap_in(self, now: float) -> None:
        """Bring back swapped requests once memory has pressure has eased."""
        if not self.swapped:
            return
        watermark_blocks = int(self.kv.num_blocks * self.config.swap_in_watermark)
        candidates = sorted(self.swapped, key=lambda r: (r.arrival_time, r.request_id))
        for request in candidates:
            if request.is_stalled(now):
                continue
            if len(self.running) >= self.config.max_running_requests:
                break
            tokens = request.context_tokens
            needed_blocks = self.kv.blocks_for_tokens(tokens)
            if self.kv.free_blocks - needed_blocks < watermark_blocks:
                break
            self.kv.allocate(request.request_id, tokens)
            self.swapped.remove(request)
            request.state = RequestState.RUNNING
            self._add_running(request)
            if self.hooks.on_swap_in is not None:
                self.hooks.on_swap_in(request)

    # ------------------------------------------------------------------
    # Batch completion
    # ------------------------------------------------------------------
    def complete_batch(self, batch: IterationBatch, end_time: float) -> List[Request]:
        """Apply the effects of an executed batch; returns finished requests."""
        finished: List[Request] = []
        finished_ids: set[int] = set()
        finished_state = RequestState.FINISHED
        for chunk in batch.chunks:
            request = chunk.request
            if chunk.is_decode:
                # Inlined ``request.record_output_token(end_time)``: one call
                # per generated token of the whole simulation.
                if request.first_token_time is None:
                    request.first_token_time = end_time
                tokens = request.output_tokens + 1
                request.output_tokens = tokens
                request.token_times.append(end_time)
                if tokens >= request.max_output_tokens:
                    request.state = finished_state
                    request.finish_time = end_time
            else:
                request.record_prefill(chunk.new_tokens, end_time)
                if request.output_tokens == 0 and request.prefill_progress >= request.prefill_target:
                    request.record_output_token(end_time)
            if request.state is finished_state and request.request_id not in finished_ids:
                finished.append(request)
                finished_ids.add(request.request_id)
        for request in finished:
            self.kv.free(request.request_id)
            self._remove_running(request)
        return finished

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Scheduler(waiting={self.num_waiting}, running={self.num_running}, "
            f"swapped={self.num_swapped}, kv_used={self.kv.used_blocks}/"
            f"{self.kv.num_blocks})"
        )
