"""Tensor-parallelism cost helpers.

An instance serving a large model (e.g. Qwen-2.5-72B on 4 GPUs) splits every
layer across its GPUs.  Compute and memory bandwidth scale with the TP
degree; the price is two all-reduces of the activations per layer over the
scale-up (NVLink) fabric.  The paper treats a multi-GPU instance "as a whole
as a single logical GPU" — these helpers provide exactly that aggregation
plus the all-reduce overhead.
"""

from __future__ import annotations


def allreduce_time(size_bytes: float, bandwidth: float, degree: int, latency_s: float = 10e-6) -> float:
    """Time of one ring all-reduce of ``size_bytes`` across ``degree`` ranks.

    Uses the standard ``2*(n-1)/n`` ring cost plus a fixed per-operation
    launch latency.  Returns 0 for degree 1.
    """
    if degree <= 1:
        return 0.0
    if bandwidth <= 0:
        raise ValueError("bandwidth must be positive for multi-GPU instances")
    volume_factor = 2.0 * (degree - 1) / degree
    return latency_s + volume_factor * size_bytes / bandwidth


def tp_layer_comm_time(
    tokens: int,
    hidden_size: int,
    dtype_bytes: int,
    bandwidth: float,
    degree: int,
) -> float:
    """Communication time added to one layer by tensor parallelism.

    Each transformer layer performs two all-reduces of the activation
    (after attention and after the FFN).
    """
    if degree <= 1:
        return 0.0
    activation_bytes = tokens * hidden_size * dtype_bytes
    return 2.0 * allreduce_time(activation_bytes, bandwidth, degree)
