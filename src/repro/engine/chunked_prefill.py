"""Token-count-based microbatch formation (the state of the art, §4.3).

Modern pipelined engines (Sarathi-Serve, vLLM) form microbatches by token
count: chunks are packed greedily until a token budget is hit, splitting a
prefill chunk when it does not fit.  This balances *token counts*, not
execution time — the inefficiency Figure 9 illustrates and the lookahead
formulation fixes.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.engine.batch import MicroBatch, ScheduledChunk


def token_count_microbatches(
    chunks: Iterable[ScheduledChunk],
    token_budget: int,
) -> List[MicroBatch]:
    """Pack chunks into microbatches of at most ``token_budget`` new tokens.

    Chunks are taken in order (FCFS); a prefill chunk that exceeds the
    remaining budget of the current microbatch is split so the first part
    fills the microbatch and the rest starts the next one (chunked prefill).
    Decode chunks are never split.
    """
    if token_budget <= 0:
        raise ValueError("token_budget must be positive")

    # The packing loop visits every scheduled chunk of every pipelined
    # iteration; the current microbatch's chunk list is manipulated directly
    # so the per-chunk cost is one append and one counter update.
    microbatches: List[MicroBatch] = []
    current_chunks: List[ScheduledChunk] = []
    remaining = token_budget

    def flush() -> None:
        nonlocal current_chunks, remaining
        if current_chunks:
            microbatches.append(MicroBatch(chunks=current_chunks))
            current_chunks = []
        remaining = token_budget

    pending: List[ScheduledChunk] = list(chunks)
    num_pending = len(pending)
    index = 0
    while index < num_pending:
        chunk = pending[index]
        new_tokens = chunk.new_tokens
        if new_tokens <= remaining:
            current_chunks.append(chunk)
            remaining -= new_tokens
            index += 1
            if remaining == 0:
                flush()
            continue
        if chunk.is_decode or remaining == 0:
            # Decode chunks are atomic; start a fresh microbatch for them.
            flush()
            continue
        first, second = chunk.split(remaining)
        current_chunks.append(first)
        pending[index] = second
        flush()
    flush()
    return microbatches


def split_into_n_microbatches(
    chunks: Iterable[ScheduledChunk],
    num_microbatches: int,
) -> List[MicroBatch]:
    """Token-count split targeting a fixed number of microbatches.

    Used by the pipeline-parallel baseline: the iteration batch is split
    into ``num_microbatches`` pieces of (roughly) equal token count so every
    stage has work.  The split is still token-count based, i.e. it inherits
    the imbalance problem of Figure 9(b).
    """
    chunk_list = list(chunks)
    if num_microbatches <= 0:
        raise ValueError("num_microbatches must be positive")
    total_tokens = sum(c.new_tokens for c in chunk_list)
    if total_tokens == 0:
        return []
    budget = max(1, -(-total_tokens // num_microbatches))
    return token_count_microbatches(chunk_list, budget)
