"""Periodic simulated processes.

The global monitor (overload detection) and timeline metric samplers are
periodic activities; :class:`PeriodicProcess` wraps the rescheduling
boilerplate so those components can just supply a ``tick`` callback.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.simulation.event_loop import Event, EventLoop


class PeriodicProcess:
    """Runs a callback every ``interval`` seconds of simulation time."""

    def __init__(
        self,
        loop: EventLoop,
        interval: float,
        callback: Callable[[float], None],
        *,
        name: str = "periodic",
        priority: int = 0,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self._loop = loop
        self._interval = float(interval)
        self._callback = callback
        self._name = name
        self._priority = priority
        self._event: Optional[Event] = None
        self._stopped = True

    @property
    def interval(self) -> float:
        return self._interval

    @property
    def running(self) -> bool:
        return not self._stopped

    def start(self, initial_delay: Optional[float] = None) -> None:
        """Begin ticking.  The first tick fires after ``initial_delay``
        (defaults to one full interval)."""
        if not self._stopped:
            return
        self._stopped = False
        delay = self._interval if initial_delay is None else float(initial_delay)
        self._event = self._loop.schedule(
            delay, self._tick, priority=self._priority, name=self._name
        )

    def stop(self) -> None:
        """Stop ticking; a pending tick is cancelled."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _tick(self) -> None:
        if self._stopped:
            return
        self._callback(self._loop.now)
        if self._stopped:
            return
        self._event = self._loop.schedule(
            self._interval, self._tick, priority=self._priority, name=self._name
        )
