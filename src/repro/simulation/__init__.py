"""Discrete-event simulation engine.

The serving cluster is simulated at iteration granularity: each serving
group repeatedly executes one batched model iteration, whose duration is
computed by an analytical latency model.  The :class:`EventLoop` provides
the ordered execution of those iteration-completion events, request
arrivals, network-transfer completions and monitor ticks.
"""

from repro.simulation.clock import Clock
from repro.simulation.event_loop import Event, EventLoop
from repro.simulation.process import PeriodicProcess
from repro.simulation.rng import SeededRNG

__all__ = ["Clock", "Event", "EventLoop", "PeriodicProcess", "SeededRNG"]
