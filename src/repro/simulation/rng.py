"""Deterministic random number generation for simulations.

Every stochastic component (trace generation, dataset sampling, jitter in
the latency model) draws from a :class:`SeededRNG` derived from a single
experiment seed, so repeated runs of an experiment are bit-identical.
"""

from __future__ import annotations

import hashlib

import numpy as np


class SeededRNG:
    """A named, seeded random generator.

    Child generators created with :meth:`child` derive their seed from the
    parent seed and the child's name, which keeps independent components'
    random streams stable even when the order in which they are constructed
    changes.
    """

    def __init__(self, seed: int, name: str = "root") -> None:
        self.seed = int(seed)
        self.name = name
        self._generator = np.random.default_rng(self._derive(seed, name))

    @staticmethod
    def _derive(seed: int, name: str) -> int:
        digest = hashlib.sha256(f"{seed}:{name}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "little")

    @property
    def generator(self) -> np.random.Generator:
        """The underlying numpy generator."""
        return self._generator

    def child(self, name: str) -> "SeededRNG":
        """Create an independent generator for a sub-component."""
        return SeededRNG(self.seed, f"{self.name}/{name}")

    # Convenience passthroughs used throughout the workloads package.
    def uniform(self, low: float = 0.0, high: float = 1.0, size=None):
        return self._generator.uniform(low, high, size)

    def exponential(self, scale: float, size=None):
        return self._generator.exponential(scale, size)

    def lognormal(self, mean: float, sigma: float, size=None):
        return self._generator.lognormal(mean, sigma, size)

    def normal(self, loc: float = 0.0, scale: float = 1.0, size=None):
        return self._generator.normal(loc, scale, size)

    def integers(self, low: int, high: int, size=None):
        return self._generator.integers(low, high, size)

    def choice(self, values, size=None, p=None):
        return self._generator.choice(values, size=size, p=p)

    def poisson(self, lam: float, size=None):
        return self._generator.poisson(lam, size)

    def geometric(self, p: float, size=None):
        return self._generator.geometric(p, size)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SeededRNG(seed={self.seed}, name={self.name!r})"
