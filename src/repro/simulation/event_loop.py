"""Event loop for the discrete-event simulation.

Events are callbacks scheduled at absolute simulation times.  Ties are
broken by (priority, insertion order) so the simulation is fully
deterministic for a given seed and schedule of calls.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional

from repro.simulation.clock import Clock

#: Sentinels folding the Optional ``until`` / ``max_events`` run() limits
#: into branch-free comparisons on the hot path.
_NO_HORIZON = float("inf")
_NO_LIMIT = float("inf")


class Event:
    """A scheduled callback.

    Events compare by ``(time, priority, seq)`` which is what the heap uses
    for ordering.  ``cancelled`` events stay in the heap but are skipped when
    popped (lazy deletion).  Slotted, with a hand-written ``__lt__`` that
    short-circuits on ``time``: heap siftup/siftdown compares events millions
    of times per simulation, and the tuple allocation a generated dataclass
    ``__lt__`` performs dominates otherwise.
    """

    __slots__ = ("time", "priority", "seq", "callback", "name", "cancelled")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[[], None],
        name: str = "",
        cancelled: bool = False,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.name = name
        self.cancelled = cancelled

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.seq < other.seq

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return (self.time, self.priority, self.seq) == (other.time, other.priority, other.seq)

    def cancel(self) -> None:
        """Mark the event so the loop skips it when its time comes."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Event(time={self.time!r}, priority={self.priority}, seq={self.seq}, "
            f"name={self.name!r}, cancelled={self.cancelled})"
        )


class EventLoop:
    """Priority-queue based discrete-event loop.

    The loop owns the simulation :class:`Clock`.  Components schedule
    callbacks with :meth:`schedule` (relative delay) or :meth:`schedule_at`
    (absolute time) and the loop runs them in timestamp order.
    """

    #: process-wide count of events executed by every loop instance; the
    #: benchmark harness reads deltas of this to meter simulated events/sec
    #: around code (e.g. an experiment) that builds its own loops internally.
    lifetime_events: int = 0

    #: process-wide sum of simulated seconds advanced by every ``run()``
    #: call (clock delta from entry to exit).  The benchmark harness reads
    #: deltas of this to report simulated time covered by code that builds
    #: its own loops internally, where a single loop's clock is unreachable.
    lifetime_sim_s: float = 0.0

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self.clock = clock if clock is not None else Clock()
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._events_executed = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self.clock.now

    @property
    def events_executed(self) -> int:
        """Number of events that have been run so far."""
        return self._events_executed

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for event in self._heap if not event.cancelled)

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        name: str = "",
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule event in the past: delay={delay}")
        return self.schedule_at(self.now + delay, callback, priority=priority, name=name)

    def schedule_at(
        self,
        timestamp: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        name: str = "",
    ) -> Event:
        """Schedule ``callback`` to run at absolute time ``timestamp``."""
        if timestamp < self.now:
            raise ValueError(
                f"cannot schedule event in the past: now={self.now}, at={timestamp}"
            )
        # Positional construction: this allocates one Event per scheduled
        # callback, which is the dominant remaining allocation of the loop.
        event = Event(float(timestamp), priority, next(self._counter), callback, name)
        heapq.heappush(self._heap, event)
        return event

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if the queue is empty."""
        self._discard_cancelled()
        if not self._heap:
            return None
        return self._heap[0].time

    def step(self) -> bool:
        """Run the single next event.  Returns False when nothing is queued."""
        self._discard_cancelled()
        if not self._heap:
            return False
        event = heapq.heappop(self._heap)
        self.clock.advance_to(event.time)
        self._events_executed += 1
        EventLoop.lifetime_events += 1
        event.callback()
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have executed.

        Returns the number of events executed by this call.
        """
        executed = 0
        entered_at = self.clock.now
        self._running = True
        # Local aliases: this loop pops every event of the simulation, so
        # attribute lookups on the hot path are hoisted out of it, the
        # Optional horizon/limit checks are folded into plain float/int
        # comparisons, and the instance/class counters are updated once on
        # the way out instead of per event.
        heap = self._heap
        pop = heapq.heappop
        advance = self.clock.advance_to
        horizon = until if until is not None else _NO_HORIZON
        limit = max_events if max_events is not None else _NO_LIMIT
        try:
            while executed < limit:
                while heap and heap[0].cancelled:
                    pop(heap)
                if not heap:
                    break
                batch_time = heap[0].time
                if batch_time > horizon:
                    # Nothing else happens inside the horizon; park the clock
                    # at the horizon so callers observe a consistent end time.
                    advance(until)
                    break
                # Batched same-timestamp dispatch: the clock moves once, then
                # every event at exactly ``batch_time`` drains in one inner
                # loop — including events a callback schedules *at* the
                # current time (zero-delay kicks), which land behind the
                # already-queued ones in seq order exactly as before.  This
                # amortises the advance/horizon bookkeeping over the burst of
                # simultaneous events that zero-delay scheduling produces.
                advance(batch_time)
                while executed < limit:
                    event = pop(heap)
                    event.callback()
                    executed += 1
                    while heap and heap[0].cancelled:
                        pop(heap)
                    if not heap or heap[0].time != batch_time:
                        break
        finally:
            self._running = False
            self._events_executed += executed
            EventLoop.lifetime_events += executed
            EventLoop.lifetime_sim_s += self.clock.now - entered_at
        return executed

    def _discard_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EventLoop(now={self.now:.6f}, pending={self.pending}, "
            f"executed={self._events_executed})"
        )
