"""Simulation clock.

The clock is a tiny mutable holder of the current simulation time.  It is
owned by the :class:`~repro.simulation.event_loop.EventLoop` and shared (by
reference) with every component that needs to timestamp events, so that all
components observe a single consistent notion of "now".
"""

from __future__ import annotations


class Clock:
    """Monotonic simulation clock measured in seconds.

    ``now`` is a plain attribute, not a property: it is read on every event
    scheduled or executed, and the descriptor hop is measurable at that
    frequency.  All writes funnel through :meth:`advance_to` / :meth:`reset`,
    which enforce monotonicity.
    """

    __slots__ = ("now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start at negative time: {start}")
        self.now: float = float(start)

    def advance_to(self, timestamp: float) -> None:
        """Move the clock forward to ``timestamp``.

        Raises:
            ValueError: if ``timestamp`` is earlier than the current time.
        """
        if timestamp < self.now:
            raise ValueError(
                f"clock cannot move backwards: now={self.now:.6f}, "
                f"requested={timestamp:.6f}"
            )
        self.now = float(timestamp)

    def reset(self, start: float = 0.0) -> None:
        """Reset the clock, e.g. between independent simulation runs."""
        if start < 0:
            raise ValueError(f"clock cannot start at negative time: {start}")
        self.now = float(start)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clock(now={self.now:.6f})"
