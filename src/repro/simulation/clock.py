"""Simulation clock.

The clock is a tiny mutable holder of the current simulation time.  It is
owned by the :class:`~repro.simulation.event_loop.EventLoop` and shared (by
reference) with every component that needs to timestamp events, so that all
components observe a single consistent notion of "now".
"""

from __future__ import annotations


class Clock:
    """Monotonic simulation clock measured in seconds."""

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start at negative time: {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def advance_to(self, timestamp: float) -> None:
        """Move the clock forward to ``timestamp``.

        Raises:
            ValueError: if ``timestamp`` is earlier than the current time.
        """
        if timestamp < self._now:
            raise ValueError(
                f"clock cannot move backwards: now={self._now:.6f}, "
                f"requested={timestamp:.6f}"
            )
        self._now = float(timestamp)

    def reset(self, start: float = 0.0) -> None:
        """Reset the clock, e.g. between independent simulation runs."""
        if start < 0:
            raise ValueError(f"clock cannot start at negative time: {start}")
        self._now = float(start)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clock(now={self._now:.6f})"
