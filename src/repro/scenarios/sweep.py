"""Scenario × policy sweep, executed by the unified sweep engine.

Runs a grid of registered scenarios against a set of overload policies and
aggregates per-cell TTFT/TPOT percentiles, throughput and SLO attainment
into a stable-schema ``SCENARIO_results.json`` document
(:mod:`repro.scenarios.schema`).

Execution is delegated to :mod:`repro.sweeps`: every cell becomes a
:class:`~repro.sweeps.task.SweepTask` whose content hash covers the
scenario fingerprint, policy, scale, fleet preset, seed and ``repro``
version — so with caching enabled (``use_cache=True``, the CLI default)
an unchanged cell is a cache hit and a rerun recomputes only changed
cells.  Misses fan out across the engine's shared warm worker pool; each
worker builds its own :class:`~repro.serving.ClusterServingSystem` from
scratch, so cells share no state and the grid scales with cores.  Workers
receive the :class:`ScenarioSpec` itself (not just a name), so scenarios
registered at run time survive ``spawn``/``forkserver`` start methods too
— provided their workload factory is a module-level function the worker
can unpickle, which every built-in is.

Determinism: every cell is seeded independently of execution order,
results are normalised through JSON whether they were computed or served
from cache, and the document is assembled in grid order — so the emitted
document is bit-identical across runs, across parallel vs. sequential
execution, and across cold vs. warm caches, except for the wall-clock and
cache-accounting fields (see
:func:`repro.scenarios.schema.strip_wall_clock`).
"""

from __future__ import annotations

import dataclasses
import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.experiments.runner import ExperimentScale
from repro.cluster.specs import cluster_a_spec, cluster_b_spec
from repro.fleet.config import fleet_preset
from repro.policies import make_policy
from repro.scenarios.registry import ScenarioSpec, get_scenario, list_scenarios
from repro.scenarios.schema import SCHEMA_VERSION
from repro.serving.config import ServingConfig
from repro.serving.system import ClusterServingSystem
from repro.sweeps import ResultCache, SweepTask, run_tasks
from repro.version import __version__
from repro.workloads.slo import LatencyRecord, baseline_p50, slo_violation_ratio

#: Default sweep scales; ``quick`` is the one the CLI acceptance run uses.
QUICK_SWEEP_SCALE = ExperimentScale(
    name="scenarios-quick",
    num_instances=2,
    trace_duration_s=30.0,
    drain_timeout_s=30.0,
)

FULL_SWEEP_SCALE = ExperimentScale(
    name="scenarios-full",
    num_instances=4,
    trace_duration_s=90.0,
    drain_timeout_s=90.0,
)

SWEEP_SCALES: Dict[str, ExperimentScale] = {
    "quick": QUICK_SWEEP_SCALE,
    "full": FULL_SWEEP_SCALE,
}

#: Default output location: the repository root, next to BENCH_results.json.
DEFAULT_OUTPUT = Path(__file__).resolve().parents[3] / "SCENARIO_results.json"


@dataclass(frozen=True)
class CellResult:
    """Raw outcome of one scenario × policy cell, before SLO aggregation.

    ``latencies`` holds one ``(ttft, mean_tpot)`` pair per request (``None``
    where a request never reached that milestone) so the aggregator can
    derive cross-policy SLO baselines without shipping full records between
    processes.
    """

    scenario: str
    policy: str
    policy_name: str
    workload: str
    requests: int
    finished: int
    completion_ratio: float
    summary: Dict[str, float]
    latencies: Tuple[Tuple[Optional[float], Optional[float]], ...]
    wall_s: float


def build_cell_config(
    spec: ScenarioSpec, scale: ExperimentScale, *, seed: int = 42
) -> ServingConfig:
    """ServingConfig for one scenario at one scale (cluster A for 1-GPU
    instances, cluster B for multi-GPU instances, mirroring the presets)."""
    if spec.gpus_per_instance > 1:
        instances_per_server = max(1, 8 // spec.gpus_per_instance)
        servers = max(1, -(-scale.num_instances // instances_per_server))
        cluster = cluster_b_spec(num_servers=servers)
    else:
        cluster = cluster_a_spec(num_servers=scale.num_instances)
    return ServingConfig(
        model=spec.model,
        cluster=cluster,
        gpus_per_instance=spec.gpus_per_instance,
        token_budget=spec.token_budget,
        drain_timeout_s=scale.drain_timeout_s,
        seed=seed,
    )


def run_cell(
    scenario: Union[str, ScenarioSpec],
    policy_key: str,
    scale: ExperimentScale,
    seed: int = 42,
    fleet: Optional[str] = None,
    multicluster: Optional[str] = None,
) -> CellResult:
    """Run one scenario under one policy; the in-process cell primitive.

    Accepts the spec itself (what the sweep sends, so run-time
    registrations work under any start method) or a registry name.
    ``fleet`` optionally names a fleet preset
    (:func:`repro.fleet.config.fleet_preset`, e.g. ``"elastic"`` or
    ``"power_of_two_choices/elastic"``) so the cell runs behind the
    elastic-fleet layer instead of the plain dispatcher.  ``multicluster``
    optionally names a fleet-of-fleets preset
    (:func:`repro.multicluster.config.multicluster_preset`, e.g. ``"2"``
    or ``"2/locality_affinity/cost_weighted"``) so the cell runs through
    the sharded tier; it subsumes the fleet layer (every shard gets its
    own fleet controller), so the two options are mutually exclusive.
    ``scale.num_instances`` then sizes one shard, and the workload is
    generated for ``num_instances × clusters`` — the multicluster sweep's
    scaling convention.
    """
    if fleet is not None and multicluster is not None:
        raise ValueError(
            "fleet and multicluster are mutually exclusive: the multicluster "
            "tier builds a fleet controller per cluster shard"
        )
    spec = scenario if isinstance(scenario, ScenarioSpec) else get_scenario(scenario)
    config = build_cell_config(spec, scale, seed=seed)
    if multicluster is not None:
        # Local imports: repro.multicluster.sweep imports this module.
        from repro.multicluster.config import multicluster_preset
        from repro.multicluster.sweep import run_tier

        config.multicluster = multicluster_preset(multicluster)
        run = run_tier(spec, policy_key, config, scale, seed)
        mc_result = run.result
        return CellResult(
            scenario=spec.name,
            policy=policy_key,
            policy_name=mc_result.system_name,
            workload=run.workload_name,
            requests=mc_result.submitted_requests,
            finished=mc_result.finished_requests,
            completion_ratio=mc_result.completion_ratio,
            summary=mc_result.summary,
            latencies=tuple((r.ttft, r.mean_tpot) for r in mc_result.records),
            wall_s=run.wall_s,
        )
    policy = make_policy(policy_key)
    workload = spec.build_workload(scale, seed)
    if fleet is not None:
        config.fleet = fleet_preset(fleet)
    start = time.perf_counter()
    system = ClusterServingSystem(config, policy)
    result = system.run(workload)
    wall_s = time.perf_counter() - start
    return CellResult(
        scenario=spec.name,
        policy=policy_key,
        policy_name=policy.name,
        workload=workload.name,
        requests=result.submitted_requests,
        finished=result.finished_requests,
        completion_ratio=result.completion_ratio,
        summary=result.summary,
        latencies=tuple((r.ttft, r.mean_tpot) for r in result.records),
        wall_s=wall_s,
    )


# ----------------------------------------------------------------------
# Sweep-engine adapter
# ----------------------------------------------------------------------
def run_cell_payload(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """Sweep-engine runner: one scenario cell as a JSON-able payload."""
    cell = run_cell(
        params["scenario"],
        params["policy"],
        params["scale"],
        seed,
        params["fleet"],
        params.get("multicluster"),
    )
    return dataclasses.asdict(cell)


def _model_fingerprint(model) -> Dict[str, Any]:
    """JSON-able content fingerprint of a ``ModelSpec``.

    The full architecture, not just the name: two specs that differ only
    in (say) layer count or KV width produce different simulation results
    and must hash differently.
    """
    material = dataclasses.asdict(model)
    material["attention"] = model.attention.value
    material["default_parallelism"] = dataclasses.asdict(model.default_parallelism)
    return material


def spec_fingerprint(spec: ScenarioSpec) -> Dict[str, Any]:
    """JSON-able content fingerprint of a scenario (part of the cache key).

    Covers everything about the spec that influences a cell's result: the
    workload factory's import path plus the serving-side knobs and the
    full model architecture.  Code changes *inside* a factory are covered
    by the ``repro`` version in the task hash, not here.
    """
    factory = spec.workload_factory
    return {
        "name": spec.name,
        "factory": f"{getattr(factory, '__module__', '?')}:"
        f"{getattr(factory, '__qualname__', repr(factory))}",
        "model": _model_fingerprint(spec.model),
        "gpus_per_instance": spec.gpus_per_instance,
        "token_budget": spec.token_budget,
        "slo_scale": spec.slo_scale,
    }


def scenario_cell_task(
    spec: ScenarioSpec,
    policy: str,
    scale: ExperimentScale,
    seed: int,
    fleet: Optional[str],
    multicluster: Optional[str] = None,
) -> SweepTask:
    """Describe one scenario × policy cell as a cacheable sweep task."""
    return SweepTask(
        runner="repro.scenarios.sweep:run_cell_payload",
        params={
            "scenario": spec,
            "policy": policy,
            "scale": scale,
            "fleet": fleet,
            "multicluster": multicluster,
        },
        key={
            "kind": "scenario-cell",
            "schema_version": SCHEMA_VERSION,
            "scenario": spec_fingerprint(spec),
            "policy": policy,
            "scale": dataclasses.asdict(scale),
            "fleet": fleet,
            "multicluster": multicluster,
        },
        seed=seed,
        label=f"{spec.name}/{policy}",
    )


def _scenario_entries(
    spec: ScenarioSpec, cells: Sequence[Dict[str, Any]]
) -> List[Dict]:
    """Turn one scenario's cell payloads into schema entries with derived SLOs.

    Following the paper's Figure 13 convention, the SLO reference point is
    the best policy's P50 (TTFT and TPOT independently) *within this
    scenario*, scaled by the scenario's ``slo_scale``.
    """
    records_by_policy = {
        cell["policy"]: [LatencyRecord(t, p) for t, p in cell["latencies"]]
        for cell in cells
    }
    best_ttft, best_tpot = baseline_p50(records_by_policy)
    ttft_slo_s = spec.slo_scale * best_ttft
    tpot_slo_s = spec.slo_scale * best_tpot
    entries = []
    for cell in cells:
        violation = slo_violation_ratio(
            records_by_policy[cell["policy"]],
            ttft_slo_s=ttft_slo_s,
            tpot_slo_s=tpot_slo_s,
        )
        summary = cell["summary"]
        entries.append(
            {
                "scenario": cell["scenario"],
                "policy": cell["policy"],
                "policy_name": cell["policy_name"],
                "workload": cell["workload"],
                "requests": cell["requests"],
                "finished": cell["finished"],
                "completion_ratio": cell["completion_ratio"],
                "ttft_p50": summary["ttft_p50"],
                "ttft_p90": summary["ttft_p90"],
                "ttft_p99": summary["ttft_p99"],
                "tpot_p50": summary["tpot_p50"],
                "tpot_p90": summary["tpot_p90"],
                "tpot_p99": summary["tpot_p99"],
                "throughput_tokens_per_s": summary["throughput_tokens_per_s"],
                "slo_scale": spec.slo_scale,
                "ttft_slo_s": ttft_slo_s,
                "tpot_slo_s": tpot_slo_s,
                "slo_violation_ratio": violation,
                "slo_attainment": 1.0 - violation,
                "wall_s": cell["wall_s"],
            }
        )
    return entries


def run_sweep(
    *,
    scenarios: Optional[Sequence[str]] = None,
    policies: Optional[Sequence[str]] = None,
    scale: ExperimentScale = QUICK_SWEEP_SCALE,
    seed: int = 42,
    max_workers: Optional[int] = None,
    fleet: Optional[str] = None,
    multicluster: Optional[str] = None,
    use_cache: bool = False,
    cache_dir: Optional[Path] = None,
) -> Dict:
    """Sweep the scenario × policy grid; return the results document.

    Args:
        scenarios: scenario names (default: every registered scenario).
        policies: policy keys (``repro.policies.make_policy``) applied to
            every scenario; ``None`` sweeps each scenario under its own
            ``ScenarioSpec.policies`` set.
        scale: cluster size / trace length of every cell.
        seed: sweep seed; every cell derives its randomness from it.
        max_workers: worker processes; ``1`` runs cells inline (no pool),
            ``None`` sizes the pool to the grid (capped by the CPUs this
            process may use, cgroup limits included).
        fleet: optional fleet preset applied to every cell (the fleet
            axis; see :func:`repro.fleet.config.fleet_preset`).  ``None``
            keeps the classic plain-dispatcher cells.
        multicluster: optional fleet-of-fleets preset applied to every
            cell (see :func:`repro.multicluster.config.multicluster_preset`,
            e.g. ``"2/locality_affinity"``); mutually exclusive with
            ``fleet``.  ``None`` keeps single-cluster cells.
        use_cache: serve unchanged cells from the on-disk result cache
            and store fresh ones (the CLI enables this by default; the
            Python API defaults to off so tests and benchmarks measure
            real execution unless they opt in).
        cache_dir: cache location override (default ``.repro_cache/`` at
            the repository root, or ``$REPRO_CACHE_DIR``).
    """
    if fleet is not None:
        fleet_preset(fleet)  # fail fast on unknown presets
    if multicluster is not None:
        if fleet is not None:
            raise ValueError("fleet and multicluster are mutually exclusive")
        # Local import (cycle: repro.multicluster.sweep imports this module).
        from repro.multicluster.config import multicluster_preset

        multicluster_preset(multicluster)  # fail fast on unknown presets
    names = list(scenarios) if scenarios is not None else list_scenarios()
    unknown = [n for n in names if n not in list_scenarios()]
    if unknown:
        raise KeyError(f"unknown scenarios {unknown}; known: {', '.join(list_scenarios())}")
    if not names or (policies is not None and not policies):
        raise ValueError("sweep needs at least one scenario and one policy")
    if max_workers is not None and max_workers < 1:
        raise ValueError("max_workers must be >= 1")
    specs = [get_scenario(name) for name in names]
    tasks = [
        scenario_cell_task(spec, policy, scale, seed, fleet, multicluster)
        for spec in specs
        for policy in (policies if policies is not None else spec.policies)
    ]
    # Union of swept policy keys, first-seen order (for the document header).
    policy_list = list(dict.fromkeys(task.params["policy"] for task in tasks))

    cache = ResultCache(cache_dir) if use_cache else None
    start = time.perf_counter()
    outcome = run_tasks(tasks, max_workers=max_workers, cache=cache)
    wall_s_total = time.perf_counter() - start

    by_scenario: Dict[str, List[Dict[str, Any]]] = {name: [] for name in names}
    for cell in outcome.results:
        by_scenario[cell["scenario"]].append(cell)
    entries: List[Dict] = []
    for spec in specs:
        entries.extend(_scenario_entries(spec, by_scenario[spec.name]))

    return {
        "schema_version": SCHEMA_VERSION,
        "repro_version": __version__,
        "seed": seed,
        "scale": {
            "name": scale.name,
            "num_instances": scale.num_instances,
            "trace_duration_s": scale.trace_duration_s,
            "drain_timeout_s": scale.drain_timeout_s,
        },
        "scenarios": names,
        "policies": policy_list,
        "fleet": fleet,
        "multicluster": multicluster,
        "entries": entries,
        "cache_hits": outcome.cache_hits,
        "cache_misses": outcome.cache_misses,
        "wall_s_total": wall_s_total,
    }


def write_results(document: Dict, path: Optional[Path] = None) -> Path:
    """Write the document to ``SCENARIO_results.json`` (repo root by default)."""
    target = Path(path) if path is not None else DEFAULT_OUTPUT
    target.write_text(json.dumps(document, indent=2, sort_keys=False) + "\n")
    return target


def format_results(document: Dict) -> str:
    """Human-readable table of a sweep document."""
    scale = document["scale"]
    lines = [
        f"repro {document['repro_version']} · scale {scale['name']} "
        f"({scale['num_instances']} instances, {scale['trace_duration_s']:.0f}s trace) "
        f"· seed {document['seed']} · {len(document['scenarios'])} scenarios x "
        f"{len(document['policies'])} policies in {document['wall_s_total']:.1f}s",
        f"{'scenario':<18} {'policy':<12} {'reqs':>6} {'fin':>6} "
        f"{'ttft_p50':>9} {'tpot_p50':>9} {'tok/s':>8} {'slo_att':>8}",
    ]
    for entry in document["entries"]:
        lines.append(
            f"{entry['scenario']:<18} {entry['policy']:<12} "
            f"{entry['requests']:>6d} {entry['finished']:>6d} "
            f"{entry['ttft_p50']:>9.3f} {entry['tpot_p50']:>9.4f} "
            f"{entry['throughput_tokens_per_s']:>8.0f} {entry['slo_attainment']:>8.2f}"
        )
    return "\n".join(lines)
