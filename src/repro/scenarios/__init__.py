"""Scenario subsystem (``python -m repro.scenarios``).

Synthetic workload generators (Poisson, Markov-modulated bursts, diurnal
swings, spike trains, multi-tenant mixtures, long-context skew), a named
:class:`ScenarioSpec` registry with built-in stress scenarios, and a
process-parallel sweep runner that replays every scenario under every
overload policy and emits a stable-schema ``SCENARIO_results.json`` at the
repository root (schema: :mod:`repro.scenarios.schema`).
"""

from repro.scenarios.generators import (
    LONG_CONTEXT_SKEW_DATASET,
    diurnal_trace,
    long_context_dataset,
    markov_modulated_trace,
    multi_tenant_trace,
    multi_tenant_workload,
    poisson_trace,
    spike_train_trace,
    stamp_sessions,
)
from repro.scenarios.registry import (
    BUILTIN_SCENARIOS,
    DEFAULT_POLICY_SET,
    ScenarioSpec,
    get_scenario,
    list_scenarios,
    register_scenario,
)
from repro.scenarios.schema import (
    DOCUMENT_KEYS,
    ENTRY_KEYS,
    SCALE_KEYS,
    SCHEMA_VERSION,
    WALL_CLOCK_DOCUMENT_KEYS,
    WALL_CLOCK_ENTRY_KEYS,
    strip_wall_clock,
    validate_document,
)
from repro.scenarios.sweep import (
    DEFAULT_OUTPUT,
    FULL_SWEEP_SCALE,
    QUICK_SWEEP_SCALE,
    SWEEP_SCALES,
    CellResult,
    format_results,
    run_cell,
    run_cell_payload,
    run_sweep,
    scenario_cell_task,
    spec_fingerprint,
    write_results,
)

__all__ = [
    "BUILTIN_SCENARIOS",
    "CellResult",
    "DEFAULT_OUTPUT",
    "DEFAULT_POLICY_SET",
    "DOCUMENT_KEYS",
    "ENTRY_KEYS",
    "FULL_SWEEP_SCALE",
    "LONG_CONTEXT_SKEW_DATASET",
    "QUICK_SWEEP_SCALE",
    "SCALE_KEYS",
    "SCHEMA_VERSION",
    "SWEEP_SCALES",
    "ScenarioSpec",
    "WALL_CLOCK_DOCUMENT_KEYS",
    "WALL_CLOCK_ENTRY_KEYS",
    "diurnal_trace",
    "format_results",
    "get_scenario",
    "list_scenarios",
    "long_context_dataset",
    "markov_modulated_trace",
    "multi_tenant_trace",
    "multi_tenant_workload",
    "poisson_trace",
    "register_scenario",
    "run_cell",
    "run_cell_payload",
    "run_sweep",
    "scenario_cell_task",
    "spec_fingerprint",
    "spike_train_trace",
    "stamp_sessions",
    "strip_wall_clock",
    "validate_document",
    "write_results",
]
