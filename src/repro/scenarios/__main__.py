"""CLI entry point: ``python -m repro.scenarios``.

Sweeps the registered scenarios across the overload policies through the
unified sweep engine (:mod:`repro.sweeps`) and writes
``SCENARIO_results.json`` to the repository root (see ``--output``).
Unchanged cells are served from the on-disk result cache
(``.repro_cache/``), so a rerun recomputes only changed cells; disable
with ``--no-cache``, inspect with ``--cache-stats``, purge with
``--clear-cache``.  ``--list`` shows the registry.
"""

from __future__ import annotations

import argparse
import sys

from repro.policies import make_policy
from repro.scenarios.registry import DEFAULT_POLICY_SET, get_scenario, list_scenarios
from repro.scenarios.schema import validate_document
from repro.scenarios.sweep import (
    SWEEP_SCALES,
    format_results,
    run_sweep,
    write_results,
)
from repro.sweeps import effective_worker_count
from repro.sweeps.cli import add_cache_arguments, clear_cache, print_cache_stats


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios",
        description="Sweep synthetic stress scenarios across overload policies "
        "in parallel and write SCENARIO_results.json.",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SWEEP_SCALES),
        default="quick",
        help="sweep scale (default: quick)",
    )
    parser.add_argument(
        "--scenarios",
        nargs="*",
        default=None,
        metavar="NAME",
        help="subset of scenarios to sweep (default: all registered)",
    )
    parser.add_argument(
        "--policies",
        nargs="*",
        default=None,
        metavar="POLICY",
        help="policy keys applied to every scenario (default: each scenario's "
        f"own ScenarioSpec.policies set, usually {' '.join(DEFAULT_POLICY_SET)})",
    )
    parser.add_argument(
        "--fleet",
        default=None,
        metavar="PRESET",
        help="run every cell behind a fleet preset (e.g. 'elastic' or "
        "'power_of_two_choices/elastic'); default: plain dispatcher",
    )
    parser.add_argument(
        "--multicluster",
        default=None,
        metavar="PRESET",
        help="run every cell through the fleet-of-fleets tier (e.g. '2' or "
        "'2/locality_affinity/cost_weighted'); mutually exclusive with "
        "--fleet; default: single cluster",
    )
    parser.add_argument("--seed", type=int, default=42, help="sweep seed")
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes (default: min(grid size, CPU count))",
    )
    parser.add_argument(
        "--sequential",
        action="store_true",
        help="run every cell inline in this process (equivalent to --workers 1)",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="where to write SCENARIO_results.json (default: repository root)",
    )
    add_cache_arguments(parser)
    parser.add_argument(
        "--list", action="store_true", help="list registered scenarios and exit"
    )
    args = parser.parse_args(argv)

    if args.list:
        for name in list_scenarios():
            spec = get_scenario(name)
            print(f"{name:<20} {spec.description}")
        return 0
    if args.clear_cache:
        return clear_cache(args)

    try:
        for policy in args.policies or ():
            make_policy(policy)  # fail fast on typos before spawning workers
        max_workers = 1 if args.sequential else args.workers
        if max_workers is None:
            names = args.scenarios or list_scenarios()
            grid = sum(
                len(args.policies) if args.policies else len(get_scenario(n).policies)
                for n in names
                if n in list_scenarios()
            )
            max_workers = max(1, min(grid, effective_worker_count()))
        document = run_sweep(
            scenarios=args.scenarios,
            policies=args.policies,
            scale=SWEEP_SCALES[args.scale],
            seed=args.seed,
            max_workers=max_workers,
            fleet=args.fleet,
            multicluster=args.multicluster,
            use_cache=not args.no_cache,
            cache_dir=args.cache_dir,
        )
    except (KeyError, ValueError) as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    problems = validate_document(document)
    if problems:
        print("schema violations:", *problems, sep="\n  ", file=sys.stderr)
        return 1
    path = write_results(document, args.output)
    print(format_results(document))
    if args.cache_stats:
        print_cache_stats(document, args)
    print(f"\nwrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
