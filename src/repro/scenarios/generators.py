"""Synthetic arrival-trace and workload generators.

The paper's evaluation replays one upscaled BurstGPT trace; this module
opens the workload axis with parameterised synthetic processes so every
overload policy can be stress-tested across qualitatively different load
shapes:

* :func:`poisson_trace` — homogeneous Poisson arrivals (the steady-state
  control every queueing result assumes);
* :func:`markov_modulated_trace` — a two-state Markov-modulated Poisson
  process (calm/burst), the classic model for correlated bursty traffic;
* :func:`diurnal_trace` — sinusoidally rate-modulated arrivals (day/night
  load swing compressed into a simulable window);
* :func:`spike_train_trace` — periodic short spikes on a low base rate
  (cron-job and retry-storm traffic);
* :func:`multi_tenant_trace` / :func:`multi_tenant_workload` — interleave
  independent per-tenant traces (or full workloads with per-tenant
  datasets) into one cluster-level arrival stream;
* :func:`long_context_dataset` — a heavy-tailed prompt-length
  :class:`~repro.workloads.datasets.DatasetSpec` for long-context skew
  beyond LongBench.

Every generator draws only from :class:`~repro.simulation.rng.SeededRNG`
streams derived from the generator name, so traces are bit-reproducible
for a given seed and independent of call order.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Sequence, Tuple

from repro.simulation.rng import SeededRNG
from repro.workloads.datasets import DatasetSpec, build_workload
from repro.workloads.trace import ArrivalTrace, Workload, merge_workloads


def _thinning(
    duration_s: float,
    rate_fn: Callable[[float], float],
    max_rate: float,
    rng: SeededRNG,
) -> List[float]:
    """Lewis-Shedler thinning sampler for a bounded-rate Poisson process.

    Deliberately scalar: the candidate-gap exponential and the acceptance
    uniform alternate draws from one RNG stream, so a blocked (vectorised)
    sampler would consume the stream in a different order and produce a
    different — non-reproducible — trace for the same seed.  Length
    sampling (``repro.workloads.datasets.sample_lengths``) is the
    vectorised half of workload generation; arrival thinning stays exact.
    """
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    if max_rate <= 0:
        raise ValueError("max_rate must be positive")
    timestamps: List[float] = []
    time = 0.0
    while True:
        time += float(rng.exponential(1.0 / max_rate))
        if time >= duration_s:
            return timestamps
        if float(rng.uniform()) * max_rate <= rate_fn(time):
            timestamps.append(time)


def poisson_trace(
    *,
    rate: float,
    duration_s: float,
    seed: int = 42,
    name: str = "poisson",
) -> ArrivalTrace:
    """Homogeneous Poisson arrivals at ``rate`` requests/second."""
    if rate <= 0:
        raise ValueError("rate must be positive")
    rng = SeededRNG(seed, f"{name}-arrivals")
    timestamps = _thinning(duration_s, lambda t: rate, rate, rng)
    return ArrivalTrace(timestamps=timestamps, name=name)


def markov_modulated_trace(
    *,
    base_rate: float,
    burst_factor: float = 3.0,
    mean_calm_s: float = 30.0,
    mean_burst_s: float = 10.0,
    duration_s: float = 120.0,
    seed: int = 42,
    name: str = "mmpp",
) -> ArrivalTrace:
    """Two-state Markov-modulated Poisson process (calm ↔ burst).

    The process alternates between a calm state at ``base_rate`` and a
    burst state at ``base_rate * burst_factor``; dwell times in each state
    are exponential with the given means, so bursts arrive at random times
    and last random durations — correlated burstiness a single replayed
    spike cannot express.  State transitions and arrivals draw from
    separate child RNG streams so each is stable in isolation.
    """
    if base_rate <= 0 or burst_factor <= 0:
        raise ValueError("base_rate and burst_factor must be positive")
    if mean_calm_s <= 0 or mean_burst_s <= 0:
        raise ValueError("mean dwell times must be positive")
    rng = SeededRNG(seed, f"{name}-arrivals")
    state_rng = rng.child("states")
    # Pre-compute the piecewise-constant rate segments for the whole window.
    boundaries: List[Tuple[float, float]] = []  # (segment start, rate)
    time = 0.0
    bursting = False
    while time < duration_s:
        rate = base_rate * burst_factor if bursting else base_rate
        boundaries.append((time, rate))
        dwell = mean_burst_s if bursting else mean_calm_s
        time += float(state_rng.exponential(dwell))
        bursting = not bursting

    def rate_at(t: float) -> float:
        rate = boundaries[0][1]
        for start, segment_rate in boundaries:
            if start > t:
                break
            rate = segment_rate
        return rate

    max_rate = base_rate * max(burst_factor, 1.0)
    timestamps = _thinning(duration_s, rate_at, max_rate, rng.child("thinning"))
    return ArrivalTrace(timestamps=timestamps, name=name)


def diurnal_trace(
    *,
    mean_rate: float,
    amplitude: float = 0.6,
    period_s: float = 60.0,
    phase: float = -0.5 * math.pi,
    duration_s: float = 120.0,
    seed: int = 42,
    name: str = "diurnal",
) -> ArrivalTrace:
    """Sinusoidal diurnal load: λ(t) = mean·(1 + amplitude·sin(2πt/period + phase)).

    The default phase starts the window at the load trough, so a one-period
    trace ramps up to a peak and back down — the day/night swing scaled to
    simulation length.
    """
    if mean_rate <= 0:
        raise ValueError("mean_rate must be positive")
    if not 0.0 <= amplitude < 1.0:
        raise ValueError("amplitude must be in [0, 1)")
    if period_s <= 0:
        raise ValueError("period_s must be positive")
    rng = SeededRNG(seed, f"{name}-arrivals")
    two_pi = 2.0 * math.pi

    def rate_at(t: float) -> float:
        return mean_rate * (1.0 + amplitude * math.sin(two_pi * t / period_s + phase))

    max_rate = mean_rate * (1.0 + amplitude)
    timestamps = _thinning(duration_s, rate_at, max_rate, rng)
    return ArrivalTrace(timestamps=timestamps, name=name)


def spike_train_trace(
    *,
    base_rate: float,
    spike_factor: float = 4.0,
    spike_duration_s: float = 5.0,
    spike_period_s: float = 20.0,
    duration_s: float = 120.0,
    seed: int = 42,
    name: str = "spike-train",
) -> ArrivalTrace:
    """Periodic short spikes riding a low base rate.

    Every ``spike_period_s`` the rate jumps to ``base_rate * spike_factor``
    for ``spike_duration_s`` (first spike centred at half a period), the
    shape of cron-driven batch submissions and client retry storms.
    """
    if base_rate <= 0 or spike_factor <= 0:
        raise ValueError("base_rate and spike_factor must be positive")
    if spike_duration_s <= 0 or spike_period_s <= 0:
        raise ValueError("spike duration and period must be positive")
    if spike_duration_s >= spike_period_s:
        raise ValueError("spike_duration_s must be shorter than spike_period_s")
    rng = SeededRNG(seed, f"{name}-arrivals")
    first_start = 0.5 * spike_period_s

    def rate_at(t: float) -> float:
        offset = (t - first_start) % spike_period_s
        if t >= first_start and offset < spike_duration_s:
            return base_rate * spike_factor
        return base_rate

    max_rate = base_rate * max(spike_factor, 1.0)
    timestamps = _thinning(duration_s, rate_at, max_rate, rng)
    return ArrivalTrace(timestamps=timestamps, name=name)


def stamp_sessions(
    workload: Workload,
    *,
    mean_turns: float = 4.0,
    seed: int = 42,
    prefix: str = "",
) -> Workload:
    """Stamp ``session_id`` on every request, grouping arrivals into
    multi-turn sessions (in place; returns the workload for chaining).

    Models an open population of chat sessions: walking the requests in
    arrival order, each one either continues a currently-open session
    (uniformly chosen) or opens a new one; a new session's turn count is
    drawn so sessions average ``mean_turns`` turns, and a session closes
    once its turns are spent.  This gives the fleet layer's
    session-affinity router real session structure to exercise — repeated
    turns of one conversation that prefix-reuse could serve from the same
    group — instead of its SLO-class fallback buckets.

    Only the dedicated RNG stream below is consumed, so stamping never
    perturbs the arrival or length distributions, and equal (workload,
    seed) pairs are stamped bit-identically.
    """
    if mean_turns < 1.0:
        raise ValueError("mean_turns must be >= 1")
    rng = SeededRNG(seed, f"{prefix or workload.name}-sessions")
    continue_prob = 1.0 - 1.0 / mean_turns
    open_sessions: List[List] = []  # [session_id, remaining_turns]
    counter = 0
    label = prefix or workload.name
    for request in workload.requests:
        if open_sessions and float(rng.uniform()) < continue_prob:
            index = int(rng.integers(0, len(open_sessions)))
            session = open_sessions[index]
            request.session_id = session[0]
            session[1] -= 1
            if session[1] <= 0:
                open_sessions.pop(index)
        else:
            counter += 1
            session_id = f"{label}/s{counter:05d}"
            request.session_id = session_id
            # Geometric turn count with the configured mean; the first
            # turn is this request, the rest stay open for continuation.
            remaining = int(rng.geometric(1.0 / mean_turns)) - 1
            if remaining > 0:
                open_sessions.append([session_id, remaining])
    return workload


def multi_tenant_trace(
    traces: Sequence[ArrivalTrace], name: str = "multi-tenant"
) -> ArrivalTrace:
    """Interleave independent per-tenant traces into one arrival stream."""
    if not traces:
        raise ValueError("at least one tenant trace is required")
    timestamps: List[float] = []
    for trace in traces:
        timestamps.extend(trace.timestamps)
    return ArrivalTrace(timestamps=timestamps, name=name)


def multi_tenant_workload(
    tenants: Sequence[Tuple[ArrivalTrace, DatasetSpec]],
    *,
    seed: int = 42,
    name: str = "multi-tenant",
    session_turns: Optional[float] = None,
) -> Workload:
    """Interleave per-tenant (trace, dataset) pairs into one workload.

    Each tenant keeps its own length distribution and SLO class, so the
    merged stream mixes, e.g., short chat turns with long summarisation
    prompts — the regime where one tenant's burst evicts another's KV.
    ``session_turns`` additionally stamps each tenant's stream with
    multi-turn session structure (:func:`stamp_sessions`, sessions never
    span tenants) averaging that many turns per session.
    """
    if not tenants:
        raise ValueError("at least one tenant is required")
    workloads = [
        build_workload(trace, dataset, seed=seed, name=f"{name}/{trace.name}")
        for trace, dataset in tenants
    ]
    if session_turns is not None:
        for index, workload in enumerate(workloads):
            # The tenant index keys both the RNG stream and the id labels,
            # so tenants whose traces happen to share a name still get
            # independent session structure and disjoint session ids.
            stamp_sessions(
                workload,
                mean_turns=session_turns,
                seed=seed,
                prefix=f"{name}/t{index}/{tenants[index][0].name}",
            )
    return merge_workloads(workloads, name=name)


def long_context_dataset(
    *,
    mean_input_tokens: float = 9000.0,
    mean_output_tokens: float = 400.0,
    input_sigma: float = 1.15,
    output_sigma: float = 0.8,
    max_input_tokens: int = 32768,
    max_output_tokens: int = 2048,
    name: str = "LongContextSkew",
) -> DatasetSpec:
    """A heavy-tailed long-context length distribution.

    Compared to LongBench (mean ~5.9k tokens, σ=0.7) this pushes both the
    mean and the log-normal σ up, so a meaningful fraction of prompts land
    near the 32k cap — the skew that makes per-request KV demand wildly
    uneven and punishes policies that size decisions on averages.
    """
    return DatasetSpec(
        name=name,
        mean_input_tokens=mean_input_tokens,
        mean_output_tokens=mean_output_tokens,
        max_input_tokens=max_input_tokens,
        max_output_tokens=max_output_tokens,
        input_sigma=input_sigma,
        output_sigma=output_sigma,
        slo_class="summary",
    )


#: Default long-context-skew dataset used by the built-in scenario.
LONG_CONTEXT_SKEW_DATASET = long_context_dataset()
