"""Stable schema of ``SCENARIO_results.json``.

The scenario sweep runner emits one JSON document per run, mirroring the
``BENCH_results.json`` contract (:mod:`repro.bench.schema`): keys may be
*added* in later schema versions but the keys listed here are never renamed
or removed, and ``tests/test_scenarios.py`` pins them.

Determinism contract: for a fixed (scenarios, policies, scale, seed) the
document is bit-identical across runs — including across parallel and
sequential execution — *except* for the wall-clock keys listed in
:data:`WALL_CLOCK_ENTRY_KEYS` / :data:`WALL_CLOCK_DOCUMENT_KEYS`; use
:func:`strip_wall_clock` before comparing documents.

Top-level document::

    {
      "schema_version": 1,        # int, bumped on any breaking change
      "repro_version": "1.0.0",   # repro package version that produced it
      "seed": int,                # sweep seed
      "scale": {                  # ExperimentScale the sweep ran at
        "name": str,
        "num_instances": int,
        "trace_duration_s": float,
        "drain_timeout_s": float
      },
      "scenarios": [str, ...],    # scenario names swept, in order
      "policies": [str, ...],     # policy keys swept, in order
      "fleet": str | null,        # fleet preset applied to every cell
                                  # (optional/additive; null = plain dispatcher)
      "multicluster": str | null, # multicluster preset applied to every cell
                                  # (optional/additive; null = single cluster)
      "entries": [ScenarioEntry, ...],
      "cache_hits": int,          # cells served from .repro_cache (additive
                                  # in schema v1; 0 when caching is off)
      "cache_misses": int,        # cells actually executed this run
      "wall_s_total": float       # host wall-clock of the whole sweep
    }

Each entry (one scenario × policy cell)::

    {
      "scenario": str,            # registry name, e.g. "mmpp-bursty"
      "policy": str,              # policy key, e.g. "kunserve"
      "policy_name": str,         # display name, e.g. "KunServe"
      "workload": str,            # materialised workload name
      "requests": int,            # requests submitted
      "finished": int,            # requests finished before the horizon
      "completion_ratio": float,  # finished / requests
      "ttft_p50": float, "ttft_p90": float, "ttft_p99": float,   # seconds
      "tpot_p50": float, "tpot_p90": float, "tpot_p99": float,   # seconds
      "throughput_tokens_per_s": float,
      "slo_scale": float,         # scenario SLO factor (x best-policy P50)
      "ttft_slo_s": float,        # absolute TTFT SLO derived for the cell
      "tpot_slo_s": float,        # absolute TPOT SLO derived for the cell
      "slo_violation_ratio": float,
      "slo_attainment": float,    # 1 - slo_violation_ratio
      "wall_s": float             # host wall-clock of this cell
    }
"""

from __future__ import annotations

import copy
from typing import Dict, List

#: Current schema version; bump only on breaking changes.
SCHEMA_VERSION = 1

#: Keys every top-level document must carry.
DOCUMENT_KEYS = (
    "schema_version",
    "repro_version",
    "seed",
    "scale",
    "scenarios",
    "policies",
    "entries",
    "wall_s_total",
)

#: Additive schema-v1 keys: emitted by current sweeps but not required by
#: the validator, so documents written before they existed stay valid.
OPTIONAL_DOCUMENT_KEYS = ("fleet", "multicluster", "cache_hits", "cache_misses")

#: Keys every entry must carry (the stable contract).
ENTRY_KEYS = (
    "scenario",
    "policy",
    "policy_name",
    "workload",
    "requests",
    "finished",
    "completion_ratio",
    "ttft_p50",
    "ttft_p90",
    "ttft_p99",
    "tpot_p50",
    "tpot_p90",
    "tpot_p99",
    "throughput_tokens_per_s",
    "slo_scale",
    "ttft_slo_s",
    "tpot_slo_s",
    "slo_violation_ratio",
    "slo_attainment",
    "wall_s",
)

#: Keys of the scale block (same as the bench schema's).
SCALE_KEYS = ("name", "num_instances", "trace_duration_s", "drain_timeout_s")

#: Entry keys carrying host wall-clock (excluded from determinism checks).
WALL_CLOCK_ENTRY_KEYS = ("wall_s",)

#: Document keys carrying host-side execution accounting (wall-clock and
#: cache hit/miss counts) — excluded from determinism checks: a warm rerun
#: must compare equal to the cold run that populated its cache.
WALL_CLOCK_DOCUMENT_KEYS = ("wall_s_total", "cache_hits", "cache_misses")


def strip_wall_clock(document: Dict) -> Dict:
    """A deep copy of ``document`` with every wall-clock key removed.

    Two sweeps of the same grid and seed must compare equal after this.
    """
    stripped = copy.deepcopy(document)
    for key in WALL_CLOCK_DOCUMENT_KEYS:
        stripped.pop(key, None)
    for entry in stripped.get("entries", []):
        for key in WALL_CLOCK_ENTRY_KEYS:
            entry.pop(key, None)
    return stripped


def validate_document(document: Dict) -> List[str]:
    """Return a list of schema violations (empty when the document is valid)."""
    problems: List[str] = []
    for key in DOCUMENT_KEYS:
        if key not in document:
            problems.append(f"missing top-level key {key!r}")
    if document.get("schema_version") != SCHEMA_VERSION:
        problems.append(
            f"schema_version is {document.get('schema_version')!r}, expected {SCHEMA_VERSION}"
        )
    for key in SCALE_KEYS:
        if key not in document.get("scale", {}):
            problems.append(f"missing scale key {key!r}")
    for key in ("scenarios", "policies"):
        if key in document and not isinstance(document[key], list):
            problems.append(f"{key} must be a list")
    entries = document.get("entries", [])
    if not isinstance(entries, list):
        problems.append("entries must be a list")
        entries = []
    for index, entry in enumerate(entries):
        for key in ENTRY_KEYS:
            if key not in entry:
                problems.append(
                    f"entry {index} ({entry.get('scenario')!r} x {entry.get('policy')!r}) "
                    f"missing {key!r}"
                )
    return problems
