"""Named scenario registry.

A :class:`ScenarioSpec` freezes everything one sweep cell needs — a
workload factory (generator + dataset), the cluster shape, the policy set
and the SLO strictness — behind a stable name, so experiments, the sweep
runner and worker processes all resolve the same scenario from the same
registry.  ``register_scenario`` / ``get_scenario`` / ``list_scenarios``
are the public API; the built-ins below cover the load shapes the
generators module provides.

Workload factories take ``(scale, seed)`` — an
:class:`~repro.experiments.runner.ExperimentScale` and an integer — and
must be deterministic in both, which keeps every scenario sweepable at any
scale and bit-reproducible per seed (see ``tests/test_scenarios.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from repro.experiments.runner import ExperimentScale
from repro.models.catalog import QWEN_2_5_14B
from repro.models.spec import ModelSpec
from repro.scenarios.generators import (
    LONG_CONTEXT_SKEW_DATASET,
    diurnal_trace,
    markov_modulated_trace,
    multi_tenant_workload,
    poisson_trace,
    spike_train_trace,
    stamp_sessions,
)
from repro.workloads.burstgpt import burstgpt_arrival_trace
from repro.workloads.datasets import (
    BURSTGPT_DATASET,
    LONGBENCH_DATASET,
    SHAREGPT_DATASET,
    build_workload,
)
from repro.workloads.slo import CHAT_SLO_SCALE, SUMMARY_SLO_SCALE
from repro.workloads.trace import Workload
from repro.workloads.upscaler import upscale_trace

#: Policy keys (``repro.policies.make_policy``) every scenario sweeps by default.
DEFAULT_POLICY_SET: Tuple[str, ...] = ("vllm", "infercept", "llumnix", "kunserve")

WorkloadFactory = Callable[[ExperimentScale, int], Workload]


@dataclass(frozen=True)
class ScenarioSpec:
    """One named, fully-specified stress scenario.

    Attributes:
        name: registry key (stable across PRs once published).
        description: one-line summary shown by ``--list``.
        workload_factory: deterministic ``(scale, seed) -> Workload``.
        policies: policy keys swept for this scenario by default.
        model: model served in this scenario.
        gpus_per_instance: GPUs per serving instance.
        token_budget: chunked-prefill token budget per iteration.
        slo_scale: SLO strictness factor (× best-policy P50, Figure 13
            convention): 5 for chat, 10 for summarisation.
    """

    name: str
    description: str
    workload_factory: WorkloadFactory
    policies: Tuple[str, ...] = DEFAULT_POLICY_SET
    model: ModelSpec = field(default=QWEN_2_5_14B)
    gpus_per_instance: int = 1
    token_budget: int = 2048
    slo_scale: float = CHAT_SLO_SCALE

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        if not self.policies:
            raise ValueError("scenario must name at least one policy")
        if self.gpus_per_instance <= 0:
            raise ValueError("gpus_per_instance must be positive")
        if self.slo_scale <= 0:
            raise ValueError("slo_scale must be positive")

    def build_workload(self, scale: ExperimentScale, seed: int = 42) -> Workload:
        """Materialise this scenario's workload at ``scale`` with ``seed``."""
        return self.workload_factory(scale, seed)


_REGISTRY: Dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec, *, overwrite: bool = False) -> ScenarioSpec:
    """Add ``spec`` to the registry; refuses duplicates unless ``overwrite``."""
    if spec.name in _REGISTRY and not overwrite:
        raise ValueError(f"scenario {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a scenario by name."""
    if name not in _REGISTRY:
        known = ", ".join(list_scenarios())
        raise KeyError(f"unknown scenario {name!r}; known scenarios: {known}")
    return _REGISTRY[name]


def list_scenarios() -> List[str]:
    """Registered scenario names in registration order."""
    return list(_REGISTRY)


# ----------------------------------------------------------------------
# Built-in scenarios
# ----------------------------------------------------------------------
def _rate(per_instance: float, scale: ExperimentScale) -> float:
    """Cluster-wide rate for a per-instance rate at the given scale."""
    return per_instance * scale.num_instances * scale.rate_fraction


def _steady_poisson(scale: ExperimentScale, seed: int) -> Workload:
    trace = poisson_trace(
        rate=_rate(8.0, scale),
        duration_s=scale.trace_duration_s,
        seed=seed,
        name="steady-poisson",
    )
    # Chat traffic is multi-turn: stamp session structure so affinity
    # routing sees real conversations (sampling only a dedicated RNG
    # stream — arrivals and lengths are untouched).
    return stamp_sessions(build_workload(trace, BURSTGPT_DATASET, seed=seed), seed=seed)


def _burst_replay(scale: ExperimentScale, seed: int) -> Workload:
    trace = burstgpt_arrival_trace(
        duration_s=scale.trace_duration_s,
        base_rate=_rate(12.0, scale),
        burst_factor=3.0,
        seed=seed,
        name="burst-replay",
    )
    return build_workload(trace, BURSTGPT_DATASET, seed=seed)


def _upscaled_burst(scale: ExperimentScale, seed: int) -> Workload:
    base = burstgpt_arrival_trace(
        duration_s=scale.trace_duration_s,
        base_rate=_rate(8.0, scale),
        burst_factor=2.4,
        seed=seed,
        name="upscaled-burst",
    )
    trace = upscale_trace(base, 1.6, seed=seed)
    return build_workload(trace, BURSTGPT_DATASET, seed=seed)


def _mmpp_bursty(scale: ExperimentScale, seed: int) -> Workload:
    trace = markov_modulated_trace(
        base_rate=_rate(10.0, scale),
        burst_factor=3.5,
        mean_calm_s=scale.trace_duration_s / 4.0,
        mean_burst_s=scale.trace_duration_s / 12.0,
        duration_s=scale.trace_duration_s,
        seed=seed,
        name="mmpp-bursty",
    )
    return build_workload(trace, BURSTGPT_DATASET, seed=seed)


def _diurnal_chat(scale: ExperimentScale, seed: int) -> Workload:
    trace = diurnal_trace(
        mean_rate=_rate(2.2, scale),
        amplitude=0.6,
        period_s=scale.trace_duration_s / 1.5,
        duration_s=scale.trace_duration_s,
        seed=seed,
        name="diurnal-chat",
    )
    return stamp_sessions(build_workload(trace, SHAREGPT_DATASET, seed=seed), seed=seed)


def _spike_train(scale: ExperimentScale, seed: int) -> Workload:
    trace = spike_train_trace(
        base_rate=_rate(6.0, scale),
        spike_factor=6.0,
        spike_duration_s=scale.trace_duration_s / 12.0,
        spike_period_s=scale.trace_duration_s / 3.0,
        duration_s=scale.trace_duration_s,
        seed=seed,
        name="spike-train",
    )
    return build_workload(trace, BURSTGPT_DATASET, seed=seed)


def _multi_tenant_mix(scale: ExperimentScale, seed: int) -> Workload:
    duration = scale.trace_duration_s
    chat = poisson_trace(
        rate=_rate(4.0, scale), duration_s=duration, seed=seed, name="tenant-chat"
    )
    assistant = markov_modulated_trace(
        base_rate=_rate(1.2, scale),
        burst_factor=3.0,
        mean_calm_s=duration / 4.0,
        mean_burst_s=duration / 12.0,
        duration_s=duration,
        seed=seed,
        name="tenant-assistant",
    )
    summariser = poisson_trace(
        rate=_rate(0.25, scale), duration_s=duration, seed=seed, name="tenant-summary"
    )
    return multi_tenant_workload(
        [
            (chat, BURSTGPT_DATASET),
            (assistant, SHAREGPT_DATASET),
            (summariser, LONGBENCH_DATASET),
        ],
        seed=seed,
        name="multi-tenant-mix",
        session_turns=3.0,
    )


def _long_context_skew(scale: ExperimentScale, seed: int) -> Workload:
    trace = poisson_trace(
        rate=_rate(0.4, scale),
        duration_s=scale.trace_duration_s,
        seed=seed,
        name="long-context-skew",
    )
    return build_workload(trace, LONG_CONTEXT_SKEW_DATASET, seed=seed)


BUILTIN_SCENARIOS: Tuple[ScenarioSpec, ...] = (
    ScenarioSpec(
        name="steady-poisson",
        description="Homogeneous Poisson chat load at moderate utilisation (control)",
        workload_factory=_steady_poisson,
    ),
    ScenarioSpec(
        name="burst-replay",
        description="Single BurstGPT-style burst, the paper's §5 regime",
        workload_factory=_burst_replay,
    ),
    ScenarioSpec(
        name="upscaled-burst",
        description="BurstGPT burst rate-upscaled 1.6x via upscale_trace",
        workload_factory=_upscaled_burst,
    ),
    ScenarioSpec(
        name="mmpp-bursty",
        description="Two-state Markov-modulated arrivals: random correlated bursts",
        workload_factory=_mmpp_bursty,
    ),
    ScenarioSpec(
        name="diurnal-chat",
        description="Sinusoidal day/night swing on ShareGPT-length chats",
        workload_factory=_diurnal_chat,
    ),
    ScenarioSpec(
        name="spike-train",
        description="Periodic short spikes (cron/retry storms) on a low base rate",
        workload_factory=_spike_train,
    ),
    ScenarioSpec(
        name="multi-tenant-mix",
        description="Three tenants interleaved: chat + bursty assistant + summariser",
        workload_factory=_multi_tenant_mix,
    ),
    ScenarioSpec(
        name="long-context-skew",
        description="Heavy-tailed long-context prompts near the 32k cap",
        workload_factory=_long_context_skew,
        token_budget=1024,
        slo_scale=SUMMARY_SLO_SCALE,
    ),
)

for _spec in BUILTIN_SCENARIOS:
    register_scenario(_spec)
