"""KunServe reproduction: parameter-centric memory management for LLM serving.

This package reproduces the system described in *KUNSERVE: Parameter-centric
Memory Management for Efficient Memory Overloading Handling in LLM Serving*
(EuroSys 2026) as a discrete-event simulation.  It contains:

* ``repro.simulation`` -- the discrete-event engine used by everything else.
* ``repro.cluster`` -- GPU / server / network hardware models.
* ``repro.models`` -- LLM model specifications and memory accounting.
* ``repro.memory`` -- GPU physical/virtual memory and the paged KV cache.
* ``repro.engine`` -- a vLLM-class serving engine (continuous batching,
  chunked prefill, pipeline and tensor parallelism).
* ``repro.policies`` -- memory-overload handling baselines (recompute, swap,
  migrate) and the KunServe parameter-drop policy.
* ``repro.core`` -- KunServe itself: drop-plan generation, coordinated
  KV-cache exchange, lookahead batch formulation, dynamic restoration.
* ``repro.serving`` -- the cluster-level serving system (dispatcher,
  monitor, end-to-end trace replay).
* ``repro.workloads`` -- synthetic BurstGPT/ShareGPT/LongBench workloads.
* ``repro.experiments`` -- one module per paper table / figure.
* ``repro.scenarios`` -- synthetic stress scenarios and policy sweeps.
* ``repro.fleet`` -- elastic fleet layer (routing, admission, autoscaling).
* ``repro.sweeps`` -- unified incremental sweep engine (result cache +
  shared warm worker pool) behind every sweep CLI.
* ``repro.bench`` -- benchmark harness for the simulator itself.
"""

from repro.version import __version__

__all__ = ["__version__"]
