"""CLI entry point: ``python -m repro.chaos``.

Sweeps scenarios across fault-schedule presets × session-migration
policies (the chaos grid) through the unified sweep engine
(:mod:`repro.sweeps`) and writes ``CHAOS_results.json`` to the
repository root (see ``--output``).  Unchanged cells are served from the
on-disk result cache (``.repro_cache/``); disable with ``--no-cache``,
inspect with ``--cache-stats``, purge with ``--clear-cache``.
``--list-faults`` / ``--list-migrations`` show the registries, and
``--metrics-out FILE`` streams one cell's live Prometheus text scrapes
to a file.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.chaos.config import list_fault_presets
from repro.chaos.schema import validate_document
from repro.chaos.sweep import (
    CHAOS_SCALES,
    DEFAULT_FAULTS,
    DEFAULT_MIGRATIONS,
    DEFAULT_POLICIES,
    DEFAULT_SCENARIOS,
    format_results,
    run_chaos_sweep,
    stream_cell_metrics,
    write_results,
)
from repro.multicluster.config import list_session_migrations
from repro.policies import make_policy
from repro.scenarios.registry import list_scenarios
from repro.sweeps import effective_worker_count
from repro.sweeps.cli import add_cache_arguments, clear_cache, print_cache_stats


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="Sweep scenarios across deterministic fault schedules and "
        "session-migration policies in parallel and write CHAOS_results.json.",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(CHAOS_SCALES),
        default="quick",
        help="sweep scale, instances per cluster (default: quick)",
    )
    parser.add_argument(
        "--scenarios",
        nargs="*",
        default=None,
        metavar="NAME",
        help=f"scenarios to sweep (default: {' '.join(DEFAULT_SCENARIOS)})",
    )
    parser.add_argument(
        "--policies",
        nargs="*",
        default=None,
        metavar="POLICY",
        help=f"overload-policy keys (default: {' '.join(DEFAULT_POLICIES)})",
    )
    parser.add_argument(
        "--faults",
        nargs="*",
        default=None,
        metavar="PRESET",
        help=f"fault-schedule presets (default: {' '.join(DEFAULT_FAULTS)})",
    )
    parser.add_argument(
        "--migrations",
        nargs="*",
        default=None,
        metavar="POLICY",
        help=f"session-migration policies (default: {' '.join(DEFAULT_MIGRATIONS)})",
    )
    parser.add_argument("--seed", type=int, default=42, help="sweep seed")
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes (default: min(grid size, CPU count))",
    )
    parser.add_argument(
        "--sequential",
        action="store_true",
        help="run every cell inline in this process (equivalent to --workers 1)",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="where to write CHAOS_results.json (default: repository root)",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="additionally replay the first grid cell inline, streaming live "
        "Prometheus text scrapes to FILE",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="attach a tier-wide per-request span tracer to every cell and add "
        "a stage_breakdown block (per-stage latency attribution) to each entry; "
        "with --metrics-out, also streams the stage-duration histogram",
    )
    parser.add_argument(
        "--alerts",
        action="store_true",
        help="replay the default alert-rule pack (repro.obs) over every cell's "
        "metric stream and add an alerts block (firing/resolved timeline) to "
        "each entry",
    )
    add_cache_arguments(parser)
    parser.add_argument(
        "--list-faults",
        action="store_true",
        help="list fault-schedule presets and exit",
    )
    parser.add_argument(
        "--list-migrations",
        action="store_true",
        help="list session-migration policies and exit",
    )
    args = parser.parse_args(argv)

    if args.list_faults:
        for name in list_fault_presets():
            print(name)
        return 0
    if args.list_migrations:
        for name in list_session_migrations():
            print(name)
        return 0
    if args.clear_cache:
        return clear_cache(args)

    try:
        for policy in args.policies or ():
            make_policy(policy)  # fail fast on typos before spawning workers
        max_workers = 1 if args.sequential else args.workers
        if max_workers is None:
            names = args.scenarios or list(DEFAULT_SCENARIOS)
            grid = (
                len([n for n in names if n in list_scenarios()])
                * len(args.policies or DEFAULT_POLICIES)
                * len(args.faults if args.faults is not None else DEFAULT_FAULTS)
                * len(
                    args.migrations
                    if args.migrations is not None
                    else DEFAULT_MIGRATIONS
                )
            )
            max_workers = max(1, min(grid, effective_worker_count()))
        document = run_chaos_sweep(
            scenarios=args.scenarios,
            policies=args.policies,
            faults=args.faults,
            migrations=args.migrations,
            scale=CHAOS_SCALES[args.scale],
            seed=args.seed,
            max_workers=max_workers,
            use_cache=not args.no_cache,
            cache_dir=args.cache_dir,
            trace=args.trace,
            alerts=args.alerts,
        )
    except (KeyError, ValueError) as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    problems = validate_document(document)
    if problems:
        print("schema violations:", *problems, sep="\n  ", file=sys.stderr)
        return 1
    path = write_results(document, args.output)
    print(format_results(document))
    if args.cache_stats:
        print_cache_stats(document, args)
    if args.metrics_out:
        scrapes = stream_cell_metrics(
            (args.scenarios or list(DEFAULT_SCENARIOS))[0],
            (args.policies or list(DEFAULT_POLICIES))[0],
            (args.faults if args.faults is not None else list(DEFAULT_FAULTS))[0],
            (
                args.migrations
                if args.migrations is not None
                else list(DEFAULT_MIGRATIONS)
            )[0],
            CHAOS_SCALES[args.scale],
            args.seed,
            Path(args.metrics_out),
            trace=args.trace,
        )
        print(f"streamed {scrapes} metric scrapes to {args.metrics_out}")
    print(f"\nwrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
