"""Deterministic fault injection for multicluster runs.

:class:`ChaosInjector` arms a :class:`~repro.chaos.config.FaultSchedule`
on a :class:`~repro.multicluster.system.MultiClusterSystem`'s shared event
loop: every event becomes an ordinary scheduled callback, so faults fire
at exact simulation times interleaved deterministically with arrivals,
monitor ticks and WAN transfers.  Injection never consumes randomness —
a sampled schedule is materialised *before* the run (see
:func:`repro.chaos.config.sampled_kill_schedule`), which keeps the run a
pure function of ``(config, workload, seed)`` and makes chaos results
cacheable by the sweep engine.

Event dispatch:

* ``instance_kill`` → :meth:`MultiClusterSystem.fail_cluster_instance`
  (in-shard recovery via the fault-tolerance manager);
* ``cluster_outage`` → :meth:`MultiClusterSystem.fail_cluster` (the shard
  dies; the session-migration policy decides the displaced requests'
  fate);
* ``wan_degrade`` → :meth:`MultiClusterSystem.degrade_wan`, with a
  matching restore scheduled at ``at_s + duration_s`` when the event has
  a finite duration.

Targets are validated eagerly at :meth:`arm` time so a schedule that
names a nonexistent cluster or instance fails before the run starts, not
halfway through it.
"""

from __future__ import annotations

from repro.chaos.config import FaultEvent, FaultSchedule


class ChaosInjector:
    """Arms a fault schedule on a multicluster system's event loop."""

    def __init__(self, system, schedule: FaultSchedule) -> None:
        self.system = system
        self.schedule = schedule
        #: events past the horizon, never armed.
        self.skipped = 0
        #: events armed on the loop (fired or pending).
        self.armed = 0

    def arm(self, horizon: float) -> None:
        """Schedule every in-horizon event of the schedule on the loop."""
        for event in self.schedule.events:
            self._validate(event)
        loop = self.system.loop
        for event in self.schedule.events:
            if event.at_s >= horizon:
                self.skipped += 1
                continue
            loop.schedule_at(
                event.at_s,
                lambda e=event: self._fire(e),
                name=f"chaos-{event.kind}",
            )
            self.armed += 1
            if event.kind == "wan_degrade" and event.duration_s > 0:
                end = event.at_s + event.duration_s
                if end < horizon:
                    loop.schedule_at(
                        end,
                        lambda: self.system.restore_wan(),
                        name="chaos-wan-restore",
                    )

    def _validate(self, event: FaultEvent) -> None:
        num_clusters = len(self.system.handles)
        if event.kind in ("instance_kill", "cluster_outage"):
            if event.cluster >= num_clusters:
                raise ValueError(
                    f"fault targets cluster {event.cluster}, but the tier "
                    f"has {num_clusters}"
                )
        if event.kind == "instance_kill":
            instances = self.system.handles[event.cluster].system.instances
            if event.instance >= len(instances):
                raise ValueError(
                    f"fault targets instance {event.instance} of cluster "
                    f"{event.cluster}, which has {len(instances)}"
                )

    def _fire(self, event: FaultEvent) -> None:
        if event.kind == "instance_kill":
            self.system.fail_cluster_instance(event.cluster, event.instance)
        elif event.kind == "cluster_outage":
            self.system.fail_cluster(event.cluster)
        elif event.kind == "wan_degrade":
            self.system.degrade_wan(event.bandwidth_factor, event.latency_factor)
        else:  # pragma: no cover - FaultEvent validates kinds
            raise ValueError(f"unknown fault kind {event.kind!r}")
